"""Command-line interface: run any reproduction experiment.

Examples::

    repro list
    repro run e2 --quick
    repro run e1 e2 --profile quick --jobs 4
    repro run e3 e4 e9 --profile quick --fused
    repro run e2 e3b --profile quick --cache --cache-dir .repro-cache
    repro run --profile quick --out results
    repro demo --n 2000 --weights 1,2,3 --rounds 2000
    repro demo --n 1000 --replications 100 --batched
    repro demo --n 10000 --engine array
    repro demo --n 1000 --replications 100 \\
        --schedule "500000:agents:0:500,1000000:colour:2.0:1"
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from .core.properties import assess_goodness
from .core.weights import WeightTable
from .experiments import REGISTRY, run_aggregate
from .experiments.export import save_plan, save_requeue, table_to_json
from .experiments.pipeline import execute
from .experiments.report import format_table

# Back-compat view of the per-experiment profiles that used to be
# hardcoded here; the registry entries own them now.
QUICK_OVERRIDES: dict[str, dict] = {
    name: dict(definition.profiles["quick"])
    for name, definition in REGISTRY.items()
    if "quick" in definition.profiles
}


def _parse_weights(text: str) -> WeightTable:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
        return WeightTable(values)
    except ValueError as error:
        raise SystemExit(f"invalid --weights {text!r}: {error}") from error


def _parse_schedule(text: str | None):
    """Parse a compact adversarial schedule specification.

    Comma-separated entries, each one of::

        TIME:agents:COLOUR:COUNT[:light]    inject agents of a colour
        TIME:colour:WEIGHT:COUNT[:light]    introduce a new colour
        TIME:recolour:SOURCE:TARGET         repaint source as target

    Agents arrive dark unless the trailing ``light`` flag is given.
    Returns None for empty input.
    """
    if not text or not text.strip():
        return None
    from .adversary.interventions import (
        AddAgents,
        AddColour,
        RecolourColour,
    )
    from .adversary.schedule import InterventionSchedule

    entries = []
    for raw in text.split(","):
        parts = [part.strip() for part in raw.split(":")]
        try:
            time_step = int(parts[0])
            if time_step < 0:
                raise ValueError("TIME must be non-negative")
            kind = parts[1]
            if kind == "agents":
                dark = _schedule_shade(parts, 4)
                event = AddAgents(
                    colour=int(parts[2]),
                    count=_schedule_count(parts[3]),
                    dark=dark,
                )
            elif kind == "colour":
                dark = _schedule_shade(parts, 4)
                event = AddColour(
                    weight=float(parts[2]),
                    count=_schedule_count(parts[3]),
                    dark=dark,
                )
            elif kind == "recolour":
                if len(parts) != 4:
                    raise ValueError("recolour takes SOURCE:TARGET")
                event = RecolourColour(
                    source=int(parts[2]), target=int(parts[3])
                )
            else:
                raise ValueError(
                    f"unknown intervention {kind!r} "
                    "(use agents, colour or recolour)"
                )
        except (IndexError, ValueError) as error:
            raise SystemExit(
                f"invalid --schedule entry {raw.strip()!r}: {error}"
            ) from error
        entries.append((time_step, event))
    return InterventionSchedule(entries)


def _schedule_count(text: str) -> int:
    count = int(text)
    if count < 0:
        raise ValueError("COUNT must be non-negative")
    return count


def _schedule_shade(parts: list[str], base: int) -> bool:
    """Trailing shade flag of an agents/colour entry (default dark)."""
    if len(parts) == base:
        return True
    if len(parts) == base + 1 and parts[base] in ("dark", "light"):
        return parts[base] == "dark"
    raise ValueError("expected COLOUR:COUNT or WEIGHT:COUNT [:dark|:light]")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [
            name,
            "/".join(sorted(definition.profiles)) or "-",
            definition.description,
        ]
        for name, definition in sorted(REGISTRY.items())
    ]
    print(format_table(["experiment", "profiles", "description"], rows))
    return 0


def _resolve_profile(args: argparse.Namespace) -> str | None:
    """Profile name from --profile/--quick; None on a conflict."""
    if args.quick and args.profile not in (None, "quick"):
        return None
    return args.profile or ("quick" if args.quick else "full")


def _retry_policy(args: argparse.Namespace):
    """RetryPolicy from --retries/--shard-timeout/--retry-backoff, or
    None when no retry flag was given."""
    if (
        args.retries is None
        and args.shard_timeout is None
        and args.retry_backoff is None
    ):
        return None
    from .experiments.faults import RetryPolicy

    return RetryPolicy(
        max_attempts=args.retries if args.retries is not None else 1,
        timeout_s=args.shard_timeout,
        backoff_s=(
            args.retry_backoff if args.retry_backoff is not None else 0.0
        ),
    )


def _print_fault_summary(report: dict) -> None:
    """One stderr line per noteworthy fault-tolerance event."""
    retried = sum(
        1
        for entry in report.get("shards", {}).values()
        if entry["attempts"] > 1 and entry["ok"]
    )
    parts = [
        f"faults: {report['completed']}/{report['total']} shard(s) "
        "completed"
    ]
    if retried:
        parts.append(f"{retried} recovered by retry")
    if report.get("degraded_groups"):
        parts.append(
            f"{len(report['degraded_groups'])} fused group(s) degraded "
            "to per-shard execution"
        )
    if report.get("failed"):
        parts.append(
            f"failed shards: {', '.join(map(str, report['failed']))}"
        )
    print("; ".join(parts), file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    profile = _resolve_profile(args)
    if profile is None:
        print(
            f"--quick conflicts with --profile {args.profile}",
            file=sys.stderr,
        )
        return 2
    names = args.experiments or sorted(REGISTRY)
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        retry = _retry_policy(args)
    except ValueError as error:
        print(f"invalid retry policy: {error}", file=sys.stderr)
        return 2
    # --cache-dir implies --cache; an explicit --no-cache always wins.
    cache_enabled = args.cache is True or (
        args.cache is None and args.cache_dir is not None
    )
    cache_dir = args.cache_dir or ".repro-cache"
    checkpoint_every = args.checkpoint_every
    if args.resume and checkpoint_every is None:
        checkpoint_every = 1
    if checkpoint_every is not None and args.fused:
        # Fused mega-batches advance whole shard groups inside one
        # engine call; there is no per-shard boundary to checkpoint at.
        print(
            "--checkpoint-every/--resume is incompatible with --fused",
            file=sys.stderr,
        )
        return 2
    if checkpoint_every is not None and checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if cache_enabled and checkpoint_every is not None:
        # The checkpointed executor already persists every finished
        # shard to its own file; the content-addressed cache is not
        # consulted on that path.
        print(
            "note: --cache has no effect with --checkpoint-every/"
            "--resume; the checkpoint file already records finished "
            "shards",
            file=sys.stderr,
        )
        cache_enabled = False
    if args.max_failures is not None and args.max_failures < 0:
        print("--max-failures must be >= 0", file=sys.stderr)
        return 2
    if args.max_failures is not None and checkpoint_every is not None:
        # The checkpointed path is fail-fast by design: a failed shard
        # stops the run with its progress flushed, and the next
        # invocation resumes from there.
        print(
            "--max-failures is incompatible with --checkpoint-every/"
            "--resume",
            file=sys.stderr,
        )
        return 2
    shard_cache = None
    if cache_enabled:
        from .experiments.cache import ShardCache

        shard_cache = ShardCache(cache_dir)
    for name in names:
        definition = REGISTRY[name]
        if profile not in definition.profiles:
            print(
                f"experiment {name!r} has no {profile!r} profile "
                f"(available: {', '.join(sorted(definition.profiles))})",
                file=sys.stderr,
            )
            return 2
        kwargs = dict(definition.profiles[profile])
        if definition.spec is not None:
            spec = definition.spec(**kwargs)
            target = spec
            fault_plan = None
            if args.inject_faults:
                # The fault plan draws probabilistic targets from the
                # spec's own seed machinery, so it needs the expanded
                # shard count up front.
                from .experiments.faults import FaultPlan
                from .experiments.pipeline import plan as expand_plan

                target = expand_plan(spec)
                try:
                    fault_plan = FaultPlan.from_spec(
                        args.inject_faults,
                        shards=len(target.shards),
                        base_seed=spec.base_seed,
                    )
                except ValueError as error:
                    print(
                        f"invalid --inject-faults: {error}",
                        file=sys.stderr,
                    )
                    return 2
            if checkpoint_every is not None:
                from .experiments.checkpoint import execute_checkpointed

                ckpt_path = (
                    pathlib.Path(args.checkpoint_dir)
                    / f"{name}-{profile}.ckpt.json"
                )
                result = execute_checkpointed(
                    target,
                    checkpoint=ckpt_path,
                    jobs=args.jobs,
                    every=checkpoint_every,
                    resume=args.resume,
                    retry=retry,
                    faults=fault_plan,
                )
            else:
                result = execute(
                    target, jobs=args.jobs,
                    fused=args.fused, cache=shard_cache,
                    retry=retry, faults=fault_plan,
                    max_failures=args.max_failures,
                )
            if result.fault_report and result.fault_report.get("failed"):
                # Partial run: some cells are missing replications, so
                # the spec's table builder may legitimately refuse —
                # the artifact/requeue file still captures everything.
                try:
                    table = result.table()
                except Exception as error:
                    table = None
                    print(
                        f"note: partial results ({name}); table not "
                        f"rendered: {error}",
                        file=sys.stderr,
                    )
            else:
                table = result.table()
            if result.cache_stats is not None:
                stats = result.cache_stats
                print(
                    f"cache: {stats['hits']} hit(s), "
                    f"{stats['misses']} miss(es) ({stats['dir']})",
                    file=sys.stderr,
                )
            if result.fault_report is not None:
                _print_fault_summary(result.fault_report)
                requeue_dir = args.out if args.out is not None else "."
                requeue_path = save_requeue(
                    result, requeue_dir, profile=profile
                )
                if requeue_path is not None:
                    print(f"requeue file: {requeue_path}", file=sys.stderr)
        else:
            ignored = [
                flag
                for flag, given in (
                    ("--jobs", args.jobs is not None and args.jobs > 1),
                    ("--fused", args.fused),
                    ("--checkpoint-every", checkpoint_every is not None),
                    ("--cache", cache_enabled),
                    ("--inject-faults", bool(args.inject_faults)),
                    ("--max-failures", args.max_failures is not None),
                    ("--retries", retry is not None),
                )
                if given
            ]
            if ignored:
                print(
                    f"note: {name} runs outside the pipeline; "
                    f"{'/'.join(ignored)} has no effect on it",
                    file=sys.stderr,
                )
            result = None
            table = definition.run(**kwargs)
        if table is not None:
            print(table.render())
            print()
        if args.out is not None:
            directory = pathlib.Path(args.out)
            if result is not None:
                path = save_plan(result, table, directory, profile=profile)
            else:
                # Non-pipeline experiment: persist the table JSON under
                # the same profile-suffixed naming as plan artifacts.
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{name}-{profile}.json"
                path.write_text(table_to_json(table) + "\n")
            print(f"artifact: {path}", file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    weights = _parse_weights(args.weights)
    schedule = _parse_schedule(args.schedule)
    steps = args.rounds * args.n
    if args.replications > 1:
        return _demo_replicated(args, weights, steps, schedule)
    if args.engine == "aggregate":
        record = run_aggregate(
            weights, args.n, steps, start=args.start, seed=args.seed,
            schedule=schedule,
        )
    else:
        from .experiments.runner import run_diversification_agent

        record = run_diversification_agent(
            weights, args.n, steps,
            start=args.start, seed=args.seed, engine=args.engine,
            schedule=schedule,
        )
    # A schedule may have widened the colour set; the record carries
    # the run's own (possibly grown) table.
    weights = record.weights
    tail = max(1, len(record.times) // 4)
    window = record.colour_counts[-tail:, : weights.k]
    report = assess_goodness(window, weights)
    final = record.final_colour_counts[: weights.k]
    shares = final / final.sum()
    rows = [
        [i, weights.weight(i), int(final[i]), float(shares[i]),
         float(weights.fair_shares()[i])]
        for i in range(weights.k)
    ]
    print(format_table(
        ["colour", "weight", "final count", "share", "fair share"], rows,
        title=f"Diversification demo: n={args.n}, steps={steps}",
    ))
    print(
        f"diversity error {report.diversity_error:.4f} "
        f"(bound {report.diversity_bound:.4f}) -> "
        f"diverse={report.diverse}, sustainable={report.sustainable}"
    )
    return 0


def _demo_replicated(
    args, weights: WeightTable, steps: int, schedule=None
) -> int:
    """Replicated demo: R runs through the (batched) replication path."""
    if args.engine == "aggregate":
        batch = run_aggregate(
            weights, args.n, steps,
            start=args.start,
            seed=args.seed,
            replications=args.replications,
            batched=args.batched,
            schedule=schedule,
        )
        counts = batch.final_colour_counts
        weights = batch.weights  # widened when the schedule adds colours
        engine = "aggregate/" + ("batched" if batch.batched else "scalar")
    else:
        from .experiments.replication import replicate_colour_counts

        counts = replicate_colour_counts(
            weights, args.n, steps,
            replications=args.replications,
            start=args.start,
            base_seed=args.seed,
            batched=args.batched,
            engine=args.engine,
            schedule=schedule,
        )
        engine = f"agent/{args.engine}"
        if counts.shape[1] > weights.k:
            print(
                f"note: the schedule added "
                f"{counts.shape[1] - weights.k} colour(s); shares are "
                "shown for the original colours",
                file=sys.stderr,
            )
    finals = counts.astype(float)
    shares = finals / finals.sum(axis=1, keepdims=True)
    fair = weights.fair_shares()
    rows = [
        [i, weights.weight(i),
         float(finals[:, i].mean()), float(finals[:, i].std()),
         float(shares[:, i].mean()), float(fair[i])]
        for i in range(weights.k)
    ]
    print(format_table(
        ["colour", "weight", "mean count", "std", "mean share",
         "fair share"],
        rows,
        title=(
            f"Diversification demo: n={args.n}, steps={steps}, "
            f"replications={args.replications} ({engine} engine)"
        ),
    ))
    report = assess_goodness(counts[:, : weights.k], weights)
    print(
        f"diversity error {report.diversity_error:.4f} "
        f"(bound {report.diversity_bound:.4f}) -> "
        f"diverse={report.diverse}, sustainable={report.sustainable}"
    )
    return 0


def _cmd_series(args: argparse.Namespace) -> int:
    from .analysis.potentials import phi_plateau, sigma_plateau
    from .experiments.phases import potential_series
    from .experiments.report import format_series

    weights = _parse_weights(args.weights)
    steps = args.rounds * args.n
    record = run_aggregate(
        weights, args.n, steps, start=args.start, seed=args.seed,
        record_interval=max(1, steps // 256),
    )
    series = potential_series(record)
    times = series["times"].tolist()
    print(format_series(
        f"phi(t): dark imbalance (plateau bound "
        f"{phi_plateau(args.n, weights):.3g})",
        times, series["phi"].tolist(),
    ))
    print()
    print(format_series(
        "psi(t): light imbalance", times, series["psi"].tolist()
    ))
    print()
    print(format_series(
        f"sigma^2(t): dark/light mass split (plateau bound "
        f"{sigma_plateau(args.n):.3g})",
        times, series["sigma_sq"].tolist(),
    ))
    return 0


def _parse_selectors(values: list[str] | None) -> list[str]:
    """Flatten repeatable, comma-separated selector options."""
    out: list[str] = []
    for value in values or []:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from .experiments.cache import verify_cache

    report = verify_cache(args.cache_dir, quarantine=args.quarantine)
    print(
        f"cache {report['dir']}: {report['scanned']} entr"
        f"{'y' if report['scanned'] == 1 else 'ies'} scanned, "
        f"{report['ok']} ok, {len(report['bad'])} bad"
        + (
            f", {report['quarantined']} quarantined"
            if args.quarantine
            else ""
        )
    )
    for entry in report["bad"]:
        line = f"  bad: {entry['path']} ({entry['reason']})"
        if "quarantined_to" in entry:
            line += f" -> {entry['quarantined_to']}"
        print(line)
    return 1 if report["bad"] else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import render, run_lint

    try:
        findings = run_lint(
            args.paths or None,
            select=_parse_selectors(args.select),
            ignore=_parse_selectors(args.ignore),
        )
    except (ValueError, FileNotFoundError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    output = render(findings, args.format)
    if output:
        print(output)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Diversity, Fairness, and Sustainability in "
            "Population Protocols' (PODC 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments and print tables")
    p_run.add_argument(
        "experiments", nargs="*",
        help="experiment ids (default: all)",
    )
    p_run.add_argument(
        "--profile", type=str, default=None,
        help="named parameter profile from the registry "
             "(default: 'full'; see `repro list`)",
    )
    p_run.add_argument(
        "--quick", action="store_true",
        help="smaller parameters for a fast pass "
             "(alias for --profile quick)",
    )
    p_run.add_argument(
        "--jobs", type=int, default=None,
        help="run pipeline shards across N worker processes "
             "(default: serial; results are identical either way)",
    )
    p_run.add_argument(
        "--fused", action="store_true",
        help="mega-batch compatible shards into one vectorised engine "
             "(heterogeneous per-row weights/n/horizons); shards "
             "without a fused implementation fall back to the "
             "per-shard path (honouring --jobs).  Fused results match "
             "the per-shard path in distribution (per-cell "
             "KS-equivalent), not bit for bit",
    )
    p_run.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="consult the content-addressed shard result cache before "
             "computing and write fresh values back: warm and "
             "overlapping sweeps only compute new cells.  Keys cover "
             "the measurement source, the repro code version, the "
             "backend dtype table, the shard params and the resolved "
             "seed, so any code or dtype change recomputes instead of "
             "replaying.  --no-cache forces a full recompute",
    )
    p_run.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="directory of the shard result cache (default: "
             ".repro-cache/; implies --cache)",
    )
    p_run.add_argument(
        "--out", type=str, default=None, metavar="DIR",
        help="persist a JSON artifact per experiment (spec + per-shard "
             "results + timings) under this directory, e.g. results/",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint pipeline progress every N finished shards to "
             "<checkpoint-dir>/<experiment>-<profile>.ckpt.json; an "
             "interrupted run resumed with --resume skips the recorded "
             "shards and reproduces the uninterrupted tables bit for "
             "bit (shard seeds depend only on the spec and the shard "
             "index).  Incompatible with --fused",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="resume from existing checkpoint files (implies "
             "--checkpoint-every 1 when not given); checkpoints from "
             "a different spec are rejected, never silently mixed",
    )
    p_run.add_argument(
        "--checkpoint-dir", type=str, default="checkpoints", metavar="DIR",
        help="directory for --checkpoint-every/--resume files "
             "(default: checkpoints/)",
    )
    p_run.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry each failed shard up to N total attempts from the "
             "same (params, seed), so recovered runs stay bit-identical "
             "to clean ones",
    )
    p_run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="per-shard deadline in seconds on the process-pool path: "
             "a shard still running at its deadline has its worker "
             "killed and is requeued (counts as one attempt)",
    )
    p_run.add_argument(
        "--retry-backoff", type=float, default=None, metavar="S",
        help="delay before a shard's first retry, doubling per further "
             "attempt (default: retry immediately)",
    )
    p_run.add_argument(
        "--max-failures", type=int, default=None, metavar="N",
        help="tolerate up to N permanently failed shards: healthy "
             "shards complete, the partial table and a "
             "<experiment>-<profile>.requeue.json file are written, "
             "and the fault report lands in the --out artifact "
             "(default: fail fast on the first ShardError)",
    )
    p_run.add_argument(
        "--inject-faults", type=str, default=None, metavar="SPEC",
        help="deterministic fault injection for drills and tests: "
             "comma-separated 'KIND:TARGET[:OPT...]' entries with KIND "
             "one of raise/hang/crash/corrupt/fuse-raise/tear-cache/"
             "tear-ckpt, TARGET 'iIDX' (exact shards, e.g. i0 or "
             "'i1|3|5') or 'pPROB' (each shard independently with "
             "probability PROB, drawn from the spec's own seed), and "
             "options 'attempts=N' (fault fires on the first N "
             "attempts; default 1 = transient) and 'seconds=S' (hang "
             "duration), e.g. 'raise:p0.2:attempts=1,crash:i3'",
    )
    p_run.set_defaults(func=_cmd_run)

    p_cache = sub.add_parser(
        "cache", help="inspect and maintain the shard result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_verify = cache_sub.add_parser(
        "verify",
        help="scan a cache directory and report corrupt entries",
        description=(
            "Walks every content-addressed entry of a shard cache "
            "directory, validating JSON, the repro-shard-cache/v1 "
            "format marker, the stored key against the filename and "
            "the value payload.  Exits 1 when bad entries are found, "
            "0 on a clean cache."
        ),
    )
    p_cache_verify.add_argument(
        "--cache-dir", type=str, default=".repro-cache", metavar="DIR",
        help="cache directory to scan (default: .repro-cache/)",
    )
    p_cache_verify.add_argument(
        "--quarantine", action="store_true",
        help="move bad entries to <dir>/quarantine/ instead of only "
             "reporting them",
    )
    p_cache_verify.set_defaults(func=_cmd_cache_verify)

    p_demo = sub.add_parser(
        "demo", help="run one Diversification instance and report goodness"
    )
    p_demo.add_argument("--n", type=int, default=1000)
    p_demo.add_argument("--weights", type=str, default="1,2,3")
    p_demo.add_argument("--rounds", type=int, default=2000,
                        help="parallel rounds (steps = rounds * n)")
    p_demo.add_argument("--start", type=str, default="worst")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--replications", type=int, default=1,
        help="independent repetitions; > 1 reports mean/std over runs",
    )
    p_demo.add_argument(
        "--batched", action=argparse.BooleanOptionalAction, default=True,
        help="fuse replications into the vectorised batched engine "
             "(--no-batched loops scalar engines instead)",
    )
    p_demo.add_argument(
        "--engine", choices=("aggregate", "scalar", "array"),
        default="aggregate",
        help="simulation engine: 'aggregate' tracks colour counts only "
             "(fastest; complete graph), 'array' runs the vectorised "
             "agent-level engine (used automatically by run_agent for "
             "kernelised protocols on complete/CSR graphs), 'scalar' "
             "forces the per-step reference engine; every engine — "
             "including the batched replicated paths — accepts "
             "--schedule",
    )
    p_demo.add_argument(
        "--schedule", type=str, default=None, metavar="SPEC",
        help="adversarial intervention schedule, comma-separated "
             "entries 'T:agents:COLOUR:COUNT[:light]', "
             "'T:colour:WEIGHT:COUNT[:light]' or "
             "'T:recolour:SRC:DST', e.g. "
             "'500000:agents:0:500,1000000:colour:2.0:1'",
    )
    p_demo.set_defaults(func=_cmd_demo)

    p_series = sub.add_parser(
        "series",
        help="run once and chart the phi/psi/sigma potentials (Fig. 1)",
    )
    p_series.add_argument("--n", type=int, default=1000)
    p_series.add_argument("--weights", type=str, default="1,2,3")
    p_series.add_argument("--rounds", type=int, default=2000)
    p_series.add_argument("--start", type=str, default="worst")
    p_series.add_argument("--seed", type=int, default=0)
    p_series.set_defaults(func=_cmd_series)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's AST-based invariant checks (repro.lint)",
        description=(
            "Static checks for the repo's reproducibility invariants: "
            "RL1 backend seam, RL2 determinism, RL3 checkpoint "
            "completeness (repro-ckpt/v1), RL4 kernel purity, RL5 "
            "fingerprint hygiene.  Exits 1 when findings remain, 0 on "
            "a clean run, 2 on a usage error.  Waive a finding inline "
            "with '# repro-lint: disable=CODE -- justification'."
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
             "repro package)",
    )
    p_lint.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="only report these rule codes (comma-separated, "
             "repeatable; prefixes select families: RL3 = RL301+RL302)",
    )
    p_lint.add_argument(
        "--ignore", action="append", default=None, metavar="CODES",
        help="drop these rule codes (same syntax as --select; ignore "
             "wins on overlap)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format: human-readable lines, a JSON document, "
             "or GitHub workflow ::error annotations",
    )
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an
        # error from the user's point of view.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
