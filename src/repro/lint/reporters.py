"""Rendering lint findings: ``text`` (human), ``json`` (tooling),
``github`` (workflow error annotations)."""

from __future__ import annotations

import json
import pathlib

from .findings import Finding


def render_text(findings: list[Finding]) -> str:
    lines = [
        f"{finding.location()}: {finding.code} {finding.message}"
        for finding in findings
    ]
    count = len(findings)
    lines.append(
        "no findings" if count == 0
        else f"{count} finding{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "path": _display_path(finding.path),
                    "relpath": finding.relpath,
                    "line": finding.line,
                    "col": finding.col + 1,
                    "code": finding.code,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "count": len(findings),
        },
        indent=2,
    )


def render_github(findings: list[Finding]) -> str:
    """``::error`` workflow commands, one per finding.

    GitHub splits the command from the message at ``::``; commas and
    newlines inside property values are escaped per the workflow
    command spec.
    """
    lines = []
    for finding in findings:
        path = _escape_property(_display_path(finding.path))
        title = _escape_property(f"repro-lint {finding.code}")
        message = _escape_data(f"{finding.code} {finding.message}")
        lines.append(
            f"::error file={path},line={finding.line},"
            f"col={finding.col + 1},title={title}::{message}"
        )
    if not lines:
        return ""
    return "\n".join(lines)


def render(findings: list[Finding], fmt: str) -> str:
    renderer = {
        "text": render_text,
        "json": render_json,
        "github": render_github,
    }.get(fmt)
    if renderer is None:
        raise ValueError(f"unknown lint output format: {fmt!r}")
    return renderer(findings)


def _display_path(path: pathlib.Path) -> str:
    """cwd-relative when possible (what editors and CI expect)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _escape_data(value: str) -> str:
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")
