"""RL4 — kernel-purity rules.

The array engines are portable across array-API namespaces *except*
where they deliberately opt out: ``require_engine_loops`` pins a
backend that additionally provides NumPy conveniences (``bincount``,
``concatenate``, ufunc methods, ``out=``).  Two invariants keep that
boundary honest:

``RL401`` / ``RL402``
    Transition kernels (classes named ``*Kernel``) are the hot,
    backend-agnostic core — they must stay on array-API-standard ops
    (RL401) and never mutate in place via ``out=`` or ufunc ``.at``
    scatter (RL402), because a kernel runs against *any* resolved
    backend, not just the loop-capable host.
``RL403``
    Everywhere else in the engine scope, a non-standard op or ``out=``
    is fine only in a *gated* context: a class whose methods call
    ``require_engine_loops`` (directly, or through a one-hop module
    helper like ``_resolve_loop_backend``, or by inheriting a gated
    same-module base class), or a module function that receives the
    namespace from its caller (an ``xp``/``backend``/``bk``
    parameter — the caller owns the capability decision there).

Only names literally bound to ``xp`` are inspected — that is the
repo-wide convention for "the array namespace of the resolved
backend".  Host-namespace aliases (``np = HOST.xp``) are the full
NumPy surface by construction and are the seam rules' (RL1) business.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule
from ..walker import SourceModule, class_methods, dotted_name

#: Array-API-standard namespace members (2023.12 revision): the ops a
#: kernel may use on any resolved backend.  Grouped as in the spec.
STANDARD_OPS = frozenset({
    # creation
    "arange", "asarray", "empty", "empty_like", "eye", "from_dlpack",
    "full", "full_like", "linspace", "meshgrid", "ones", "ones_like",
    "tril", "triu", "zeros", "zeros_like",
    # elementwise
    "abs", "acos", "acosh", "add", "asin", "asinh", "atan", "atan2",
    "atanh", "bitwise_and", "bitwise_left_shift", "bitwise_invert",
    "bitwise_or", "bitwise_right_shift", "bitwise_xor", "ceil", "clip",
    "conj", "copysign", "cos", "cosh", "divide", "equal", "exp",
    "expm1", "floor", "floor_divide", "greater", "greater_equal",
    "hypot", "imag", "isfinite", "isinf", "isnan", "less",
    "less_equal", "log", "log1p", "log2", "log10", "logaddexp",
    "logical_and", "logical_not", "logical_or", "logical_xor",
    "maximum", "minimum", "multiply", "negative", "nextafter",
    "not_equal", "positive", "pow", "real", "remainder", "round",
    "sign", "signbit", "sin", "sinh", "square", "sqrt", "subtract",
    "tan", "tanh", "trunc",
    # statistical / utility
    "cumulative_sum", "max", "mean", "min", "prod", "std", "sum",
    "var", "all", "any", "diff", "count_nonzero",
    # searching / sorting / sets
    "argmax", "argmin", "nonzero", "searchsorted", "where", "argsort",
    "sort", "unique_all", "unique_counts", "unique_inverse",
    "unique_values",
    # manipulation
    "broadcast_arrays", "broadcast_to", "concat", "expand_dims",
    "flip", "moveaxis", "permute_dims", "repeat", "reshape", "roll",
    "squeeze", "stack", "tile", "unstack",
    # indexing / dtype machinery
    "take", "take_along_axis", "astype", "can_cast", "finfo", "iinfo",
    "isdtype", "result_type", "matmul", "matrix_transpose",
    "tensordot", "vecdot",
    # constants and dtype objects
    "inf", "nan", "pi", "e", "newaxis",
    "bool", "int8", "int16", "int32", "int64", "uint8", "uint16",
    "uint32", "uint64", "float32", "float64", "complex64",
    "complex128",
    # standard extension namespaces (members not individually checked)
    "linalg", "fft",
})

#: Parameters that hand the namespace decision to the caller.
_NAMESPACE_PARAMS = frozenset({"xp", "backend", "bk"})

GATE_FUNCTION = "require_engine_loops"


def in_kernel_scope(relpath: str) -> bool:
    if relpath == "engine/backend.py":
        return False
    return (
        relpath.startswith("engine/")
        or relpath == "analysis/streaming.py"
    )


@rule
def check_kernels(module: SourceModule):
    if not in_kernel_scope(module.relpath):
        return
    gated_classes = _gated_classes(module)
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            if node.name.endswith("Kernel"):
                yield from _check_kernel_class(module, node)
            elif node.name not in gated_classes:
                yield from _check_ungated(module, node, f"class {node.name}")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _caller_owns_namespace(node):
                yield from _check_ungated(module, node, f"function {node.name}")
        else:
            yield from _check_ungated(module, node, "module-level code")


def _check_kernel_class(module: SourceModule, cls: ast.ClassDef):
    for node, op in _nonstandard_uses(cls):
        yield _make(
            module, node, "RL401",
            f"kernel {cls.name} uses non-array-API op `xp.{op}` — "
            "kernels must run on any resolved backend; move the "
            "convenience behind require_engine_loops",
        )
    for node, what in _inplace_uses(cls):
        yield _make(
            module, node, "RL402",
            f"kernel {cls.name} mutates in place via {what} — "
            "kernels must stay functional (out=/.at are "
            "NumPy-only semantics)",
        )


def _check_ungated(module: SourceModule, node: ast.AST, context: str):
    offences = [(n, f"non-array-API op `xp.{op}`") for n, op in
                _nonstandard_uses(node)]
    offences += [(n, f"in-place {what}") for n, what in _inplace_uses(node)]
    for offending, what in sorted(offences, key=lambda o: (o[0].lineno, o[0].col_offset)):
        yield _make(
            module, offending, "RL403",
            f"{what} in un-gated {context} — call require_engine_loops "
            "(or take xp from the caller) before relying on NumPy "
            "conveniences",
        )


def _make(module: SourceModule, node: ast.AST, code: str, message: str):
    return Finding(
        path=module.path,
        relpath=module.relpath,
        line=node.lineno,
        col=node.col_offset,
        code=code,
        message=message,
    )


def _nonstandard_uses(root: ast.AST):
    """(node, op-name) for each ``xp.<op>`` outside the standard."""
    for node in ast.walk(root):
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if isinstance(base, ast.Name) and base.id == "xp":
            if node.attr not in STANDARD_OPS:
                yield node, node.attr
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "xp"
            and base.attr not in ("linalg", "fft")
        ):
            # ufunc methods: xp.maximum.accumulate, xp.add.at, ...
            yield node, f"{base.attr}.{node.attr}"


def _inplace_uses(root: ast.AST):
    """(node, description) for ``out=`` keywords on ``xp.*`` calls."""
    for node in ast.walk(root):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or not name.startswith("xp."):
            continue
        for kw in node.keywords:
            if kw.arg == "out":
                yield node, f"`out=` on `{name}`"


def _caller_owns_namespace(func: ast.FunctionDef) -> bool:
    params = [
        *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
    ]
    return any(arg.arg in _NAMESPACE_PARAMS for arg in params)


def _gated_classes(module: SourceModule) -> set[str]:
    """Names of top-level classes allowed NumPy conveniences.

    A class is gated when any of its methods calls
    ``require_engine_loops`` — directly or through a module-level
    helper that does — or when it inherits from a gated class defined
    in the same module.
    """
    gating_helpers = {GATE_FUNCTION}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _calls_any(node, {GATE_FUNCTION}):
                gating_helpers.add(node.name)

    classes = [n for n in module.tree.body if isinstance(n, ast.ClassDef)]
    gated = {
        cls.name for cls in classes
        if any(
            _calls_any(method, gating_helpers)
            for method in class_methods(cls).values()
        )
    }
    # Propagate through same-module inheritance to a fixed point.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in gated:
                continue
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id in gated:
                    gated.add(cls.name)
                    changed = True
                    break
    return gated


def _calls_any(root: ast.AST, names: set[str]) -> bool:
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            called = dotted_name(node.func)
            if called is not None and called.rpartition(".")[2] in names:
                return True
    return False
