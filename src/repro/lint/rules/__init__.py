"""Rule modules of ``repro lint``.

Importing this package registers every check with the registry (the
``@rule`` decorators run at import time); :func:`repro.lint.run_lint`
does so lazily on first use.
"""

from . import (  # noqa: F401
    checkpointing,
    determinism,
    fingerprint,
    kernels,
    seam,
)
