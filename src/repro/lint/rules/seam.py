"""RL1 — backend-seam rules.

``src/repro/engine/`` and ``src/repro/analysis/streaming.py`` obtain
their array namespace and dtypes from :mod:`repro.engine.backend`, the
one sanctioned ``import numpy`` site of those layers.  These AST rules
supersede the regex grep that used to live in
``tests/unit/test_backend_seam.py`` and close its gaps: aliased
imports (``import numpy as _np``), parenthesised multi-line
``from numpy import (...)`` and dynamic ``__import__("numpy")`` /
``importlib.import_module("numpy")`` forms are all statements or
expressions the AST sees directly, where a line-oriented regex saw
nothing.

Allowed by design (exactly as before): host aliases like
``np = HOST.xp`` and ``np.random`` *attribute access* — RL1 targets
the import machinery and dtype literals specifically.
"""

from __future__ import annotations

import ast
import re

from ..findings import Finding
from ..registry import rule
from ..walker import SourceModule, dotted_name, string_constant

#: The seam scope, relative to the package root.
SANCTIONED = "engine/backend.py"

#: Raw dtype attribute names (``np.int64``, ``numpy.bool_``, ...);
#: dtypes must come from ``backend.dtypes`` or the host constants
#: re-exported by ``repro.engine.backend``.
_DTYPE = re.compile(r"^(?:u?int\d+|float\d+|bool_|complex\d+)$")


def in_seam_scope(relpath: str) -> bool:
    """Whether RL1 applies to this (root-relative) module path."""
    if relpath == SANCTIONED:
        return False
    return (
        relpath.startswith("engine/")
        or relpath == "analysis/streaming.py"
    )


def _is_numpy(module_name: str | None) -> bool:
    return module_name is not None and (
        module_name == "numpy" or module_name.startswith("numpy.")
    )


@rule
def check_seam(module: SourceModule):
    if not in_seam_scope(module.relpath):
        return
    make = lambda node, code, message: Finding(  # noqa: E731
        path=module.path,
        relpath=module.relpath,
        line=node.lineno,
        col=node.col_offset,
        code=code,
        message=message,
    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_numpy(alias.name):
                    shown = alias.name + (
                        f" as {alias.asname}" if alias.asname else ""
                    )
                    yield make(
                        node, "RL101",
                        f"`import {shown}` outside the backend seam — "
                        "route arrays and dtypes through "
                        "repro.engine.backend",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and _is_numpy(node.module):
                names = ", ".join(alias.name for alias in node.names)
                yield make(
                    node, "RL101",
                    f"`from {node.module} import {names}` outside the "
                    "backend seam — route arrays and dtypes through "
                    "repro.engine.backend",
                )
        elif isinstance(node, ast.Call):
            target = None
            func_name = dotted_name(node.func)
            if func_name == "__import__" and node.args:
                target = string_constant(node.args[0])
            elif func_name in (
                "importlib.import_module", "import_module"
            ) and node.args:
                target = string_constant(node.args[0])
            if _is_numpy(target):
                yield make(
                    node, "RL102",
                    f"dynamic import of {target!r} outside the backend "
                    "seam — route arrays and dtypes through "
                    "repro.engine.backend",
                )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and _DTYPE.match(node.attr)
                and (
                    node.value.id in ("np", "numpy")
                    or _is_numpy(
                        module.import_aliases.get(node.value.id)
                    )
                )
            ):
                yield make(
                    node, "RL103",
                    f"raw dtype literal `{node.value.id}.{node.attr}` — "
                    "use the backend dtype table (backend.dtypes.int64, "
                    "...) or the host constants (INT64, FLOAT64, ...) "
                    "from repro.engine.backend",
                )
