"""RL3 — checkpoint-completeness rules (the ``repro-ckpt/v1`` contract).

Any class offering ``snapshot()``/``restore()`` promises that a
restored object replays *identically*.  The classic way that promise
rots: someone adds a stateful ``self._x`` to ``__init__``, mutates it
during stepping, and forgets to thread it through the checkpoint
payload.  Nothing fails until a resumed run silently diverges.

Detection, per class that defines both ``snapshot`` and ``restore``:

1. collect every underscore field directly assigned in ``__init__``
   (``self._x = ...`` / annotated / unpacked);
2. keep the *mutable* ones — fields also written outside
   ``__init__``/``restore`` (rebind, ``+=``, subscript store, ``del``,
   or a mutating method call such as ``.append``/``.update``/
   ``.fill``).  Fields never touched after construction are static
   configuration and need no serialisation;
3. require each mutable field to be referenced in the transitive
   closure of ``snapshot`` (else ``RL301``) and of ``restore`` (else
   ``RL302``).  The closure follows ``self.method()`` calls defined on
   the same class, so a snapshot that serialises ``_dark`` via
   ``self.dark_counts()`` counts.

Findings anchor at the field's ``__init__`` assignment — that is where
the waiver belongs, next to the field it is justifying.  The analysis
is single-file and inheritance-blind by design: an engine that splits
``__init__`` and ``snapshot`` across a class hierarchy should carry a
waiver explaining where the field is handled.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule
from ..walker import (
    SourceModule,
    class_methods,
    self_attribute,
    self_attribute_base,
)

#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear",
    "add", "discard", "update", "setdefault", "popitem",
    "sort", "reverse", "fill", "partial_fill", "put", "itemset",
})


@rule
def check_checkpoints(module: SourceModule):
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(module, node)


def _check_class(module: SourceModule, cls: ast.ClassDef):
    methods = class_methods(cls)
    snapshot = methods.get("snapshot")
    restore = methods.get("restore")
    init = methods.get("__init__")
    if snapshot is None or restore is None or init is None:
        return

    assigned = _init_assignments(init)
    if not assigned:
        return

    mutated = _mutated_fields(methods)
    snapshot_refs = _closure_references(snapshot, methods)
    restore_refs = _closure_references(restore, methods)

    for name, node in assigned.items():
        if name not in mutated:
            continue
        if name not in snapshot_refs:
            yield Finding(
                path=module.path,
                relpath=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                code="RL301",
                message=(
                    f"mutable field `self.{name}` of {cls.name} is "
                    "never serialised in snapshot() — a resumed run "
                    "will diverge (repro-ckpt/v1)"
                ),
            )
        if name not in restore_refs:
            yield Finding(
                path=module.path,
                relpath=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                code="RL302",
                message=(
                    f"mutable field `self.{name}` of {cls.name} is "
                    "never restored in restore() — a resumed run "
                    "will diverge (repro-ckpt/v1)"
                ),
            )


def _init_assignments(init: ast.FunctionDef) -> dict[str, ast.AST]:
    """Underscore fields directly assigned in ``__init__``.

    Maps field name -> first assignment node (the waiver anchor).
    """
    fields: dict[str, ast.AST] = {}

    def record(target: ast.AST, node: ast.AST):
        name = self_attribute(target)
        if name is not None and name.startswith("_"):
            fields.setdefault(name, node)

    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        record(element, node)
                else:
                    record(target, node)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            record(node.target, node)
    return fields


def _mutated_fields(methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Fields written outside ``__init__``/``restore``."""
    mutated: set[str] = set()
    for name, method in methods.items():
        if name in ("__init__", "restore"):
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = []
                for target in node.targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        targets.extend(target.elts)
                    else:
                        targets.append(target)
                for target in targets:
                    field = self_attribute_base(target)
                    if field is not None:
                        mutated.add(field)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                field = self_attribute_base(node.target)
                if field is not None:
                    mutated.add(field)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    field = self_attribute_base(target)
                    if field is not None:
                        mutated.add(field)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATORS
                ):
                    field = self_attribute_base(node.func.value)
                    if field is not None:
                        mutated.add(field)
    return mutated


def _closure_references(
    entry: ast.FunctionDef, methods: dict[str, ast.FunctionDef]
) -> set[str]:
    """``self._x`` names reachable from ``entry`` through self-calls."""
    refs: set[str] = set()
    visited: set[str] = set()
    queue = [entry]
    while queue:
        method = queue.pop()
        if method.name in visited:
            continue
        visited.add(method.name)
        for node in ast.walk(method):
            attr = self_attribute(node) if isinstance(node, ast.Attribute) else None
            if attr is not None:
                refs.add(attr)
                if attr in methods:  # self.helper() / property access
                    queue.append(methods[attr])
    return refs
