"""RL5 — fingerprint-hygiene rules.

Shard keys are content addresses: two processes computing the key for
the same work must get the same bytes, or the cache silently forks.
The hashing paths therefore must not observe any ordering that Python
does not guarantee across processes — set iteration order, hash-seeded
dict order, filesystem directory order — and every JSON serialisation
they hash must be ``sort_keys=True``.

Scope: any module that defines one of the hash entry functions
(``shard_key``, ``spec_fingerprint``, ``package_fingerprint``,
``measurement_fingerprint``, ``backend_fingerprint``,
``_seed_payload``), extended to the same-module functions those
entries call (``package_fingerprint`` -> ``_module_source_hash`` and
friends).  Inside that closure:

``RL501``
    a ``for`` loop or comprehension drawing from a set (literal,
    ``set()``/``frozenset()``), an unsorted dict view
    (``.keys()``/``.values()``/``.items()``) or an unsorted directory
    walk (``.glob``/``.rglob``/``.iterdir``).  Wrapping in ``sorted()``
    (possibly through ``list``/``tuple``/``enumerate``/``reversed``)
    makes the order explicit and silences the rule.
``RL502``
    ``json.dumps(...)`` without ``sort_keys=True`` — the serialised
    bytes would depend on dict build order.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule
from ..walker import SourceModule, dotted_name

#: Functions whose return values feed SHA-256 content addresses.
HASH_ENTRIES = frozenset({
    "shard_key", "spec_fingerprint", "package_fingerprint",
    "measurement_fingerprint", "backend_fingerprint", "_seed_payload",
})

#: Benign wrappers to peel when looking for an ordering guarantee.
_TRANSPARENT = frozenset({"list", "tuple", "enumerate", "reversed"})

_UNORDERED_METHODS = frozenset({
    "keys", "values", "items", "glob", "rglob", "iterdir",
})


@rule
def check_fingerprints(module: SourceModule):
    functions = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    entries = [name for name in functions if name in HASH_ENTRIES]
    if not entries:
        return

    closure = _call_closure(entries, functions)
    for name in sorted(closure):
        yield from _check_function(module, functions[name])


def _call_closure(
    entries: list[str], functions: dict[str, ast.FunctionDef]
) -> set[str]:
    reached: set[str] = set()
    queue = list(entries)
    while queue:
        name = queue.pop()
        if name in reached:
            continue
        reached.add(name)
        for node in ast.walk(functions[name]):
            if isinstance(node, ast.Call):
                called = dotted_name(node.func)
                if called is not None:
                    tail = called.rpartition(".")[2]
                    if tail in functions and tail not in reached:
                        queue.append(tail)
    return reached


def _check_function(module: SourceModule, func: ast.FunctionDef):
    for node in ast.walk(func):
        iterables = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            reason = _unordered_reason(iterable)
            if reason is not None:
                yield Finding(
                    path=module.path,
                    relpath=module.relpath,
                    line=iterable.lineno,
                    col=iterable.col_offset,
                    code="RL501",
                    message=(
                        f"{reason} iterated in hash path "
                        f"`{func.name}` — wrap it in sorted() so the "
                        "content address is order-independent"
                    ),
                )
        if isinstance(node, ast.Call):
            called = dotted_name(node.func)
            if called in ("json.dumps", "json.dump") and not _sorts_keys(node):
                yield Finding(
                    path=module.path,
                    relpath=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RL502",
                    message=(
                        f"`{called}` without sort_keys=True in hash "
                        f"path `{func.name}` — serialised bytes would "
                        "track dict build order"
                    ),
                )


def _unordered_reason(node: ast.AST) -> str | None:
    """Why iterating ``node`` has no cross-process order, or None."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT
        and node.args
    ):
        node = node.args[0]
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id == "sorted":
                return None
            if node.func.id in ("set", "frozenset"):
                return f"`{node.func.id}()`"
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr == "sorted":
                return None
            if node.func.attr in _UNORDERED_METHODS:
                return f"`.{node.func.attr}()`"
    elif isinstance(node, ast.Set):
        return "set literal"
    return None


def _sorts_keys(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs — cannot see inside, trust it
            return True
        if kw.arg == "sort_keys":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False
