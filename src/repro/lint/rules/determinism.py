"""RL2 — determinism rules.

The repo's reproducibility story rests on every random draw flowing
from an explicit ``SeedSequence`` (see ``engine/rng.py``) and on
library results never depending on wall-clock time.  These rules catch
the three classic leaks:

``RL201``
    ``np.random.*`` *global-state* calls (``np.random.seed``,
    ``np.random.rand``, ...).  Constructing generator objects
    (``np.random.default_rng``, ``np.random.Generator``,
    ``np.random.PCG64``, ``np.random.SeedSequence``) is fine — those
    are the sanctioned, explicit-state API (RL204 checks their
    seeding).
``RL202``
    importing the stdlib ``random`` module in library code.
``RL203``
    calling wall-clock sources (``time.time``, ``datetime.now``,
    ``datetime.utcnow``, ``datetime.today``) in library code.
    ``time.perf_counter``/``monotonic`` are allowed: they feed timing
    *measurements*, never results.
``RL204``
    ``default_rng()`` / ``SeedSequence()`` with no argument outside
    ``engine/rng.py`` — an unseeded construction draws OS entropy and
    the run is unreproducible.  ``engine/rng.py`` is the sanctioned
    site (it seeds from the experiment spec).

Scope: the whole package except the CLI (``cli.py`` may timestamp its
progress output).  Tests and fixtures are outside the lint root.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..registry import rule
from ..walker import SourceModule, dotted_name

#: Explicit-state constructors reachable via ``np.random.`` that RL201
#: must NOT flag (RL204 owns their seeding discipline).
_GENERATOR_API = frozenset({
    "default_rng", "Generator", "PCG64", "PCG64DXSM", "Philox",
    "SFC64", "MT19937", "SeedSequence", "BitGenerator", "RandomState",
})

#: Wall-clock call targets (post alias-resolution dotted names).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Unseeded-construction targets for RL204 (tail of the dotted name).
_SEEDED_CONSTRUCTORS = frozenset({"default_rng", "SeedSequence"})

#: Module whose whole purpose is turning specs into seeds.
RNG_MODULE = "engine/rng.py"


def in_determinism_scope(relpath: str) -> bool:
    return relpath != "cli.py"


def _make(module: SourceModule, node: ast.AST, code: str, message: str):
    return Finding(
        path=module.path,
        relpath=module.relpath,
        line=node.lineno,
        col=node.col_offset,
        code=code,
        message=message,
    )


@rule
def check_determinism(module: SourceModule):
    if not in_determinism_scope(module.relpath):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield _make(
                        module, node, "RL202",
                        "stdlib `random` is seeded globally and "
                        "process-wide — draw from an explicit "
                        "Generator (see engine/rng.py) instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield _make(
                    module, node, "RL202",
                    "stdlib `random` is seeded globally and "
                    "process-wide — draw from an explicit "
                    "Generator (see engine/rng.py) instead",
                )
        elif isinstance(node, ast.Call):
            target = module.resolve_dotted(node.func)
            if target is None:
                continue
            head, _, tail = target.rpartition(".")
            if (
                head in ("np.random", "numpy.random")
                and tail not in _GENERATOR_API
            ):
                yield _make(
                    module, node, "RL201",
                    f"`{target}` mutates numpy's hidden global RNG "
                    "state — use an explicit Generator from "
                    "engine/rng.py",
                )
            elif target in _WALL_CLOCK:
                yield _make(
                    module, node, "RL203",
                    f"`{target}` makes output depend on wall-clock "
                    "time — thread timestamps in from the caller "
                    "(perf_counter is fine for durations)",
                )
            elif (
                tail in _SEEDED_CONSTRUCTORS
                and _looks_like_rng_constructor(target)
                and not _has_seed_argument(node)
                and module.relpath != RNG_MODULE
            ):
                yield _make(
                    module, node, "RL204",
                    f"`{tail}()` with no seed draws OS entropy — "
                    "seed it explicitly or obtain generators from "
                    "engine/rng.py",
                )


def _looks_like_rng_constructor(target: str) -> bool:
    """Filter out unrelated ``something.default_rng`` methods.

    Accept the bare names (imported from numpy.random or re-exported
    by engine.backend) and the ``np.random.``/``numpy.random.``
    qualified forms.
    """
    head, _, _tail = target.rpartition(".")
    return head in ("", "np.random", "numpy.random", "numpy.random._generator")


def _has_seed_argument(call: ast.Call) -> bool:
    if any(not isinstance(arg, ast.Starred) for arg in call.args):
        return True
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True  # can't see inside *args: assume seeded
    for kw in call.keywords:
        if kw.arg in (None, "seed", "entropy"):
            return True
    return False
