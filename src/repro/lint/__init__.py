"""``repro.lint`` — AST-based static checks for the repo's invariants.

The linter never imports the code it inspects: every rule is a pure
function of one file's AST, so it runs identically in CI, pre-commit
and the test suite.  See :mod:`repro.lint.findings` for the rule-code
catalogue and :mod:`repro.lint.rules` for the five rule families.

Public API::

    from repro.lint import run_lint
    findings = run_lint()                     # whole installed package
    findings = run_lint(["src/repro/engine"]) # specific paths
    findings = run_lint(select=["RL1", "RL302"], ignore=["RL103"])

Inline waivers: ``# repro-lint: disable=CODE[,CODE] -- justification``
on the offending line (or alone on the line above).
"""

from .findings import RULE_CODES, RULE_FAMILIES, Finding
from .registry import run_lint
from .reporters import render, render_github, render_json, render_text

__all__ = [
    "Finding",
    "RULE_CODES",
    "RULE_FAMILIES",
    "render",
    "render_github",
    "render_json",
    "render_text",
    "run_lint",
]
