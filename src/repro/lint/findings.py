"""Finding records and the rule-code catalogue of ``repro lint``.

Codes are grouped into five families, each guarding one repo invariant
(see the rule modules under :mod:`repro.lint.rules` for the rationale
and the precise detection logic):

``RL1``
    Backend-seam: no numpy imports or raw dtype literals outside
    ``engine/backend.py`` in the seam scope.
``RL2``
    Determinism: no global-state / wall-clock / unseeded randomness in
    library code.
``RL3``
    Checkpoint completeness: every mutable ``self._x`` of a
    ``snapshot()``/``restore()`` class is serialised and restored
    (the ``repro-ckpt/v1`` contract).
``RL4``
    Kernel purity: transition kernels stay on array-API-standard ops;
    non-standard conveniences stay behind ``require_engine_loops``.
``RL5``
    Fingerprint hygiene: no unordered iteration or order-sensitive
    serialisation feeding the content-address hashing paths.

Selectors (``--select``/``--ignore``/waivers) match codes by prefix:
``RL3`` selects both ``RL301`` and ``RL302``; ``all`` matches
everything.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

#: Every rule code with a one-line description.  The CLI prints this
#: table and selector validation checks prefixes against it.
RULE_CODES: dict[str, str] = {
    "RL000": "file could not be parsed (syntax error)",
    "RL101": "numpy import outside the backend seam",
    "RL102": "dynamic numpy import (__import__/import_module) in seam scope",
    "RL103": "raw np./numpy. dtype literal outside engine/backend.py",
    "RL201": "np.random global-state call",
    "RL202": "stdlib `random` import in library code",
    "RL203": "wall-clock nondeterminism (time.time/datetime.now) call",
    "RL204": "default_rng()/SeedSequence() without an explicit seed",
    "RL301": "mutable engine field missing from snapshot()",
    "RL302": "mutable engine field missing from restore()",
    "RL401": "non-array-API-standard op in a transition kernel",
    "RL402": "in-place mutation (out=/scatter) in a transition kernel",
    "RL403": "non-standard op in a class not gated by require_engine_loops",
    "RL501": "unordered set/dict/glob iteration in a fingerprint path",
    "RL502": "json.dumps without sort_keys=True in a fingerprint path",
}

#: Family prefixes with the invariant each one guards (for --help and
#: the README table).
RULE_FAMILIES: dict[str, str] = {
    "RL1": "backend seam (engine/backend.py is the only numpy site)",
    "RL2": "determinism (seeded, host-drawn, wall-clock-free library code)",
    "RL3": "checkpoint completeness (repro-ckpt/v1 snapshot/restore)",
    "RL4": "kernel purity (array-API-standard transition kernels)",
    "RL5": "fingerprint hygiene (order-independent cache keys)",
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position."""

    path: pathlib.Path
    relpath: str
    line: int
    code: str
    message: str
    col: int = field(default=0)

    def sort_key(self):
        return (self.relpath, self.line, self.col, self.code)

    def location(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col + 1}"


def normalise_selector(selector: str) -> str:
    """Canonical (upper-case, stripped) form of a code selector."""
    return selector.strip().upper()


def selector_matches(selector: str, code: str) -> bool:
    """Prefix semantics: ``RL3`` matches ``RL301``; ``ALL`` matches all."""
    selector = normalise_selector(selector)
    return selector == "ALL" or code.upper().startswith(selector)


def validate_selectors(selectors) -> list[str]:
    """Normalise ``selectors`` and reject ones matching no known code."""
    out = []
    for selector in selectors:
        canon = normalise_selector(selector)
        if not canon:
            continue
        if canon != "ALL" and not any(
            code.startswith(canon) for code in RULE_CODES
        ):
            known = ", ".join(sorted(RULE_FAMILIES))
            raise ValueError(
                f"unknown rule selector {selector!r} "
                f"(families: {known}; see RULE_CODES for full codes)"
            )
        out.append(canon)
    return out
