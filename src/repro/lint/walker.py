"""Source loading and shared AST analysis for the lint rules.

A :class:`SourceModule` bundles one parsed file with the pieces every
rule needs: the AST, the package-relative posix path (rules scope on
it — ``engine/batched.py``, ``analysis/streaming.py``, ...), the
waiver table, and import-alias maps for resolving dotted call targets
(``_time.perf_counter`` -> ``time.perf_counter``).

The module-level helpers are deliberately dumb, syntactic analyses:
the linter runs without importing the code under inspection, so every
judgement is a pure function of one file's AST.
"""

from __future__ import annotations

import ast
import pathlib
from functools import cached_property

from .waivers import extract_waivers


class SourceModule:
    """One Python source file prepared for linting."""

    def __init__(self, path: pathlib.Path, root: pathlib.Path):
        self.path = pathlib.Path(path)
        self.root = pathlib.Path(root)
        self.text = self.path.read_text()
        try:
            relative = self.path.resolve().relative_to(self.root.resolve())
            self.relpath = relative.as_posix()
        except ValueError:
            self.relpath = self.path.as_posix()

    @cached_property
    def tree(self) -> ast.Module:
        """The parsed AST (raises :exc:`SyntaxError` on bad source)."""
        return ast.parse(self.text, filename=str(self.path))

    @cached_property
    def waivers(self) -> dict[int, frozenset[str]]:
        return extract_waivers(self.text)

    @cached_property
    def import_aliases(self) -> dict[str, str]:
        """Local name -> dotted origin for every import in the file.

        ``import time as _time`` maps ``_time -> time``;
        ``from datetime import datetime`` maps
        ``datetime -> datetime.datetime``.  Used to resolve call
        targets through whatever alias the module chose.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else name
                    aliases[name] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative imports never shadow stdlib
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve_dotted(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with its first segment de-aliased.

        ``_time.perf_counter`` -> ``time.perf_counter`` under
        ``import time as _time``; returns None for non-name chains
        (calls, subscripts, ...).
        """
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        origin = self.import_aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def self_attribute(node: ast.AST) -> str | None:
    """``_x`` when ``node`` is exactly ``self._x``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attribute_base(node: ast.AST) -> str | None:
    """The ``self`` attribute a subscript/attribute chain is rooted in.

    ``self._pool[rows]`` and ``self._live_counts["colour"][i]`` both
    resolve to the field the chain mutates when stored into.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        attr = self_attribute(node)
        if attr is not None:
            return attr
        node = node.value
    return None


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly defined methods of a class (no inheritance)."""
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def iter_python_files(path: pathlib.Path):
    """Yield ``*.py`` files under ``path`` (sorted, caches skipped)."""
    if path.is_file():
        yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if "__pycache__" not in candidate.parts:
            yield candidate


def string_constant(node: ast.AST) -> str | None:
    """The value of a string literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
