"""Inline waiver parsing: ``# repro-lint: disable=CODE[,CODE]``.

A waiver comment suppresses findings whose code matches one of its
(prefix-semantics) selectors:

* on the same line as the finding — the usual form, appended to the
  offending statement's first line (multi-line statements report at
  their first line, so that is where the waiver goes);
* on a comment-only line — applies to the next line, for statements
  too long to carry a trailing comment.

Anything after the selector list is free-form justification; the
repo convention is ``disable=CODE -- why this is safe``.  Waivers are
parsed with :mod:`tokenize`, so comments inside strings never count.
"""

from __future__ import annotations

import io
import re
import tokenize

from .findings import selector_matches

_WAIVER = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
)


def extract_waivers(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> selector set for every waiver comment.

    A waiver on a comment-only line is attached to the *following*
    line as well as its own, so both anchoring styles work.
    """
    waivers: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER.search(token.string)
            if match is None:
                continue
            selectors = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
            line = token.start[0]
            waivers.setdefault(line, set()).update(selectors)
            before = token.line[: token.start[1]]
            if not before.strip():  # comment-only line: cover the next
                waivers.setdefault(line + 1, set()).update(selectors)
    except tokenize.TokenError:
        pass  # the AST parse reports the syntax error (RL000)
    return {line: frozenset(codes) for line, codes in waivers.items()}


def is_waived(
    waivers: dict[int, frozenset[str]], line: int, code: str
) -> bool:
    """Whether a finding of ``code`` on ``line`` is waived."""
    for selector in waivers.get(line, ()):
        if selector_matches(selector, code):
            return True
    return False
