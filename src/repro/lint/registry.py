"""Rule registration and the :func:`run_lint` driver.

A *check* is a generator function ``check(module: SourceModule) ->
Iterator[Finding]``; rule modules register theirs with the
:func:`rule` decorator at import time, and :func:`run_lint` walks the
requested files, runs every registered check, and filters the result
through inline waivers and ``--select``/``--ignore`` selectors.

The scoping contract: rules decide applicability from
``module.relpath`` (posix, relative to the lint *root* — the ``repro``
package directory by default), so the same rules run unchanged against
the real package and against fixture trees in the test suite.
"""

from __future__ import annotations

import pathlib
from collections.abc import Callable, Iterable, Iterator

from .findings import Finding, selector_matches, validate_selectors
from .walker import SourceModule, iter_python_files
from .waivers import is_waived

#: All registered checks, in registration order.
_CHECKS: list[Callable[[SourceModule], Iterator[Finding]]] = []


def rule(check):
    """Register ``check`` as a lint rule (decorator)."""
    _CHECKS.append(check)
    return check


def registered_checks() -> tuple:
    return tuple(_CHECKS)


def default_root() -> pathlib.Path:
    """The installed ``repro`` package directory."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def detect_root(path: pathlib.Path) -> pathlib.Path:
    """The package root governing ``path``'s scope-relative names.

    The nearest ancestor (including ``path`` itself) that is a
    ``repro`` package directory; for paths outside any such package
    (fixture trees), the directory itself — callers wanting different
    scoping pass ``root=`` explicitly.
    """
    path = path.resolve()
    start = path if path.is_dir() else path.parent
    for ancestor in (start, *start.parents):
        if ancestor.name == "repro" and (ancestor / "__init__.py").is_file():
            return ancestor
    return start


def run_lint(
    paths: Iterable[pathlib.Path | str] | None = None,
    *,
    root: pathlib.Path | str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint ``paths`` (default: the whole ``repro`` package).

    ``select`` keeps only findings matching one of its code prefixes;
    ``ignore`` then drops matching findings (ignore wins on overlap,
    mirroring the usual linter semantics).  Inline waivers are always
    honoured.  Findings come back sorted by (path, line, col, code).
    Unknown selectors raise :exc:`ValueError`.
    """
    # Import for side effect: rule modules register their checks.
    from . import rules  # noqa: F401

    selected = validate_selectors(select or [])
    ignored = validate_selectors(ignore or [])

    if paths is None:
        resolved_root = (
            pathlib.Path(root).resolve() if root is not None
            else default_root()
        )
        targets = [resolved_root]
    else:
        targets = [pathlib.Path(p) for p in paths]
        resolved_root = (
            pathlib.Path(root).resolve() if root is not None
            else detect_root(targets[0])
        )

    findings: list[Finding] = []
    seen: set[pathlib.Path] = set()
    for target in targets:
        if not target.exists():
            raise FileNotFoundError(f"no such file or directory: {target}")
        for path in iter_python_files(target):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            findings.extend(_lint_file(path, resolved_root))

    if selected:
        findings = [
            f for f in findings
            if any(selector_matches(s, f.code) for s in selected)
        ]
    if ignored:
        findings = [
            f for f in findings
            if not any(selector_matches(s, f.code) for s in ignored)
        ]
    return sorted(findings, key=Finding.sort_key)


def _lint_file(
    path: pathlib.Path, root: pathlib.Path
) -> list[Finding]:
    module = SourceModule(path, root)
    try:
        module.tree
    except SyntaxError as error:
        return [
            Finding(
                path=module.path,
                relpath=module.relpath,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                code="RL000",
                message=f"syntax error: {error.msg}",
            )
        ]
    out = []
    for check in _CHECKS:
        for finding in check(module):
            if not is_waived(module.waivers, finding.line, finding.code):
                out.append(finding)
    return out
