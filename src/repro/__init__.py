"""repro — reproduction of *Diversity, Fairness, and Sustainability in
Population Protocols* (Kang, Mallmann-Trenn, Rivera; PODC 2021).

Quickstart::

    from repro import Diversification, WeightTable, run_aggregate

    weights = WeightTable([1.0, 2.0, 3.0])   # three tasks, skewed needs
    record = run_aggregate(weights, n=1000, steps=500_000)
    print(record.final_colour_counts)        # ≈ n·w_i/w per colour

Replicated runs vectorise across repetitions: ``replications=R`` fuses
R independent chains into one ``(R, 2k)`` NumPy state matrix (the
batched engine), which is how the experiment suite repeats a
measurement without paying the Python interpreter R times over::

    batch = run_aggregate(weights, n=1000, steps=500_000,
                          replications=100, batched=True)
    print(batch.final_colour_counts.shape)   # (100, 3), one row per run
    print(batch.mean_colour_counts)          # ≈ n·w_i/w per colour

*Agent-level* runs — the execution model the paper actually defines,
and the only one that supports explicit topologies and the baseline
dynamics — vectorise too: :func:`run_agent` routes protocols with a
registered transition kernel (Diversification, Voter, 3-Majority, the
unweighted ablation) through the structure-of-arrays
:class:`~repro.engine.ArraySimulation`, which applies kernels to
conflict-free blocks of steps and falls back to the scalar
:class:`~repro.engine.Simulation` for everything else (custom
protocols, interventions, non-CSR topologies)::

    record = run_agent(Diversification(weights), weights,
                       n=10_000, steps=500_000)   # array engine
    record = run_agent(..., engine="scalar")       # force the fallback

Packages:

* :mod:`repro.core` — the Diversification protocol family and Def 1.1;
* :mod:`repro.engine` — agent-level (scalar + vectorised) and
  aggregate simulators;
* :mod:`repro.topology` — complete graph plus future-work graphs;
* :mod:`repro.baselines` — consensus dynamics of the related work;
* :mod:`repro.analysis` — potentials, the equilibrium chain, bounds;
* :mod:`repro.adversary` — structural interventions;
* :mod:`repro.experiments` — the E1-E12 reproduction suite.
"""

from .core import (
    DARK,
    LIGHT,
    AgentState,
    DerandomisedDiversification,
    Diversification,
    GoodnessReport,
    Protocol,
    WeightTable,
    assess_goodness,
    diversity_bound,
    diversity_error,
    is_diverse,
    is_fair,
    is_sustainable,
    weights_from_demands,
)
from .engine import (
    AggregateSimulation,
    ArraySimulation,
    BatchedAggregateSimulation,
    ConvergenceDetector,
    MinCountTracker,
    OccupancyTracker,
    Population,
    Simulation,
    make_rng,
)
from .experiments import (
    BatchRunRecord,
    RunRecord,
    run_agent,
    run_aggregate,
    run_diversification_agent,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AgentState",
    "DARK",
    "LIGHT",
    "Protocol",
    "Diversification",
    "DerandomisedDiversification",
    "WeightTable",
    "weights_from_demands",
    "GoodnessReport",
    "assess_goodness",
    "diversity_bound",
    "diversity_error",
    "is_diverse",
    "is_fair",
    "is_sustainable",
    "AggregateSimulation",
    "ArraySimulation",
    "BatchedAggregateSimulation",
    "Simulation",
    "Population",
    "OccupancyTracker",
    "MinCountTracker",
    "ConvergenceDetector",
    "make_rng",
    "RunRecord",
    "BatchRunRecord",
    "run_aggregate",
    "run_agent",
    "run_diversification_agent",
]
