"""Colour weight tables.

Every colour ``i`` carries a weight ``w_i >= 1`` expressing its importance
(Sec 1.2 of the paper).  The fair share of colour ``i`` is ``w_i / w`` of
the population, where ``w = sum_i w_i``.  The table supports dynamic
colour addition because the paper's adversary may introduce new colours
at run time.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

MIN_WEIGHT = 1.0


class WeightTable:
    """Mapping from colour id to weight, with derived quantities.

    Colours are dense integers ``0..k-1``.  Weights must satisfy
    ``w_i >= 1`` as required by the protocol (the lightening probability
    ``1/w_i`` must be a probability).

    The table is mutable only through :meth:`add_colour`, which appends a
    new colour with the next free id — matching the adversary model in
    which colours are only ever *added*.
    """

    def __init__(self, weights: Sequence[float] | Mapping[int, float]):
        if isinstance(weights, Mapping):
            if sorted(weights) != list(range(len(weights))):
                raise ValueError("colour ids must be dense integers 0..k-1")
            values = [float(weights[i]) for i in range(len(weights))]
        else:
            values = [float(value) for value in weights]
        if not values:
            raise ValueError("at least one colour is required")
        for colour, value in enumerate(values):
            _validate_weight(colour, value)
        self._weights: list[float] = values

    @classmethod
    def uniform(cls, k: int, weight: float = 1.0) -> "WeightTable":
        """Table of ``k`` colours all sharing the same weight."""
        if k < 1:
            raise ValueError(f"need at least one colour, got k={k}")
        return cls([weight] * k)

    @property
    def k(self) -> int:
        """Number of colours currently in the system."""
        return len(self._weights)

    @property
    def total(self) -> float:
        """``w = sum_i w_i``, the normalisation constant."""
        return float(sum(self._weights))

    def weight(self, colour: int) -> float:
        """Weight ``w_i`` of a colour."""
        return self._weights[colour]

    def __getitem__(self, colour: int) -> float:
        return self._weights[colour]

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self) -> Iterator[float]:
        return iter(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightTable):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        return f"WeightTable({self._weights!r})"

    def as_array(self) -> np.ndarray:
        """Weights as a float64 numpy vector."""
        return np.asarray(self._weights, dtype=np.float64)

    def fair_shares(self) -> np.ndarray:
        """Target colour fractions ``w_i / w`` (Def 1.1(1))."""
        array = self.as_array()
        return array / array.sum()

    def dark_shares(self) -> np.ndarray:
        """Equilibrium dark fractions ``w_i / (1 + w)`` (Eq. (7))."""
        array = self.as_array()
        return array / (1.0 + array.sum())

    def light_shares(self) -> np.ndarray:
        """Equilibrium light fractions ``(w_i / w) / (1 + w)`` (Eq. (7))."""
        array = self.as_array()
        total = array.sum()
        return array / (total * (1.0 + total))

    def lighten_probability(self, colour: int) -> float:
        """Probability ``1 / w_i`` of a dark agent turning light."""
        return 1.0 / self._weights[colour]

    def add_colour(self, weight: float) -> int:
        """Append a new colour; returns its id (the next dense integer)."""
        colour = len(self._weights)
        _validate_weight(colour, float(weight))
        self._weights.append(float(weight))
        return colour

    def is_integer(self) -> bool:
        """True when every weight is integral (derandomised protocol)."""
        return all(float(value).is_integer() for value in self._weights)

    def copy(self) -> "WeightTable":
        """Independent copy of the table."""
        return WeightTable(list(self._weights))


def _validate_weight(colour: int, value: float) -> None:
    if not np.isfinite(value):
        raise ValueError(f"weight of colour {colour} must be finite")
    if value < MIN_WEIGHT:
        raise ValueError(
            f"weight of colour {colour} must be >= {MIN_WEIGHT}, got {value}"
        )


def weights_from_demands(demands: Iterable[float]) -> WeightTable:
    """Build a table from task demands by rescaling so min weight is 1.

    Task-allocation workloads are often expressed as relative demands
    (e.g. "forage twice as much as brood care").  The protocol requires
    ``w_i >= 1``; dividing by the minimum demand preserves the ratios.
    """
    values = [float(value) for value in demands]
    if not values:
        raise ValueError("at least one demand is required")
    lowest = min(values)
    if lowest <= 0:
        raise ValueError("demands must be positive")
    return WeightTable([value / lowest for value in values])
