"""The Diversification protocol (Sec 1.2, Eq. (2) of the paper).

Each agent holds a colour ``i`` with weight ``w_i >= 1`` and one extra
bit, the *shade*: dark (1) agents are committed to their colour, light
(0) agents are open to change.  When agent ``u`` is scheduled and samples
agent ``v``:

1. if ``u`` is light and ``v`` is dark, ``u`` adopts ``v``'s colour and
   becomes dark;
2. if ``u`` and ``v`` are both dark with the same colour ``i``, ``u``
   becomes light with probability ``1 / w_i``;
3. otherwise nothing happens.

The protocol needs no global knowledge: an agent only ever reads the
colour, weight and shade of the single agent it samples.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .protocol import Protocol
from .state import DARK, LIGHT, AgentState
from .weights import WeightTable


class Diversification(Protocol):
    """Randomised Diversification protocol of Kang et al. (PODC 2021).

    Args:
        weights: Colour weight table.  The table is shared (not copied)
            so that an adversary adding colours at run time is visible
            to the protocol immediately.
    """

    name = "diversification"
    arity = 1

    def __init__(self, weights: WeightTable):
        self.weights = weights

    def initial_state(self, colour: int) -> AgentState:
        """Agents start dark (``b_u(0) = 1`` in the paper)."""
        self._check_colour(colour)
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v = sampled[0]
        if u.is_light and v.is_dark:
            return AgentState(v.colour, DARK)
        if u.is_dark and v.is_dark and u.colour == v.colour:
            if rng.random() < self.weights.lighten_probability(u.colour):
                return AgentState(u.colour, LIGHT)
        return u

    def max_shade(self, colour: int) -> int:
        return DARK

    def _check_colour(self, colour: int) -> None:
        if not 0 <= colour < self.weights.k:
            raise ValueError(
                f"colour {colour} outside weight table of size {self.weights.k}"
            )
