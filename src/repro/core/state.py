"""Agent state model for the Diversification protocol and its relatives.

The paper's agents carry a *colour* ``i`` (a task identity, modelled as a
small non-negative integer) and a *shade* ``b``.  In the randomised
Diversification protocol the shade is a single bit: ``0`` (light, open to
change) or ``1`` (dark, committed).  In the derandomised variant the shade
is an integer counter in ``{0, ..., w_i}``.

States are small immutable value objects so that they can be shared,
hashed, used as dictionary keys, and compared structurally in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

LIGHT = 0
DARK = 1


@dataclass(frozen=True, slots=True)
class AgentState:
    """Immutable (colour, shade) pair held by a single agent.

    Attributes:
        colour: Non-negative integer colour identifier.
        shade: Confidence value.  For the randomised protocol this is
            ``LIGHT`` (0) or ``DARK`` (1); the derandomised protocol uses
            the full range ``0..w_i``.
    """

    colour: int
    shade: int

    def __post_init__(self) -> None:
        if self.colour < 0:
            raise ValueError(f"colour must be non-negative, got {self.colour}")
        if self.shade < 0:
            raise ValueError(f"shade must be non-negative, got {self.shade}")

    @property
    def is_light(self) -> bool:
        """True when the agent is open to adopting another colour."""
        return self.shade == LIGHT

    @property
    def is_dark(self) -> bool:
        """True when the agent has positive confidence in its colour."""
        return self.shade > LIGHT

    def lightened(self) -> "AgentState":
        """Return the same colour with shade decreased by one.

        Raises:
            ValueError: if the state is already light.
        """
        if self.is_light:
            raise ValueError("cannot lighten an already-light state")
        return AgentState(self.colour, self.shade - 1)

    def with_colour(self, colour: int, shade: int = DARK) -> "AgentState":
        """Return a state with a new colour at the given shade."""
        return AgentState(colour, shade)


def dark(colour: int) -> AgentState:
    """Convenience constructor for a dark (committed) state."""
    return AgentState(colour, DARK)


def light(colour: int) -> AgentState:
    """Convenience constructor for a light (open) state."""
    return AgentState(colour, LIGHT)
