"""Abstract interface for pairwise population protocols.

The engine (``repro.engine``) drives any :class:`Protocol`: at each
time-step it schedules a uniformly random agent ``u``, samples ``arity``
other agents (``arity`` is 1 for true population protocols; 2 for
2-Choices / 3-Majority style dynamics), and asks the protocol for ``u``'s
next state.  Only the scheduled agent changes state, matching the model
of Sec 1.2 of the paper.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from .state import AgentState


class Protocol(abc.ABC):
    """A local update rule executed by the scheduled agent.

    Subclasses must be stateless apart from configuration (weights etc.);
    all per-agent state lives in :class:`~repro.core.state.AgentState`
    so that the engine can store populations compactly.
    """

    #: Human-readable protocol name used in reports.
    name: str = "protocol"

    #: Number of other agents the scheduled agent samples per step.
    arity: int = 1

    @abc.abstractmethod
    def initial_state(self, colour: int) -> AgentState:
        """State of a fresh agent that starts with ``colour``."""

    @abc.abstractmethod
    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        """Next state of the scheduled agent ``u``.

        Args:
            u: Current state of the scheduled agent.
            sampled: States of the ``arity`` sampled agents (read-only).
            rng: Source of randomness for randomised rules.

        Returns:
            The new state of ``u`` (may be ``u`` itself for a no-op).
        """

    def max_shade(self, colour: int) -> int:
        """Largest shade value this protocol assigns to ``colour``.

        Used by engines to size count tables.  Binary-shade protocols
        return 1.
        """
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
