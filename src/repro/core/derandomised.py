"""Derandomised Diversification protocol (Sec 1.2 of the paper).

For non-negative *integer* weights the coin flip of the randomised
protocol can be removed: colour ``i`` has ``1 + w_i`` shades of grey
enumerated ``0`` (light) to ``w_i`` (dark).  When agent ``u`` is
scheduled and samples ``v``:

* if ``u`` and ``v`` share a colour and both have shade ``> 0``, ``u``
  reduces its shade by one;
* if ``u`` has shade 0 and ``v`` has shade ``> 0``, ``u`` adopts ``v``'s
  colour ``j`` at full shade ``w_j``;
* otherwise nothing happens.

A full lighten cycle therefore takes ``w_i`` same-colour meetings instead
of one meeting passing a ``1/w_i`` coin — the expected behaviour matches
the randomised protocol while using ``ceil(log2(1 + w_i))`` bits of
memory.  Analysing this variant is listed as an open problem in Sec 3;
experiment E9 probes it empirically.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .protocol import Protocol
from .state import AgentState
from .weights import WeightTable


class DerandomisedDiversification(Protocol):
    """Deterministic multi-shade variant for integer weights.

    Args:
        weights: Colour weight table; every weight must be integral.
    """

    name = "derandomised-diversification"
    arity = 1

    def __init__(self, weights: WeightTable):
        if not weights.is_integer():
            raise ValueError(
                "derandomised protocol requires integer weights; "
                f"got {list(weights)}"
            )
        self.weights = weights

    def initial_state(self, colour: int) -> AgentState:
        """Agents start at full shade ``w_i`` (fully committed)."""
        if not 0 <= colour < self.weights.k:
            raise ValueError(
                f"colour {colour} outside weight table of size {self.weights.k}"
            )
        return AgentState(colour, self.max_shade(colour))

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v = sampled[0]
        if u.shade > 0 and v.shade > 0 and u.colour == v.colour:
            return AgentState(u.colour, u.shade - 1)
        if u.shade == 0 and v.shade > 0:
            return AgentState(v.colour, self.max_shade(v.colour))
        return u

    def max_shade(self, colour: int) -> int:
        return int(self.weights.weight(colour))
