"""Core contribution of the paper: the Diversification protocol family
and the formal properties it satisfies (Def 1.1)."""

from .ablations import EagerRecolouring, UnweightedLightening
from .derandomised import DerandomisedDiversification
from .diversification import Diversification
from .properties import (
    GoodnessReport,
    assess_goodness,
    diversity_bound,
    diversity_error,
    equilibrium_dark_counts,
    equilibrium_light_counts,
    fair_share_deviation,
    fairness_deviation,
    fairness_error,
    is_diverse,
    is_fair,
    is_sustainable,
    sustainability_invariant,
)
from .protocol import Protocol
from .state import DARK, LIGHT, AgentState, dark, light
from .weights import WeightTable, weights_from_demands

__all__ = [
    "AgentState",
    "DARK",
    "LIGHT",
    "dark",
    "light",
    "Protocol",
    "Diversification",
    "DerandomisedDiversification",
    "UnweightedLightening",
    "EagerRecolouring",
    "WeightTable",
    "weights_from_demands",
    "GoodnessReport",
    "assess_goodness",
    "diversity_bound",
    "diversity_error",
    "fair_share_deviation",
    "fairness_deviation",
    "fairness_error",
    "equilibrium_dark_counts",
    "equilibrium_light_counts",
    "is_diverse",
    "is_fair",
    "is_sustainable",
    "sustainability_invariant",
]
