"""Formal property definitions from Def 1.1: diversity, fairness,
sustainability — and the "good protocol" combination.

All checkers operate on plain numpy arrays so they can be used against
either engine and against recorded time series:

* ``colour_counts``: shape ``(k,)`` — agents per colour at one instant,
  or shape ``(T, k)`` for a window of ``T`` snapshots.
* ``occupancy``: shape ``(n, k)`` — fraction of time each agent spent in
  each colour over a horizon (rows sum to 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .weights import WeightTable


def fair_share_deviation(
    colour_counts: np.ndarray, weights: WeightTable
) -> np.ndarray:
    """Per-colour deviation ``|C_i(t)/n - w_i/w|`` (Eq. (1)).

    Accepts a single snapshot ``(k,)`` or a window ``(T, k)``; the result
    has the same leading shape.
    """
    counts = np.asarray(colour_counts, dtype=np.float64)
    n = counts.sum(axis=-1, keepdims=True)
    if np.any(n <= 0):
        raise ValueError("configuration must contain at least one agent")
    return np.abs(counts / n - weights.fair_shares())


def diversity_error(colour_counts: np.ndarray, weights: WeightTable) -> float:
    """Worst-case deviation from the fair shares, over colours (and time)."""
    return float(fair_share_deviation(colour_counts, weights).max())


def diversity_bound(n: int, constant: float = 1.0) -> float:
    """The ``Õ(1/√n)`` diversity target of Def 1.1(1).

    We use ``constant * sqrt(log(n) / n)``, the explicit form delivered
    by Thm 2.13 (error ``O(n^{3/4} log^{1/4} n)`` on counts translates to
    ``O((log n / n)^{1/4} / n^{... }) <= O(sqrt(log n / n))`` on
    fractions for the regimes we simulate).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    return constant * float(np.sqrt(np.log(n) / n))


def is_diverse(
    window_counts: np.ndarray,
    weights: WeightTable,
    constant: float = 1.0,
) -> bool:
    """Def 1.1(1) over a recorded window: every snapshot within the bound."""
    window = np.atleast_2d(np.asarray(window_counts, dtype=np.float64))
    n = int(round(window[0].sum()))
    bound = diversity_bound(n, constant)
    return bool(fair_share_deviation(window, weights).max() <= bound)


def fairness_deviation(occupancy: np.ndarray, weights: WeightTable) -> np.ndarray:
    """Per-agent, per-colour deviation of time-occupancy from ``w_i/w``.

    ``occupancy[u, i]`` is the fraction of the horizon agent ``u`` spent
    with colour ``i`` (Def 1.1(2)).
    """
    occ = np.asarray(occupancy, dtype=np.float64)
    if occ.ndim != 2:
        raise ValueError("occupancy must be an (n, k) matrix")
    row_sums = occ.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        raise ValueError("occupancy rows must each sum to 1")
    return np.abs(occ - weights.fair_shares()[None, :])


def fairness_error(occupancy: np.ndarray, weights: WeightTable) -> float:
    """Worst-case occupancy deviation over all agents and colours."""
    return float(fairness_deviation(occupancy, weights).max())


def is_fair(
    occupancy: np.ndarray, weights: WeightTable, tolerance: float
) -> bool:
    """Def 1.1(2): every agent's occupancy within ``tolerance`` of fair."""
    return fairness_error(occupancy, weights) <= tolerance


def is_sustainable(window_counts: np.ndarray) -> bool:
    """Def 1.1(3) over a window: no colour count ever hits zero."""
    window = np.atleast_2d(np.asarray(window_counts))
    return bool((window >= 1).all())


def sustainability_invariant(dark_counts: np.ndarray) -> bool:
    """The invariant the paper's proof rests on: each colour keeps at
    least one *dark* representative (a lone dark agent never changes).
    """
    window = np.atleast_2d(np.asarray(dark_counts))
    return bool((window >= 1).all())


def equilibrium_dark_counts(n: int, weights: WeightTable) -> np.ndarray:
    """Perfect-equilibrium dark counts ``A_i = w_i n / (1 + w)`` (Eq. (7))."""
    return n * weights.dark_shares()


def equilibrium_light_counts(n: int, weights: WeightTable) -> np.ndarray:
    """Perfect-equilibrium light counts ``a_i = (w_i/w) n/(1+w)`` (Eq. (7))."""
    return n * weights.light_shares()


@dataclass(frozen=True)
class GoodnessReport:
    """Summary of the three Def 1.1 properties over one recorded run."""

    diversity_error: float
    diversity_bound: float
    diverse: bool
    fairness_error: float | None
    fair: bool | None
    sustainable: bool

    @property
    def good(self) -> bool:
        """The paper calls a protocol *good* when all three hold."""
        fair = True if self.fair is None else self.fair
        return self.diverse and fair and self.sustainable


def assess_goodness(
    window_counts: np.ndarray,
    weights: WeightTable,
    occupancy: np.ndarray | None = None,
    diversity_constant: float = 1.0,
    fairness_tolerance: float = 0.05,
) -> GoodnessReport:
    """Evaluate diversity, fairness and sustainability on recorded data.

    Args:
        window_counts: ``(T, k)`` colour counts in the stabilised window.
        weights: Colour weights.
        occupancy: Optional ``(n, k)`` per-agent occupancy fractions; when
            omitted the fairness verdict is left undetermined (``None``).
        diversity_constant: Slack constant for the ``sqrt(log n / n)``
            diversity bound.
        fairness_tolerance: Absolute occupancy tolerance for fairness.
    """
    window = np.atleast_2d(np.asarray(window_counts, dtype=np.float64))
    n = int(round(window[0].sum()))
    error = diversity_error(window, weights)
    bound = diversity_bound(n, diversity_constant)
    fair_error: float | None = None
    fair: bool | None = None
    if occupancy is not None:
        fair_error = fairness_error(occupancy, weights)
        fair = fair_error <= fairness_tolerance
    return GoodnessReport(
        diversity_error=error,
        diversity_bound=bound,
        diverse=error <= bound,
        fairness_error=fair_error,
        fair=fair,
        sustainable=is_sustainable(window),
    )
