"""Ablated variants of the Diversification protocol.

The paper's intuition (Sec 1.2) attributes the protocol's behaviour to
two rules: (1) only light agents change colour, and (2) dark agents
lighten with probability inversely proportional to their weight.  These
ablations remove one rule each so benchmarks can quantify its
contribution (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .protocol import Protocol
from .state import DARK, AgentState
from .weights import WeightTable


class UnweightedLightening(Protocol):
    """Ablation A2: lighten with probability 1 instead of ``1 / w_i``.

    Removing the weight-scaled coin makes every colour equally quick to
    abandon, so the dark populations equalise per *colour* instead of per
    *weight*: the prediction is that colour shares collapse towards the
    uniform partition ``1/k`` regardless of the weight vector.
    """

    name = "ablation-unweighted-lightening"
    arity = 1

    def __init__(self, weights: WeightTable):
        self.weights = weights

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v = sampled[0]
        if u.is_light and v.is_dark:
            return AgentState(v.colour, DARK)
        if u.is_dark and v.is_dark and u.colour == v.colour:
            return AgentState(u.colour, 0)
        return u


class EagerRecolouring(Protocol):
    """Ablation A1: remove the light buffer state.

    When two same-coloured agents meet, the scheduled one immediately
    adopts the colour of a *second* sampled agent (with probability
    ``1 / w_i``) instead of first becoming light and waiting to observe a
    dark agent.  This removes the reservoir of light agents that the real
    protocol uses to meter colour flow; the prediction is noisier shares
    (larger diversity error) and loss of the dark/light equilibrium
    structure of Eq. (7).
    """

    name = "ablation-eager-recolouring"
    arity = 2

    def __init__(self, weights: WeightTable):
        self.weights = weights

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v, x = sampled[0], sampled[1]
        if u.colour == v.colour:
            if rng.random() < self.weights.lighten_probability(u.colour):
                return AgentState(x.colour, DARK)
        return u
