"""Array-API backend seam for the vectorised engine and analysis layers.

Every module under :mod:`repro.engine` (and
:mod:`repro.analysis.streaming`) obtains its array namespace, dtypes and
host/device boundary converters from here instead of importing ``numpy``
directly.  This file is the *only* sanctioned ``import numpy`` site of
those layers — a rule enforced by ``tests/unit/test_backend_seam.py`` —
so lifting the ``(R, n)`` / ``(B, k_max)`` layouts onto another array
backend is a matter of resolving a different :class:`Backend`, not of
editing kernels.

Three backends are known:

``numpy``
    The always-on default.  ``Backend.xp`` *is* the ``numpy`` module,
    every converter is (at most) a view, and all code paths are
    bit-identical to a direct-numpy implementation.

``array-api-strict``
    A pure-Python reference implementation of the array-API standard
    (aliases: ``strict``, ``array_api_strict``).  It exists to prove
    portability, not speed: the transition-kernel layer runs on it
    unmodified, while the engine step/event loops — which lean on
    NumPy-compatible conveniences the strict namespace deliberately
    omits (fancy-index scatter, ufunc ``.accumulate``, ``out=``) — are
    gated and raise a clear error (``supports_engine_loops`` is False).

``cupy``
    GPU execution via the NumPy-compatible CuPy namespace.  Resolved
    lazily; requesting it without CuPy installed raises with an
    actionable message.  Host-drawn RNG blocks are transferred to the
    device by :meth:`Backend.from_host` (the portable fallback the
    array-API standard leaves unspecified).

Selection order: an explicit ``backend=`` argument on an engine wins,
then the ``REPRO_BACKEND`` environment variable, then ``numpy``.

Randomness deliberately stays on the host: :mod:`repro.engine.rng`
seed streams and ``spawn_sequences`` remain the single source of
seeding truth, so a trajectory is reproducible from one integer seed on
*every* backend.  Device backends receive CPU-drawn blocks via
:meth:`Backend.uniform_block` / :meth:`Backend.integer_block`.

Checkpoints (``repro-ckpt/v1``) always serialise as NumPy: snapshot
paths must cross :meth:`Backend.to_numpy` so a checkpoint taken on one
backend restores on any other.
"""

from __future__ import annotations

import os

import numpy as np

# ---------------------------------------------------------------------------
# Host-side primitives re-exported for the engine layers.
#
# Modules that are host-resident by design (seeding, per-row PCG64
# streams, checkpoint serialisation, scalar engines) import these
# instead of naming numpy themselves.  ``HOST.xp`` is the numpy module.
# ---------------------------------------------------------------------------

Generator = np.random.Generator
SeedSequence = np.random.SeedSequence
PCG64 = np.random.PCG64
default_rng = np.random.default_rng

#: Host dtype constants for host-only modules (checkpoint payloads,
#: PCG64 state words, scalar-engine tap buffers).  Device-aware code
#: should prefer ``backend.dtypes`` so the dtype objects match ``xp``.
INT64 = np.int64
FLOAT64 = np.float64
UINT64 = np.uint64
BOOL = np.bool_

#: Environment variable consulted when no explicit backend is passed.
ENV_VAR = "REPRO_BACKEND"


class DtypeTable:
    """The central dtype table of one backend.

    Replaces the raw ``np.int64`` / ``np.float64`` literals that used
    to be scattered through the engines: each backend exposes *its own*
    dtype objects (the strict namespace rejects foreign dtypes), and
    the trajectory contract pins exact widths so results cannot drift
    on platforms whose default integer differs.
    """

    __slots__ = ("int64", "float64", "uint64", "bool_")

    def __init__(self, int64, float64, uint64, bool_):
        self.int64 = int64
        self.float64 = float64
        self.uint64 = uint64
        self.bool_ = bool_

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DtypeTable(int64={self.int64!r}, float64={self.float64!r}, "
            f"uint64={self.uint64!r}, bool_={self.bool_!r})"
        )


class Backend:
    """An array namespace plus the pieces the array-API doesn't cover.

    Attributes
    ----------
    name:
        Canonical backend name (``"numpy"``, ``"array-api-strict"``,
        ``"cupy"``).
    xp:
        The array namespace handle all vectorised code computes with.
    dtypes:
        This backend's :class:`DtypeTable`.
    supports_engine_loops:
        True when ``xp`` is NumPy-compatible enough to run the engine
        step/event loops (fancy-index gather/scatter, ``cumsum(axis=)``,
        ``maximum.accumulate``, ``bincount``).  The strict backend only
        covers the kernel layer and sets this False.
    """

    __slots__ = (
        "name", "xp", "dtypes", "supports_engine_loops",
        "_to_numpy", "_from_host",
    )

    def __init__(
        self,
        name: str,
        xp,
        dtypes: DtypeTable,
        *,
        supports_engine_loops: bool = True,
        to_numpy=None,
        from_host=None,
    ):
        self.name = name
        self.xp = xp
        self.dtypes = dtypes
        self.supports_engine_loops = supports_engine_loops
        self._to_numpy = to_numpy
        self._from_host = from_host

    # -- identity ----------------------------------------------------------

    @property
    def is_host(self) -> bool:
        """True when ``xp`` is the numpy module itself."""
        return self.xp is np

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Backend({self.name!r})"

    # -- boundary converters ----------------------------------------------

    def asarray(self, value, dtype=None):
        """Coerce ``value`` into this backend's namespace."""
        if dtype is None:
            return self.xp.asarray(value)
        return self.xp.asarray(value, dtype=dtype)

    def to_numpy(self, array, *, copy: bool = False):
        """Materialise ``array`` on the host as a NumPy array.

        Every checkpoint/serialisation path crosses this converter so
        ``repro-ckpt/v1`` payloads stay portable across backends.  Pass
        ``copy=True`` when the caller stores the result (snapshot
        semantics require independence from live engine state).
        """
        if self._to_numpy is not None:
            host = self._to_numpy(array)
        else:
            try:
                host = np.asarray(array)
            except TypeError:
                host = np.from_dlpack(array)
        if copy:
            return np.array(host)
        return host

    def from_host(self, array):
        """Move a host (NumPy) array onto this backend.

        The portable fallback for everything drawn on the host —
        RNG blocks, checkpoint payloads, user-supplied initial state.
        A no-op view for the numpy backend.
        """
        if self._from_host is not None:
            return self._from_host(array)
        return self.xp.asarray(array)

    # -- host-drawn randomness --------------------------------------------

    def uniform_block(self, rng: Generator, shape):
        """A ``U[0, 1)`` float64 block drawn on the host, device-placed.

        Drawing on the host keeps :mod:`repro.engine.rng` the single
        source of seeding truth: the same seed yields the same
        trajectory on every backend, at the cost of one transfer per
        block on device backends.
        """
        return self.from_host(rng.random(shape))

    def integer_block(self, rng: Generator, low, high, shape, *, endpoint=False):
        """A host-drawn int64 block in ``[low, high)``, device-placed."""
        return self.from_host(
            rng.integers(low, high, size=shape, dtype=INT64, endpoint=endpoint)
        )


# ---------------------------------------------------------------------------
# Backend construction and resolution
# ---------------------------------------------------------------------------

#: The always-on NumPy backend.  ``HOST.xp is numpy``; every converter
#: is the identity (module-level singleton so ``backend is HOST`` works
#: as a fast-path test).
HOST = Backend(
    "numpy",
    np,
    DtypeTable(np.int64, np.float64, np.uint64, np.bool_),
)


def _make_strict() -> Backend:
    import array_api_strict as xs

    def to_numpy(array):
        try:
            return np.asarray(array)
        except TypeError:  # pragma: no cover - depends on strict version
            return np.from_dlpack(array)

    return Backend(
        "array-api-strict",
        xs,
        DtypeTable(xs.int64, xs.float64, xs.uint64, getattr(xs, "bool")),
        supports_engine_loops=False,
        to_numpy=to_numpy,
        from_host=xs.asarray,
    )


def _make_cupy() -> Backend:
    import cupy

    return Backend(
        "cupy",
        cupy,
        DtypeTable(cupy.int64, cupy.float64, cupy.uint64, cupy.bool_),
        to_numpy=cupy.asnumpy,
        from_host=cupy.asarray,
    )


_FACTORIES = {
    "numpy": lambda: HOST,
    "array-api-strict": _make_strict,
    "cupy": _make_cupy,
}

_ALIASES = {
    "np": "numpy",
    "host": "numpy",
    "strict": "array-api-strict",
    "array_api_strict": "array-api-strict",
}

_CACHE: dict[str, Backend] = {"numpy": HOST}


def _canonical(name: str) -> str:
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def resolve_backend(spec: str | Backend | None = None) -> Backend:
    """Resolve ``spec`` into a :class:`Backend`.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and
    falls back to ``numpy``; a string is looked up by (aliased) name; a
    :class:`Backend` instance passes through.  Unknown names raise
    :exc:`ValueError`; a known backend whose package is not installed
    raises :exc:`RuntimeError` naming the missing import.
    """
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR, "").strip() or "numpy"
    name = _canonical(spec)
    if name in _CACHE:
        return _CACHE[name]
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {spec!r}; known backends: "
            f"{', '.join(sorted(_FACTORIES))}"
        )
    try:
        backend = factory()
    except ImportError as error:
        raise RuntimeError(
            f"backend {name!r} was requested (via {ENV_VAR} or backend=) "
            f"but its package is not importable: {error}"
        ) from error
    _CACHE[name] = backend
    return backend


def available_backends() -> dict[str, bool]:
    """Map every known backend name to whether it resolves right now."""
    out = {}
    for name in sorted(_FACTORIES):
        try:
            resolve_backend(name)
        except (RuntimeError, ValueError):
            out[name] = False
        else:
            out[name] = True
    return out


def require_engine_loops(backend: Backend, engine: str) -> Backend:
    """Gate an engine constructor on a NumPy-compatible namespace.

    The strict backend exists to validate the kernel layer; the engine
    step/event loops need conveniences the standard omits.  Raising
    here — with the supported alternatives spelled out — beats a
    cryptic ``TypeError`` three layers down an event loop.
    """
    if not backend.supports_engine_loops:
        supported = sorted(
            name for name, factory in _FACTORIES.items()
            if name != backend.name
        )
        raise ValueError(
            f"backend {backend.name!r} covers the transition-kernel layer "
            f"only; {engine} needs a NumPy-compatible backend "
            f"(one of: {', '.join(supported)})"
        )
    return backend
