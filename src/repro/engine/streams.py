"""Per-row uniform draw streams for the batched engines.

The batched event loops (:func:`repro.engine.batched.advance_event_driven`)
advance many rows through one Python-level loop, but rows retire at
*different* iterations — when they are absorbed, overshoot their
horizon, or simply have an earlier target.  With a single shared
generator the shape of every vectorised draw depends on which rows are
still active, so the value a row consumes depends on everyone else's
horizon: splitting ``run(a); run(b)`` would perturb the stream and the
trajectories.

:class:`RowStreams` removes that coupling: every row owns an
independent PCG64 substream (seeded from the engine's base generator at
construction), and draws are served from a ``(B, block)`` pool of
pre-generated uniforms with per-row cursors.  A row's consumed sequence
is then a function of *its own* event history only, which is what makes
the engines' split-invariance contract (``run(a); run(b)`` bit-identical
to ``run(a + b)``, any per-row split) possible while the hot path stays
vectorised — refills amortise to one ``Generator.random`` call per row
per ``block`` draws.

The pool, cursors and per-row bit-generator states round-trip through
:meth:`RowStreams.snapshot`/:meth:`RowStreams.restore` as plain arrays
(no pickling), so engine checkpoints capture buffered-but-unconsumed
uniforms exactly.

Streams are host-resident on every backend: the per-row PCG64 states
*are* the split-invariance contract, so draws happen on the CPU and
device backends receive the blocks via ``Backend.from_host`` at the
call site (see :mod:`repro.engine.backend`).
"""

from __future__ import annotations

from .backend import FLOAT64, HOST, INT64, UINT64, Generator, PCG64, SeedSequence

np = HOST.xp  # host namespace: streams never live on a device

#: Uniforms pooled per row between refills.
_POOL_BLOCK = 256

_U64 = UINT64
_MASK64 = (1 << 64) - 1


def geometric_from_uniform(uniforms, p, xp=None):
    """Inverse-transform ``Geometric(p)`` on ``{1, 2, ...}``.

    ``G = 1 + floor(log1p(-U) / log1p(-p))`` maps ``U ~ Uniform[0, 1)``
    to ``P(G = g) = (1 - p)^(g-1) p`` exactly; ``p >= 1`` short-circuits
    to 1.  Huge jumps (vanishing ``p`` with ``U`` within an ulp of 1)
    are clamped to ``2**62`` steps — far past any representable horizon
    — so the float-to-int cast never overflows.

    ``xp`` selects the (NumPy-compatible) namespace the arithmetic runs
    in; the default is the host.
    """
    if xp is None:
        xp = np
    p = xp.asarray(p, dtype=FLOAT64)
    uniforms = xp.asarray(uniforms, dtype=FLOAT64)
    out = xp.ones(p.shape, dtype=INT64)
    rest = p < 1.0
    gaps = 1.0 + xp.floor(
        xp.log1p(-uniforms[rest]) / xp.log1p(-p[rest])
    )
    out[rest] = xp.minimum(gaps, float(2**62)).astype(INT64)
    return out


class RowStreams:
    """B independent per-row uniform streams with pooled draws."""

    def __init__(self, generators, *, block: int = _POOL_BLOCK):
        self._gens: list[Generator] = list(generators)
        if not self._gens:
            raise ValueError("need at least one row stream")
        if block < 4:
            raise ValueError("block must hold at least one event's draws")
        self._block = int(block)
        self._pool = np.zeros((len(self._gens), self._block), dtype=FLOAT64)
        # Cursors start exhausted; the first take() refills on demand.
        self._pos = np.full(len(self._gens), self._block, dtype=INT64)

    @classmethod
    def from_generator(
        cls,
        rng: Generator,
        rows: int,
        *,
        block: int = _POOL_BLOCK,
    ) -> "RowStreams":
        """Derive ``rows`` child streams from a base generator.

        The children are seeded from words *drawn* off ``rng`` (rather
        than ``SeedSequence.spawn``), so the derivation depends only on
        the generator's current state and therefore survives an RNG
        state checkpoint/restore of the base generator.
        """
        if rows < 1:
            raise ValueError("need at least one row")
        words = rng.integers(
            0, np.iinfo(_U64).max, size=(rows, 4), dtype=_U64,
            endpoint=True,
        )
        gens = [
            Generator(
                PCG64(
                    SeedSequence([int(w) for w in row])
                )
            )
            for row in words
        ]
        return cls(gens, block=block)

    @property
    def rows(self) -> int:
        """Number of independent row streams."""
        return len(self._gens)

    def take(self, rows, m: int):
        """The next ``m`` uniforms of each selected row, ``(len(rows), m)``.

        Rows whose pool cannot serve ``m`` more draws refill first (the
        partial tail is discarded — deterministically, since the refill
        point is a pure function of the row's own take sequence).

        Both the index argument and the returned block are host arrays;
        device engines convert at the call site.
        """
        rows = np.asarray(rows, dtype=INT64)
        exhausted = self._pos[rows] + m > self._block
        if exhausted.any():
            for row in rows[exhausted]:
                row = int(row)
                self._pool[row] = self._gens[row].random(self._block)
                self._pos[row] = 0
        base = self._pos[rows]
        out = self._pool[rows[:, None], base[:, None] + np.arange(m)]
        self._pos[rows] = base + m
        return out

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """Pool, cursors and per-row PCG64 states as plain arrays."""
        rows = self.rows
        state = np.zeros((rows, 2), dtype=_U64)
        inc = np.zeros((rows, 2), dtype=_U64)
        has_uint32 = np.zeros(rows, dtype=INT64)
        uinteger = np.zeros(rows, dtype=_U64)
        for row, gen in enumerate(self._gens):
            raw = gen.bit_generator.state
            state[row, 0] = (raw["state"]["state"] >> 64) & _MASK64
            state[row, 1] = raw["state"]["state"] & _MASK64
            inc[row, 0] = (raw["state"]["inc"] >> 64) & _MASK64
            inc[row, 1] = raw["state"]["inc"] & _MASK64
            has_uint32[row] = int(raw["has_uint32"])
            uinteger[row] = int(raw["uinteger"])
        return {
            "block": self._block,
            "pool": self._pool.copy(),
            "pos": self._pos.copy(),
            "state": state,
            "inc": inc,
            "has_uint32": has_uint32,
            "uinteger": uinteger,
        }

    def restore(self, data: dict) -> None:
        """Restore pool, cursors and per-row states in place."""
        if int(data["block"]) != self._block:
            raise ValueError(
                f"stream pool block {data['block']} does not match the "
                f"engine's block {self._block}"
            )
        pool = np.asarray(data["pool"], dtype=FLOAT64)
        pos = np.asarray(data["pos"], dtype=INT64)
        state = np.asarray(data["state"], dtype=_U64)
        inc = np.asarray(data["inc"], dtype=_U64)
        has_uint32 = np.asarray(data["has_uint32"], dtype=INT64)
        uinteger = np.asarray(data["uinteger"], dtype=_U64)
        if pool.shape != (self.rows, self._block):
            raise ValueError(
                f"stream pool shape {pool.shape} does not match "
                f"({self.rows}, {self._block})"
            )
        self._pool[...] = pool
        self._pos[...] = pos
        for row, gen in enumerate(self._gens):
            gen.bit_generator.state = {
                "bit_generator": "PCG64",
                "state": {
                    "state": (int(state[row, 0]) << 64)
                    | int(state[row, 1]),
                    "inc": (int(inc[row, 0]) << 64) | int(inc[row, 1]),
                },
                "has_uint32": int(has_uint32[row]),
                "uinteger": int(uinteger[row]),
            }

    @classmethod
    def from_snapshot(cls, data: dict) -> "RowStreams":
        """Rebuild a standalone stream set from :meth:`snapshot` data."""
        rows = np.asarray(data["pos"]).shape[0]
        gens = [
            Generator(PCG64(0)) for _ in range(rows)
        ]
        streams = cls(gens, block=int(data["block"]))
        streams.restore(data)
        return streams
