"""Agent schedulers.

The paper assumes the *uniformly random* scheduler: at each time-step
one agent is activated u.a.r.  We additionally provide a round-robin
scheduler (useful for deterministic unit tests and for contrasting with
the adversarial-scheduler literature of Yasumi et al., Sec 1.1).

Schedulers produce activation indices in blocks so the simulator can
amortise random-number generation.
"""

from __future__ import annotations

import abc

from .backend import HOST, Generator

np = HOST.xp  # host namespace: activation blocks are drawn on the CPU


class Scheduler(abc.ABC):
    """Produces the index of the agent activated at each time-step."""

    name: str = "scheduler"

    @abc.abstractmethod
    def draw_block(
        self, n: int, size: int, rng: Generator
    ):
        """Return ``size`` activation indices for a population of ``n``."""

    def reset(self) -> None:
        """Return to the initial scheduling state.

        Engines call this once per simulation (at construction), so a
        scheduler instance shared across replications starts every
        simulation from the same point instead of silently continuing
        mid-cycle.  Stateless schedulers need not override it.
        """

    def state_dict(self) -> dict:
        """JSON-able scheduling progress for engine checkpoints.

        Stateless schedulers (the uniform default) have nothing to
        save; stateful ones must capture everything ``draw_block``
        depends on besides its arguments.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        if state:
            raise ValueError(
                f"scheduler {self.name!r} is stateless but the "
                f"checkpoint carries state {state!r}"
            )


class UniformScheduler(Scheduler):
    """The paper's model: each step activates an agent u.a.r."""

    name = "uniform"

    def draw_block(
        self, n: int, size: int, rng: Generator
    ):
        return rng.integers(0, n, size=size)


class RoundRobinScheduler(Scheduler):
    """Deterministic cyclic activation 0, 1, ..., n-1, 0, 1, ...

    Not the paper's model; provided for deterministic testing and for
    exploring scheduler sensitivity (the equi-partition line of work
    referenced in Sec 1.1 studies adversarial deterministic schedules).
    """

    name = "round-robin"

    def __init__(self, start: int = 0):
        self._start = int(start)
        self._next = int(start)

    def reset(self) -> None:
        self._next = self._start

    def state_dict(self) -> dict:
        return {"start": self._start, "next": self._next}

    def load_state(self, state: dict) -> None:
        self._start = int(state["start"])
        self._next = int(state["next"])

    def draw_block(
        self, n: int, size: int, rng: Generator
    ):
        block = (self._next + np.arange(size)) % n
        self._next = int((self._next + size) % n)
        return block
