"""Batched aggregate simulator: R independent replications at once.

Every experiment in the E1-E12 suite repeats the same chain tens of
times; running those replications one-by-one through the scalar
:class:`~repro.engine.aggregate.AggregateSimulation` pays the Python
interpreter overhead R times over.  This engine instead advances **R
independent replications simultaneously** as a single ``(R, 2k)`` count
matrix (dark counts ``A`` in the left block, light counts ``a`` in the
right block), drawing adopt/lighten events for all replications per
vectorised step.

Both of the scalar engine's modes are supported and are exact in
distribution (verified statistically by
``tests/integration/test_batched_equivalence.py``):

* **per-step** (:meth:`BatchedAggregateSimulation.step`) — one faithful
  time-step for every replication: the scheduled agent's class and its
  sampled partner's class are drawn by vectorised categorical sampling
  over the ``2k`` (light, dark) classes, with the scheduled agent
  excluded from the partner draw, and the adopt/lighten rules applied
  through boolean masks.
* **event-driven** (:meth:`BatchedAggregateSimulation.run`) — each
  replication draws its *own* geometric number of no-op steps until its
  next active event (per-replication jump lengths) and jumps its clock
  forward; replications that land beyond the horizon, or whose active
  rate has vanished, coast to the horizon and are masked out of the
  update.  One loop iteration therefore costs O(R k) NumPy work but
  advances every live replication by a full event, so the Python-level
  iteration count matches a *single* scalar run instead of R of them.

Replication clocks decouple mid-``run`` (each jumps at its own pace) and
re-synchronise at the horizon, so :meth:`run` always leaves all
replications at the same time-step.

Split invariance.  Every replication owns an independent PCG64
substream (:class:`~repro.engine.streams.RowStreams`), and an arrival
drawn past the horizon is carried in a per-row ``_pending`` slot
instead of being discarded, so ``run(a); run(b)`` is bit-identical to
``run(a + b)`` for any split — the foundation of the
``snapshot()``/``restore()`` checkpoint contract.  Interventions change
the event rates and therefore drop all pending arrivals.

The ``lighten_probabilities`` override mirrors the scalar engine and
gives the A2 ablation (:class:`~repro.core.ablations.UnweightedLightening`)
the same fast path.  Adversarial interventions are supported batch-wide
between ``run`` calls: :meth:`~BatchedAggregateSimulation.add_agents`,
:meth:`~BatchedAggregateSimulation.add_colour` (which widens the
``(R, 2k)`` count matrix and the shared weight table) and
:meth:`~BatchedAggregateSimulation.recolour` apply the *same*
deterministic intervention to every replication — exactly what the
scalar per-replication loop does with a shared
:class:`~repro.adversary.schedule.InterventionSchedule` — so E6/E7-style
robustness sweeps fuse all R replications into one engine (see
:func:`repro.experiments.replication.replicate_colour_counts`).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.weights import WeightTable
from . import checkpoint as ckpt
from .aggregate import resolve_lighten_probabilities
from .backend import (
    FLOAT64,
    HOST,
    INT64,
    Backend,
    Generator,
    require_engine_loops,
    resolve_backend,
)
from .rng import make_rng
from .streams import RowStreams, geometric_from_uniform


class BatchedAggregateSimulation:
    """Count-based simulator of R replications of Diversification.

    Args:
        weights: Colour weight table shared by all replications.
        dark_counts: Initial ``A_i`` per colour — either shape ``(k,)``
            (broadcast to every replication) or ``(R, k)``.
        light_counts: Initial ``a_i`` per colour, same accepted shapes
            (defaults to all zero — the paper's all-dark start).
        replications: Number of independent replications R.  Required
            when the count vectors are one-dimensional; otherwise it
            must match their leading dimension.
        rng: Seed or generator.  Each replication draws from its own
            PCG64 substream seeded off this base generator
            (:class:`~repro.engine.streams.RowStreams`), which is what
            makes runs split-invariant and checkpointable.
        lighten_probabilities: Optional per-colour override of the
            ``1/w_i`` lightening coin.
    """

    def __init__(
        self,
        weights: WeightTable,
        dark_counts,
        light_counts=None,
        *,
        replications: int | None = None,
        rng: int | Generator | None = None,
        lighten_probabilities: Sequence[float] | None = None,
        backend: str | Backend | None = None,
    ):
        self._backend = require_engine_loops(
            resolve_backend(backend), "BatchedAggregateSimulation"
        )
        xp = self._backend.xp
        self.weights = weights
        k = weights.k
        dark = xp.asarray(dark_counts, dtype=INT64)
        if light_counts is None:
            light = xp.zeros(dark.shape, dtype=INT64)
        else:
            light = xp.asarray(light_counts, dtype=INT64)
        dark = self._as_matrix(dark, replications, k, "dark_counts", xp)
        replications = dark.shape[0]
        light = self._as_matrix(light, replications, k, "light_counts", xp)
        if light.shape[0] != replications:
            raise ValueError(
                "dark_counts and light_counts disagree on the number of "
                f"replications ({replications} vs {light.shape[0]})"
            )
        if (dark < 0).any() or (light < 0).any():
            raise ValueError("counts must be non-negative")
        totals = dark.sum(axis=1) + light.sum(axis=1)
        if not (totals == totals[0]).all():
            raise ValueError(
                "all replications must share the same population size"
            )
        self._n = int(totals[0])
        if self._n < 2:
            raise ValueError("need at least two agents")
        # One contiguous (R, 2k) state matrix; dark and light are views.
        # repro-lint: disable=RL301 -- serialised via its _dark/_light views; restore() rebuilds it
        self._state = xp.concatenate([dark, light], axis=1)
        self._dark = self._state[:, :k]
        self._light = self._state[:, k:]
        self._lighten = xp.asarray(
            resolve_lighten_probabilities(weights, lighten_probabilities),
            dtype=FLOAT64,
        )
        self.rng = make_rng(rng)
        self._times = xp.zeros(replications, dtype=INT64)
        # Every replication draws from its own substream (seeded off the
        # base generator), so a row's consumed uniforms depend only on
        # its own event history — the basis of the split-invariance
        # contract (``run(a); run(b)`` bit-identical to ``run(a + b)``).
        self._streams = RowStreams.from_generator(self.rng, replications)
        # Next active-event arrival per row, carried across run calls
        # when it overshoots the horizon (-1 = none drawn yet).
        self._pending = xp.full(replications, -1, dtype=INT64)
        # repro-lint: disable=RL3 -- observer callbacks, re-registered by the owner after restore()
        self._taps: list = []

    @staticmethod
    def _as_matrix(counts, replications: int | None, k: int, name: str, xp):
        if counts.ndim == 1:
            if counts.shape[0] != k:
                raise ValueError(
                    f"{name} must match the weight table size (k={k})"
                )
            if replications is None:
                raise ValueError(
                    f"replications is required when {name} is 1-D"
                )
            if replications < 1:
                raise ValueError("need at least one replication")
            return xp.tile(counts, (replications, 1))
        if counts.ndim != 2 or counts.shape[1] != k:
            raise ValueError(
                f"{name} must have shape (k,) or (R, k) with k={k}"
            )
        if replications is not None and counts.shape[0] != replications:
            raise ValueError(
                f"{name} has {counts.shape[0]} rows but "
                f"replications={replications}"
            )
        return counts.copy()

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n(self) -> int:
        """Number of agents (identical across replications)."""
        return self._n

    @property
    def k(self) -> int:
        """Number of colours."""
        return self.weights.k

    @property
    def replications(self) -> int:
        """Number of replications R."""
        return self._state.shape[0]

    @property
    def backend(self) -> Backend:
        """The array backend this engine computes on."""
        return self._backend

    @property
    def time(self) -> int:
        """Common time-step of all replications.

        Clocks decouple inside :meth:`run` but re-synchronise at every
        horizon; between calls they always agree.
        """
        return int(self._times.max(initial=0))

    def times(self):
        """Per-replication clocks, shape ``(R,)``."""
        return self._times.copy()

    def dark_counts(self):
        """``A_i`` per replication and colour, shape ``(R, k)``."""
        return self._dark.copy()

    def light_counts(self):
        """``a_i`` per replication and colour, shape ``(R, k)``."""
        return self._light.copy()

    def colour_counts(self):
        """``C_i = A_i + a_i`` per replication and colour, ``(R, k)``."""
        return self._dark + self._light

    # ------------------------------------------------------------------
    # Per-step mode (used by the equivalence tests)

    def step(self):
        """One faithful time-step in every replication.

        Each row consumes three uniforms from its own substream, so
        per-step trajectories are bit-identical for any chunking of
        ``run_per_step``/``step`` calls and for any interleaving with
        event-driven ``run`` segments (regression-tested in
        ``tests/property/test_batched_invariants.py``).

        Returns a boolean ``(R,)`` mask of the replications whose counts
        changed.
        """
        self._pending[:] = -1  # per-step mode re-examines every step
        self._times += 1
        bk = self._backend
        rows = bk.xp.arange(self._state.shape[0])
        uniforms = bk.from_host(
            self._streams.take(bk.to_numpy(rows), 3)
        ).T
        return apply_step_rows(
            self._state,
            self._dark,
            self._light,
            self._lighten,
            rows,
            uniforms,
            xp=bk.xp,
        )

    def run_per_step(self, steps: int) -> "BatchedAggregateSimulation":
        """Advance ``steps`` time-steps in faithful per-step mode."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for _ in range(steps):
            self.step()
        return self

    # ------------------------------------------------------------------
    # Event-driven mode

    def run(self, steps: int) -> "BatchedAggregateSimulation":
        """Advance every replication exactly ``steps`` time-steps using
        per-replication event jumps.

        The inner loop applies at most one active event per replication
        per iteration, so its Python-level iteration count matches one
        scalar run.  Event rates are maintained incrementally (an event
        touches exactly one dark count, so only the affected lightening
        term is recomputed), and the event *type* and the first colour
        are fused into a single categorical draw over the ``2k`` masses
        ``[a_i * total_dark | A_i (A_i - 1) lighten_i]`` — class
        ``c < k`` is an adopt event lightening colour ``c``, class
        ``c >= k`` a lighten event of colour ``c - k``.  The update is
        then branch-free: every event moves one agent between the light
        and dark blocks with a ±1 delta pair.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        denom = float(self._n) * (self._n - 1)
        horizon = self._times + steps
        advance_event_driven(
            self._times,
            horizon,
            self._dark,
            self._light,
            self._lighten,
            self._backend.xp.full(self.replications, denom, dtype=FLOAT64),
            self._streams,
            self._pending,
            self.weights.k,
            tap=self._tap_update if self._taps else None,
            backend=self._backend,
        )
        self._sync_taps()
        return self

    # ------------------------------------------------------------------
    # Adversary support (batch-wide, between ``run`` calls)

    def add_agents(self, colour: int, count: int, dark: bool = True) -> None:
        """Inject ``count`` fresh agents of an existing colour into
        *every* replication (the same deterministic shock the scalar
        loop applies per replication)."""
        if not 0 <= colour < self.k:
            raise ValueError(f"unknown colour {colour}")
        if count < 0:
            raise ValueError("count must be non-negative")
        if dark:
            self._dark[:, colour] += count
        else:
            self._light[:, colour] += count
        self._n += count
        self._pending[:] = -1  # rates changed: redraw the next arrivals

    def add_colour(self, weight: float, count: int, dark: bool = True) -> int:
        """Introduce a brand-new colour with ``count`` supporters in
        every replication, widening the count matrix and the shared
        weight table.

        Sustainability requires new colours to arrive dark (Sec 1.2).
        """
        if count < 0:  # validate before any widening takes effect
            raise ValueError("count must be non-negative")
        colour = self.weights.add_colour(weight)
        k = self.weights.k
        xp = self._backend.xp
        state = xp.zeros((self._state.shape[0], 2 * k), dtype=INT64)
        state[:, : k - 1] = self._dark
        state[:, k : 2 * k - 1] = self._light
        self._state = state
        self._dark = state[:, :k]
        self._light = state[:, k:]
        self._lighten = xp.concatenate(
            [self._lighten, xp.asarray([1.0 / weight], dtype=FLOAT64)]
        )
        self.add_agents(colour, count, dark=dark)
        return colour

    def recolour(self, source: int, target: int) -> None:
        """Repaint all agents of ``source`` as ``target`` (shades kept)
        in every replication."""
        if not (0 <= source < self.k and 0 <= target < self.k):
            raise ValueError("source and target must be existing colours")
        if source == target:
            return
        self._dark[:, target] += self._dark[:, source]
        self._light[:, target] += self._light[:, source]
        self._dark[:, source] = 0
        self._light[:, source] = 0
        self._pending[:] = -1  # rates changed: redraw the next arrivals

    # ------------------------------------------------------------------
    # Streaming analysis taps

    def attach_stream(self, accumulator, *, reset: bool = True) -> None:
        """Feed a streaming accumulator from inside the event loop.

        The accumulator is reset to the current ``(R, k)`` configuration
        and then updated after every applied event (per affected rows)
        and synchronised at each horizon, so it integrates all R
        trajectories exactly while the engine holds no history.  Pass
        ``reset=False`` to re-attach an accumulator restored via
        ``load_state`` alongside an engine ``restore()`` — continuing
        the original accumulation bit-identically.
        """
        if reset:
            accumulator.reset(
                self._times.copy(),
                self._dark.astype(FLOAT64),
                self._light.astype(FLOAT64),
            )
        self._taps.append(accumulator)

    def detach_streams(self) -> None:
        """Drop all attached streaming accumulators."""
        self._taps.clear()

    def _tap_update(self, rows) -> None:
        times = self._times[rows]
        dark = self._dark[rows].astype(FLOAT64)
        light = self._light[rows].astype(FLOAT64)
        for tap in self._taps:
            tap.update(rows, times, dark, light)

    def _sync_taps(self) -> None:
        if not self._taps:
            return
        times = self._times.copy()
        for tap in self._taps:
            tap.sync(times)

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state."""
        bk = self._backend
        return ckpt.payload(
            "BatchedAggregateSimulation",
            weights=self.weights.as_array(),
            dark=bk.to_numpy(self._dark, copy=True),
            light=bk.to_numpy(self._light, copy=True),
            lighten=bk.to_numpy(self._lighten, copy=True),
            times=bk.to_numpy(self._times, copy=True),
            pending=bk.to_numpy(self._pending, copy=True),
            n=int(self._n),
            streams=self._streams.snapshot(),
            rng=ckpt.rng_state(self.rng),
        )

    def restore(self, data: dict) -> "BatchedAggregateSimulation":
        """Restore a :meth:`snapshot` payload in place.

        Handles checkpoints taken after ``add_colour`` interventions:
        the count matrix is re-widened to the snapshot's colour count.
        """
        ckpt.check(data, "BatchedAggregateSimulation")
        ckpt.restore_weight_table(self.weights, data["weights"])
        bk = self._backend
        k = self.weights.k
        dark = ckpt.as_array(data["dark"], INT64)
        light = ckpt.as_array(data["light"], INT64)
        if dark.shape != (self.replications, k) or dark.shape != light.shape:
            raise ValueError(
                f"count shape {dark.shape} does not match "
                f"({self.replications}, {k})"
            )
        self._state = bk.from_host(HOST.xp.concatenate([dark, light], axis=1))
        self._dark = self._state[:, :k]
        self._light = self._state[:, k:]
        self._lighten = bk.from_host(ckpt.as_array(data["lighten"], FLOAT64))
        self._times = bk.from_host(ckpt.as_array(data["times"], INT64))
        self._pending = bk.from_host(ckpt.as_array(data["pending"], INT64))
        self._n = ckpt.as_int(data["n"])
        self._streams.restore(data["streams"])
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedAggregateSimulation(R={self.replications}, "
            f"n={self.n}, k={self.k}, t={self.time})"
        )


def apply_step_rows(
    state,
    dark,
    light,
    lighten,
    rows,
    uniforms,
    xp=None,
):
    """Shared per-step transition of the batched engines: one faithful
    time-step for the ``rows`` of a ``(B, 2k)`` state matrix, mutating
    ``dark``/``light`` in place (``state`` is their concatenation).

    The scheduled agent's class and its sampled partner's class are
    drawn by vectorised categorical sampling over the ``2k`` (dark,
    light) classes — class ``c < k`` is dark colour ``c``, class
    ``c >= k`` light colour ``c - k`` — with the scheduled agent
    excluded from the partner draw, then the adopt/lighten rules apply
    through boolean masks.  ``uniforms`` holds the step's three
    ``(len(rows),)`` draws; ``lighten`` is a ``(k,)`` vector
    (homogeneous rows) or a ``(B, k)`` matrix (per-row tables).
    Returns the per-``rows`` changed mask.  ``xp`` selects the
    (NumPy-compatible) namespace; the default is the host.
    """
    if xp is None:
        xp = HOST.xp
    k = state.shape[1] // 2
    # Fancy indexing yields a fresh copy, safe to mutate below.
    masses = state[rows]
    sub = xp.arange(rows.size)
    u_cls = _pick_rows(masses, uniforms[0], xp)
    # Exclude u from its own class before the partner draw.
    masses[sub, u_cls] -= 1
    v_cls = _pick_rows(masses, uniforms[1], xp)
    coin = uniforms[2]
    u_dark = u_cls < k
    v_dark = v_cls < k
    u_col = xp.where(u_dark, u_cls, u_cls - k)
    v_col = xp.where(v_dark, v_cls, v_cls - k)
    adopt = ~u_dark & v_dark
    threshold = (
        lighten[rows, u_col] if lighten.ndim == 2 else lighten[u_col]
    )
    lightened = (
        u_dark & v_dark & (u_col == v_col) & (coin < threshold)
    )
    a_sel = xp.flatnonzero(adopt)
    light[rows[a_sel], u_col[a_sel]] -= 1
    dark[rows[a_sel], v_col[a_sel]] += 1
    l_sel = xp.flatnonzero(lightened)
    dark[rows[l_sel], u_col[l_sel]] -= 1
    light[rows[l_sel], u_col[l_sel]] += 1
    return adopt | lightened


def advance_event_driven(
    times,
    horizon,
    dark,
    light,
    lighten,
    denom,
    streams: RowStreams,
    pending,
    k: int,
    tap=None,
    backend: Backend = HOST,
) -> None:
    """Shared event-driven core of the batched engines: advance each
    row to its own ``horizon[r]`` with per-row geometric event jumps,
    mutating ``times``, ``dark``, ``light`` and ``pending`` in place.

    ``lighten`` is either a ``(k,)`` vector (homogeneous rows — the
    :class:`BatchedAggregateSimulation` case) or a ``(B, k)`` matrix
    (per-row tables — the heterogeneous engine); ``denom`` holds each
    row's ``n_r (n_r - 1)`` jump denominator.  Rows retire
    independently: absorbed rows (no active events left) and rows whose
    next jump overshoots coast to their horizon, the rest keep
    advancing, and the loop ends when every row has arrived.

    Split invariance: every row draws from its *own* substream in
    ``streams`` — one uniform for each arrival gap, two more only when
    the arrival is accepted — and an arrival past the horizon is stored
    in ``pending[r]`` (absolute step; -1 = none) instead of being
    discarded, to be consumed by the next call.  A row's consumed draw
    sequence is therefore a pure function of its own event history, so
    splitting a horizon (including *per-row* splits through the
    heterogeneous engine's ``run_to``) reproduces the uninterrupted
    trajectory bit-for-bit.

    ``tap(rows)`` — if given — is called after each batch of applied
    events with the absolute indices of the rows that just changed
    (their clocks already advanced), letting engines feed streaming
    accumulators from inside the loop.

    ``backend`` supplies the array namespace the loop computes in and
    the host converters for the stream boundary (``streams`` draws on
    the CPU on every backend).
    """
    xp = backend.xp
    row_lighten = lighten.ndim == 2
    total_dark = dark.sum(axis=1)
    terms = (dark * (dark - 1)).astype(FLOAT64) * lighten
    # Index array of rows still short of the horizon; rows retire when
    # they are absorbed or their next jump overshoots.
    act = xp.flatnonzero(times < horizon)
    while act.size:
        # Row-wise cumulative masses over 3k classes: the first 2k
        # (adopt per light colour, scaled by the dark total, then the
        # lighten terms) form the active-event distribution — their
        # running total at column 2k-1 *is* the event rate — and the
        # last k hold the dark counts for the partner pick.
        td = total_dark[act]
        cum = xp.cumsum(
            xp.concatenate(
                [light[act] * td[:, None], terms[act], dark[act]],
                axis=1,
            ),
            axis=1,
        )
        rate = cum[:, 2 * k - 1]
        # Rows with no active events left (single colour, all dark,
        # w = 1 edge cases) coast to the horizon.  An absorbed row can
        # hold no pending arrival: rates only change through events and
        # interventions, and interventions clear ``pending``.
        alive = rate > 0.0
        if not alive.all():
            dead = act[~alive]
            times[dead] = horizon[dead]
            act, cum, rate = act[alive], cum[alive], rate[alive]
            td = td[alive]
            if act.size == 0:
                break
        # Rows without a carried-over arrival draw a fresh gap from
        # their own substream; held rows reuse their stored arrival
        # without consuming any draws.
        fresh = pending[act] < 0
        if fresh.any():
            rows_f = act[fresh]
            u_gap = backend.from_host(
                streams.take(backend.to_numpy(rows_f), 1)
            )[:, 0]
            p = xp.minimum(rate[fresh] / denom[rows_f], 1.0)
            pending[rows_f] = times[rows_f] + geometric_from_uniform(
                u_gap, p, xp=xp
            )
        arrival = pending[act]
        # A jump past the horizon means the remaining steps are no-ops:
        # stop that row at the horizon and keep the arrival pending for
        # the next call (memorylessness makes keeping and redrawing
        # equal in distribution; keeping is also split-invariant
        # bit-for-bit).  The event uniforms are only drawn on
        # consumption, so nothing else is buffered.
        over = arrival > horizon[act]
        if over.any():
            done = act[over]
            times[done] = horizon[done]
            keep = ~over
            act, cum, td, arrival = (
                act[keep], cum[keep], td[keep], arrival[keep]
            )
            if act.size == 0:
                break
        times[act] = arrival
        pending[act] = -1
        # One active event per remaining row; two uniforms per row
        # (fused type/colour pick, then the dark-partner pick, which
        # lighten events simply discard).
        u = backend.from_host(streams.take(backend.to_numpy(act), 2)).T
        event_pick = _below(u[0] * cum[:, 2 * k - 1], cum[:, 2 * k - 1], xp)
        cls = xp.argmax(cum[:, : 2 * k] > event_pick[:, None], axis=1)
        adopt = cls < k
        # Adopt moves light i -> dark j; lighten moves dark i ->
        # light i — one ±1 delta pair per event.  The partner pick
        # thresholds inside the third block of the shared cumsum.
        light_col = xp.where(adopt, cls, cls - k)
        partner_pick = _below(
            cum[:, 2 * k - 1] + u[1] * td, cum[:, 3 * k - 1], xp
        )
        j = xp.argmax(cum[:, 2 * k:] > partner_pick[:, None], axis=1)
        dark_col = xp.where(adopt, j, light_col)
        delta = xp.where(adopt, -1, 1)
        light[act, light_col] += delta
        dark[act, dark_col] -= delta
        total_dark[act] -= delta
        d = dark[act, dark_col].astype(FLOAT64)
        terms[act, dark_col] = d * (d - 1.0) * (
            lighten[act, dark_col] if row_lighten else lighten[dark_col]
        )
        if tap is not None:
            tap(act)
        finished = arrival >= horizon[act]
        if finished.any():
            act = act[~finished]


def _pick_rows(masses, uniforms, xp=None):
    """Row-wise weighted index: for each row r, the first index whose
    cumulative mass exceeds ``uniforms[r]`` times the row total.

    The threshold is clamped strictly below the row total (``uniform *
    total`` can round up to the total when the uniform is within an ulp
    of 1), so the selected index always carries positive mass: the
    cumulative sum is flat over zero-mass entries, making the first
    strict exceedance a positive increment.  This is the vectorised
    counterpart of the scalar engine's last-non-empty fallback.  Rows
    must have positive total mass.
    """
    if xp is None:
        xp = HOST.xp
    cum = xp.cumsum(masses, axis=1, dtype=FLOAT64)
    picks = _below(uniforms * cum[:, -1], cum[:, -1], xp)
    return xp.argmax(cum > picks[:, None], axis=1)


def _below(picks, totals, xp=None):
    """Clamp thresholds strictly below their row totals."""
    if xp is None:
        xp = HOST.xp
    return xp.minimum(picks, xp.nextafter(totals, -xp.inf))
