"""Agent-level discrete-event simulator.

Implements the paper's execution model exactly: at every time-step one
agent is scheduled (uniformly at random by default), samples ``arity``
other agents — uniformly over the whole population on the complete
graph, or over its neighbourhood on an explicit topology — and applies
the protocol's transition rule.  Only the scheduled agent changes state.

The loop amortises random-number generation in blocks and notifies
observers only on actual state changes, so instrumented runs stay fast.
Populations may grow between (not during) ``run`` calls, which is how
the adversary interventions of :mod:`repro.adversary` are applied.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.protocol import Protocol
from ..core.state import AgentState
from .observers import Observer
from .population import Population
from .rng import make_rng
from .scheduler import Scheduler, UniformScheduler

_BLOCK = 4096


def _partner_index(draw: int, u: int) -> int:
    """Map a draw from ``[0, n - 1)`` onto ``[0, n) \\ {u}``.

    Sampling "one of the other n - 1 agents" draws from the smaller
    range and shifts the indices at or above the initiator up by one,
    which is uniform over the population minus ``u``.
    """
    return draw + 1 if draw >= u else draw


class Simulation:
    """Drives a :class:`~repro.core.protocol.Protocol` over a population.

    Args:
        protocol: The local update rule.
        population: Initial population (mutated in place).
        topology: Optional interaction graph from :mod:`repro.topology`;
            ``None`` means the complete graph (the paper's setting).
        scheduler: Activation policy; defaults to the uniform scheduler.
        rng: Seed or generator for all randomness.
        observers: Change-driven instrumentation.
    """

    def __init__(
        self,
        protocol: Protocol,
        population: Population,
        *,
        topology=None,
        scheduler: Scheduler | None = None,
        rng: int | np.random.Generator | None = None,
        observers: Iterable[Observer] = (),
    ):
        if population.n < 2:
            raise ValueError("need at least two agents to interact")
        self.protocol = protocol
        self.population = population
        self.topology = topology
        self.scheduler = scheduler or UniformScheduler()
        self.rng = make_rng(rng)
        self.observers: list[Observer] = list(observers)
        self.time = 0
        self.changes = 0
        if topology is not None and topology.n != population.n:
            raise ValueError(
                f"topology has {topology.n} nodes but population has "
                f"{population.n} agents"
            )

    def add_observer(self, observer: Observer) -> None:
        """Attach an observer before (or between) runs."""
        self.observers.append(observer)

    def colour_counts(self):
        """``C_i`` per colour (delegates to the population)."""
        return self.population.colour_counts()

    def dark_counts(self):
        """``A_i`` per colour (delegates to the population)."""
        return self.population.dark_counts()

    def light_counts(self):
        """``a_i`` per colour (delegates to the population)."""
        return self.population.light_counts()

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one time-step; returns True if a state changed."""
        u = int(self.scheduler.draw_block(self.population.n, 1, self.rng)[0])
        sampled = self._sample_partners(u, self.protocol.arity)
        return self._apply(u, sampled)

    def run(self, steps: int) -> "Simulation":
        """Execute ``steps`` time-steps; returns self for chaining."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for observer in self.observers:
            observer.on_start(self)
        remaining = steps
        arity = self.protocol.arity
        population = self.population
        complete = self.topology is None
        while remaining > 0:
            block = min(remaining, _BLOCK)
            n = population.n
            initiators = self.scheduler.draw_block(n, block, self.rng)
            if complete:
                partners = self.rng.integers(
                    0, n - 1, size=(block, arity)
                )
            else:
                partners = None
            for index in range(block):
                u = int(initiators[index])
                if complete:
                    row = partners[index]
                    sampled = [
                        population.state_of(_partner_index(int(v), u))
                        for v in row
                    ]
                else:
                    sampled = [
                        population.state_of(
                            self.topology.sample_neighbour(u, self.rng)
                        )
                        for _ in range(arity)
                    ]
                self._apply(u, sampled)
            remaining -= block
        for observer in self.observers:
            observer.on_end(self)
        return self

    # ------------------------------------------------------------------

    def _sample_partners(self, u: int, arity: int) -> list[AgentState]:
        population = self.population
        if self.topology is None:
            n = population.n
            return [
                population.state_of(
                    _partner_index(int(self.rng.integers(0, n - 1)), u)
                )
                for _ in range(arity)
            ]
        return [
            population.state_of(self.topology.sample_neighbour(u, self.rng))
            for _ in range(arity)
        ]

    def _apply(self, u: int, sampled: list[AgentState]) -> bool:
        self.time += 1
        old = self.population.state_of(u)
        new = self.protocol.transition(old, sampled, self.rng)
        if new == old:
            return False
        self.population.set_state(u, new)
        self.changes += 1
        for observer in self.observers:
            observer.on_change(self, u, old, new)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulation(protocol={self.protocol.name!r}, "
            f"n={self.population.n}, t={self.time})"
        )
