"""Agent-level discrete-event simulator.

Implements the paper's execution model exactly: at every time-step one
agent is scheduled (uniformly at random by default), samples ``arity``
other agents — uniformly over the whole population on the complete
graph, or over its neighbourhood on an explicit topology — and applies
the protocol's transition rule.  Only the scheduled agent changes state.

The loop amortises random-number generation in blocks and notifies
observers only on actual state changes, so instrumented runs stay fast.
Populations may grow between (not during) ``run`` calls, which is how
the adversary interventions of :mod:`repro.adversary` are applied.

Seeding contract
----------------
Randomness is consumed through an internal draw buffer that refills in
fixed blocks of :data:`_BLOCK` steps, at positions determined solely by
the *total number of executed steps* (not by how those steps were
partitioned into calls).  Consequently, for a fixed seed and a fixed
population size:

* ``step()`` consumes exactly the draws of ``run(1)``, and ``k`` calls
  to ``step()`` produce the same trajectory as one ``run(k)`` (only the
  observers' per-``run`` ``on_start``/``on_end`` framing differs);
* any split ``run(a); run(b)`` equals ``run(a + b)`` — in particular,
  recording intervals and intervention segmentation do not perturb the
  trajectory.

Refilling may advance the underlying generator (and a stateful
scheduler) past the executed horizon; the buffer is discarded whenever
the population grows, so interventions that add agents re-anchor the
stream.  For the *vectorised* agent-level engine with the same
transition semantics see :mod:`repro.engine.array_engine`.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.protocol import Protocol
from ..core.state import AgentState
from ..core.weights import WeightTable
from . import checkpoint as ckpt
from .backend import HOST, INT64, Generator
from .observers import Observer
from .population import Population
from .rng import make_rng
from .scheduler import Scheduler, UniformScheduler

np = HOST.xp  # host namespace: the agent-level loop is scalar/CPU

_BLOCK = 4096


def _partner_index(draw: int, u: int) -> int:
    """Map a draw from ``[0, n - 1)`` onto ``[0, n) \\ {u}``.

    Sampling "one of the other n - 1 agents" draws from the smaller
    range and shifts the indices at or above the initiator up by one,
    which is uniform over the population minus ``u``.
    """
    return draw + 1 if draw >= u else draw


class Simulation:
    """Drives a :class:`~repro.core.protocol.Protocol` over a population.

    Args:
        protocol: The local update rule.
        population: Initial population (mutated in place).
        topology: Optional interaction graph from :mod:`repro.topology`;
            ``None`` means the complete graph (the paper's setting).
        scheduler: Activation policy; defaults to the uniform scheduler.
            The scheduler is :meth:`~repro.engine.scheduler.Scheduler.reset`
            at construction so that instances shared across replications
            start each simulation from their initial state.
        rng: Seed or generator for all randomness.
        observers: Change-driven instrumentation.
    """

    def __init__(
        self,
        protocol: Protocol,
        population: Population,
        *,
        topology=None,
        scheduler: Scheduler | None = None,
        rng: int | Generator | None = None,
        observers: Iterable[Observer] = (),
    ):
        if population.n < 2:
            raise ValueError("need at least two agents to interact")
        self.protocol = protocol
        self.population = population
        self.topology = topology
        self.scheduler = scheduler or UniformScheduler()
        self.scheduler.reset()
        self.rng = make_rng(rng)
        self.observers: list[Observer] = list(observers)
        self.time = 0
        self.changes = 0
        self._buf_initiators = None
        self._buf_partners = None
        self._buf_pos = 0
        self._buf_n = -1
        if topology is not None and topology.n != population.n:
            raise ValueError(
                f"topology has {topology.n} nodes but population has "
                f"{population.n} agents"
            )

    def add_observer(self, observer: Observer) -> None:
        """Attach an observer before (or between) runs."""
        self.observers.append(observer)

    def colour_counts(self):
        """``C_i`` per colour (delegates to the population)."""
        return self.population.colour_counts()

    def dark_counts(self):
        """``A_i`` per colour (delegates to the population)."""
        return self.population.dark_counts()

    def light_counts(self):
        """``a_i`` per colour (delegates to the population)."""
        return self.population.light_counts()

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one time-step; returns True if a state changed.

        Trajectory-equivalent to ``run(1)`` (same draws — see the
        module docstring for the seeding contract), but does not fire
        the observers' ``on_start``/``on_end`` lifecycle hooks: those
        frame whole ``run`` calls, and some (e.g. the occupancy
        tracker's flush) cost O(n), which would dominate step-driven
        loops.
        """
        before = self.changes
        self._execute(1)
        return self.changes > before

    def run(self, steps: int) -> "Simulation":
        """Execute ``steps`` time-steps; returns self for chaining."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for observer in self.observers:
            observer.on_start(self)
        self._execute(steps)
        for observer in self.observers:
            observer.on_end(self)
        return self

    def _execute(self, steps: int) -> None:
        remaining = steps
        arity = self.protocol.arity
        population = self.population
        complete = self.topology is None
        while remaining > 0:
            if self._buf_pos >= _BLOCK or self._buf_n != population.n:
                self._refill(population.n, arity, complete)
            take = min(remaining, _BLOCK - self._buf_pos)
            start = self._buf_pos
            initiators = self._buf_initiators
            partners = self._buf_partners
            for index in range(start, start + take):
                u = int(initiators[index])
                if complete:
                    row = partners[index]
                    sampled = [
                        population.state_of(_partner_index(int(v), u))
                        for v in row
                    ]
                else:
                    sampled = [
                        population.state_of(
                            self.topology.sample_neighbour(u, self.rng)
                        )
                        for _ in range(arity)
                    ]
                self._apply(u, sampled)
            self._buf_pos += take
            remaining -= take

    # ------------------------------------------------------------------

    def _refill(self, n: int, arity: int, complete: bool) -> None:
        """Refill the draw buffer with a full block of ``_BLOCK`` steps.

        Refills happen whenever the buffer is exhausted or the
        population has grown, so buffer boundaries depend only on the
        executed-step count and the intervention points — not on how
        ``run`` calls were chunked.
        """
        self._buf_initiators = self.scheduler.draw_block(
            n, _BLOCK, self.rng
        )
        if complete:
            self._buf_partners = self.rng.integers(
                0, n - 1, size=(_BLOCK, arity)
            )
        else:
            self._buf_partners = None
        self._buf_pos = 0
        self._buf_n = n

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state.

        Captures the agent states, clocks, the partially consumed draw
        buffer (initiators and — on the complete graph — partner
        draws), scheduler progress, the RNG bit-generator state, and
        the protocol's weight table when it has one, so restoring
        mid-block reproduces the uninterrupted trajectory bit-for-bit.
        Observer state is deliberately *not* part of the engine payload:
        observers snapshot themselves (``state_dict``/``load_state``).
        """
        population = self.population
        buffered = self._buf_initiators is not None
        weights = getattr(self.protocol, "weights", None)
        fields = {
            "colours": np.asarray(
                population.colours_view(), dtype=INT64
            ),
            "shades": np.asarray(population.shades_view(), dtype=INT64),
            "k": int(population.k),
            "time": int(self.time),
            "changes": int(self.changes),
            "buffered": int(buffered),
            "buf_pos": int(self._buf_pos),
            "buf_n": int(self._buf_n),
            "scheduler": self.scheduler.state_dict(),
            "rng": ckpt.rng_state(self.rng),
        }
        if buffered:
            fields["buf_initiators"] = self._buf_initiators.copy()
            if self._buf_partners is not None:
                fields["buf_partners"] = self._buf_partners.copy()
        if isinstance(weights, WeightTable):
            fields["weights"] = weights.as_array()
        return ckpt.payload("Simulation", **fields)

    def restore(self, data: dict) -> "Simulation":
        """Restore a :meth:`snapshot` payload in place."""
        ckpt.check(data, "Simulation")
        weights = getattr(self.protocol, "weights", None)
        if isinstance(weights, WeightTable) and "weights" in data:
            ckpt.restore_weight_table(weights, data["weights"])
        self.population.restore_states(
            ckpt.as_array(data["colours"], INT64),
            ckpt.as_array(data["shades"], INT64),
            ckpt.as_int(data["k"]),
        )
        self.time = ckpt.as_int(data["time"])
        self.changes = ckpt.as_int(data["changes"])
        if ckpt.as_int(data["buffered"]):
            self._buf_initiators = ckpt.as_array(
                data["buf_initiators"], INT64
            )
            self._buf_partners = (
                ckpt.as_array(data["buf_partners"], INT64)
                if "buf_partners" in data
                else None
            )
        else:
            self._buf_initiators = None
            self._buf_partners = None
        self._buf_pos = ckpt.as_int(data["buf_pos"])
        self._buf_n = ckpt.as_int(data["buf_n"])
        self.scheduler.load_state(data["scheduler"])
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def _apply(self, u: int, sampled: list[AgentState]) -> bool:
        self.time += 1
        old = self.population.state_of(u)
        new = self.protocol.transition(old, sampled, self.rng)
        if new == old:
            return False
        self.population.set_state(u, new)
        self.changes += 1
        for observer in self.observers:
            observer.on_change(self, u, old, new)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulation(protocol={self.protocol.name!r}, "
            f"n={self.population.n}, t={self.time})"
        )
