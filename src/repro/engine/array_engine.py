"""Vectorised structure-of-arrays agent-level engine.

:class:`ArraySimulation` executes the same per-step model as the scalar
:class:`~repro.engine.simulator.Simulation` — one scheduled agent per
time-step samples ``arity`` partners and applies the protocol's
transition, and *only the scheduled agent changes state* — but holds the
population as flat ``(colour, shade)`` integer arrays and applies
transition *kernels* to whole blocks of steps at once.

Exactness.  A block of pre-drawn steps is split into **conflict-free
segments**: within a segment no step reads (as initiator or partner) an
agent that an earlier step of the same segment scheduled.  Initiators
are therefore deduplicated per segment, gathers against the
segment-start state equal the sequential reads, and the scattered
writes commute — so segmented execution reproduces the sequential
trajectory of its own draw sequence *exactly*, not just in
distribution.  Against the scalar engine the equivalence is
distributional (the draw streams differ); it is verified with seeded
Kolmogorov-Smirnov tests in ``tests/integration/test_array_equivalence.py``.

Kernels exist for the Diversification protocol (light-adopts-dark,
dark-dark lightening with probability ``1/w_i``), its unweighted
ablation, and the whole baseline suite (Voter, 2-Choices, 3-Majority,
anti-voter, SIS epidemic, random recolouring, trivial resampling);
protocols without a kernel raise and should run on the scalar engine
(the experiment runners fall back automatically).  Supported
interaction graphs are the
complete graph (``topology=None`` or
:class:`~repro.topology.base.CompleteGraph`) and any CSR-adjacency
topology exposing ``neighbour_arrays()``
(:class:`~repro.topology.graphs.AdjacencyTopology` and subclasses),
sampled with vectorised gathers.

A batched ``(R, n)`` axis advances R independent replications of the
same instance together, mirroring
:class:`~repro.engine.batched.BatchedAggregateSimulation`: one step is
applied to all replications per iteration, so the Python-level loop
count is paid once instead of R times.

The engine shares the scalar engine's seeding contract: draws are
buffered in fixed-size blocks anchored to the executed-step count, so
``step()`` equals ``run(1)`` and ``run(a); run(b)`` equals
``run(a + b)`` for a fixed seed.  The adversary interventions of
:mod:`repro.adversary` apply between (not during) ``run`` calls through
:meth:`ArraySimulation.add_agents`, :meth:`ArraySimulation.add_colour`
and :meth:`ArraySimulation.recolour`; population growth discards the
draw buffer (re-anchoring the stream, exactly like the scalar engine)
and requires the complete graph, since CSR adjacency cannot grow.  In
batched mode an intervention applies to every replication at once.

Backends.  All array work routes through :mod:`repro.engine.backend`:
the transition kernels restrict themselves to the array-API standard
(``take`` instead of fancy indexing, ``astype`` as a function, no
``out=``), so :func:`kernel_for` can build a kernel against any
resolved backend — including ``array-api-strict`` — while the engine
step loops, which need NumPy-compatible scatter and ``bincount``, gate
on :func:`~repro.engine.backend.require_engine_loops`.  Randomness
stays on the host (see :mod:`repro.engine.rng`) and is device-placed
per block; checkpoints always serialise as host NumPy arrays.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..baselines.anti_voter import AntiVoterModel
from ..baselines.epidemic import SISEpidemic
from ..baselines.three_majority import ThreeMajority
from ..baselines.trivial import TrivialResampling
from ..baselines.two_choices import TwoChoices
from ..baselines.uniform_partition import RandomRecolouring
from ..baselines.voter import VoterModel
from ..core.ablations import UnweightedLightening
from ..core.diversification import Diversification
from ..core.protocol import Protocol
from ..core.state import DARK, LIGHT, AgentState
from ..core.weights import WeightTable
from ..topology.base import CompleteGraph
from . import checkpoint as ckpt
from .backend import (
    FLOAT64,
    HOST,
    INT64,
    Backend,
    Generator,
    require_engine_loops,
    resolve_backend,
)
from .observers import Observer
from .population import Population
from .rng import make_rng
from .scheduler import Scheduler, UniformScheduler

_BLOCK = 8192
#: Target total draws (steps x replications) per batched refill.
_BATCH_DRAWS = 65536


# ----------------------------------------------------------------------
# Transition kernels
#
# Kernels are written against the array-API standard — element-wise
# operators, ``xp.where`` on arrays, ``xp.take`` gathers, ``xp.astype``
# — so the same source runs on NumPy, CuPy and ``array-api-strict``.
# Scalar constants that feed ``xp.where`` branches are materialised as
# 0-d arrays once per ``refresh`` (the strict namespace insists on
# arrays where NumPy would promote a Python scalar).


class _DiversificationKernel:
    """Vectorised Eq. (2): adopt when light meets dark, lighten a dark
    pair of equal colour with the per-colour coin ``1/w_i`` (or 1 for
    the unweighted ablation).

    In batched ``(R, n)`` mode the kernel optionally carries a *per-row*
    ``(R, k)`` lighten table (:meth:`set_row_lighten`), so replications
    with different weight tables fuse into one engine: Diversification's
    dynamics depend on the weights only through the lightening coins, so
    per-row coins capture per-row weight tables exactly.
    """

    coins = 1

    def __init__(
        self, protocol, unweighted: bool = False, backend: Backend = HOST
    ):
        self._protocol = protocol
        self._unweighted = unweighted
        self._backend = backend
        self._lighten = None
        self._row_lighten = None

    def set_row_lighten(self, table) -> None:
        """Install a per-row ``(R, k)`` lighten table (batched mode;
        row ``r`` holds the coins of replication ``r``)."""
        bk = self._backend
        self._row_lighten = bk.asarray(table, dtype=bk.dtypes.float64)

    def refresh(self, k: int) -> None:
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        if self._row_lighten is not None:
            if self._row_lighten.shape[1] != k:
                raise ValueError(
                    f"per-row lighten table has {self._row_lighten.shape[1]} "
                    f"columns but the engine has k={k}; colour addition "
                    "is not supported with per-row tables"
                )
            self._lighten = self._row_lighten
        else:
            weights = self._protocol.weights
            if weights.k != k:
                raise ValueError(
                    f"weight table grew to {weights.k} colours but the array "
                    f"engine was built for k={k}; colour addition needs the "
                    "scalar engines"
                )
            if self._unweighted:
                self._lighten = xp.ones(k, dtype=dt.float64)
            else:
                self._lighten = bk.from_host(1.0 / weights.as_array())
        self._dark0 = xp.asarray(DARK, dtype=dt.int64)
        self._light0 = xp.asarray(LIGHT, dtype=dt.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        v0c = vc[..., 0]
        v0s = vs[..., 0]
        u_dark = us > LIGHT
        v_dark = v0s > LIGHT
        adopt = ~u_dark & v_dark
        if self._lighten.ndim == 2:
            # Per-row table: batched calls pass one scheduled agent per
            # replication, so position i of ``uc`` is replication i.
            # Gather with a flat take — strict has no 2-D fancy index.
            k = self._lighten.shape[1]
            rows = xp.arange(
                uc.shape[0], dtype=self._backend.dtypes.int64
            )
            threshold = xp.take(
                xp.reshape(self._lighten, (-1,)), rows * k + uc
            )
        else:
            threshold = xp.take(self._lighten, uc)
        lighten = (
            u_dark
            & v_dark
            & (uc == v0c)
            & (coins[..., 0] < threshold)
        )
        new_c = xp.where(adopt, v0c, uc)
        new_s = xp.where(
            adopt, self._dark0, xp.where(lighten, self._light0, us)
        )
        return new_c, new_s


class _VoterKernel:
    """Adopt the sampled colour unconditionally (dark shade)."""

    coins = 0

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        bk = self._backend
        self._dark0 = bk.xp.asarray(DARK, dtype=bk.dtypes.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        v0c = vc[..., 0]
        same = v0c == uc
        new_s = xp.where(same, us, self._dark0)
        return xp.asarray(v0c, copy=True), new_s


class _ThreeMajorityKernel:
    """Majority of {own, sample, sample}; uniform pick among full ties."""

    coins = 1

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        bk = self._backend
        self._dark0 = bk.xp.asarray(DARK, dtype=bk.dtypes.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        c1 = vc[..., 0]
        c2 = vc[..., 1]
        # 0, 1 or 2
        pick = xp.astype(coins[..., 0] * 3.0, self._backend.dtypes.int64)
        random_choice = xp.where(pick == 0, uc, xp.where(pick == 1, c1, c2))
        winner = xp.where(
            (uc == c1) | (uc == c2),
            uc,
            xp.where(c1 == c2, c1, random_choice),
        )
        new_s = xp.where(winner == uc, us, self._dark0)
        return winner, new_s


class _TwoChoicesKernel:
    """Adopt the sampled colour only when both samples agree on a
    colour different from one's own (dark shade on change)."""

    coins = 0

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        bk = self._backend
        self._dark0 = bk.xp.asarray(DARK, dtype=bk.dtypes.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        c1 = vc[..., 0]
        c2 = vc[..., 1]
        change = (c1 == c2) & (c1 != uc)
        new_c = xp.where(change, c1, uc)
        new_s = xp.where(change, self._dark0, us)
        return new_c, new_s


class _AntiVoterKernel:
    """Adopt the opposite of the sampled colour (two-colour model)."""

    coins = 0

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        if k != 2:
            raise ValueError(
                f"the anti-voter kernel needs exactly two colour slots, "
                f"got k={k}"
            )
        bk = self._backend
        self._dark0 = bk.xp.asarray(DARK, dtype=bk.dtypes.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        opposite = 1 - vc[..., 0]
        change = opposite != uc
        new_c = xp.where(change, opposite, uc)
        new_s = xp.where(change, self._dark0, us)
        return new_c, new_s


class _SISKernel:
    """SIS contact process: spontaneous recovery for infected agents,
    transmission on contact for susceptible ones.  The branches are
    exclusive per agent, so one pre-drawn coin serves both (the scalar
    engine draws lazily; only the distribution must match)."""

    coins = 1

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        if k != 2:
            raise ValueError(
                f"the SIS kernel needs exactly two colour slots "
                f"(susceptible/infected), got k={k}"
            )
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        self._dark0 = xp.asarray(DARK, dtype=dt.int64)
        self._susceptible0 = xp.asarray(
            self._protocol.SUSCEPTIBLE, dtype=dt.int64
        )
        self._infected0 = xp.asarray(
            self._protocol.INFECTED, dtype=dt.int64
        )

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        protocol = self._protocol
        infected = uc == protocol.INFECTED
        coin = coins[..., 0]
        recover = infected & (coin < protocol.recovery)
        catch = (
            ~infected
            & (vc[..., 0] == protocol.INFECTED)
            & (coin < protocol.transmission)
        )
        new_c = xp.where(
            recover,
            self._susceptible0,
            xp.where(catch, self._infected0, uc),
        )
        new_s = xp.where(recover | catch, self._dark0, us)
        return new_c, new_s


class _RandomRecolouringKernel:
    """Relabel to a uniformly random colour on same-colour meetings
    (the strawman's global-knowledge redraw over all ``k`` colours)."""

    coins = 1

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        if self._protocol.k > k:
            raise ValueError(
                f"random recolouring redraws over {self._protocol.k} "
                f"colours but the engine has only k={k} slots"
            )
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        self._dark0 = xp.asarray(DARK, dtype=dt.int64)
        self._kmax0 = xp.asarray(self._protocol.k - 1, dtype=dt.int64)

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        k = self._protocol.k
        redraw = vc[..., 0] == uc
        pick = xp.astype(coins[..., 0] * k, self._backend.dtypes.int64)
        pick = xp.minimum(pick, self._kmax0)  # ulp guard on coin ~ 1
        new_c = xp.where(redraw, pick, uc)
        new_s = xp.where(redraw, self._dark0, us)
        return new_c, new_s


class _TrivialResamplingKernel:
    """Redraw own colour proportionally to the protocol's private
    weight snapshot, gated by the resample probability."""

    coins = 2

    def __init__(self, protocol, backend: Backend = HOST):
        self._protocol = protocol
        self._backend = backend

    def refresh(self, k: int) -> None:
        if self._protocol.known_k > k:
            raise ValueError(
                f"trivial resampling draws over {self._protocol.known_k} "
                f"colours but the engine has only k={k} slots"
            )
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        self._dark0 = xp.asarray(DARK, dtype=dt.int64)
        self._kmax0 = xp.asarray(self._protocol.known_k - 1, dtype=dt.int64)
        # The cumulative-share snapshot is private to the protocol and
        # fixed after construction; device-place it once per refresh.
        self._cum = bk.from_host(self._protocol.cumulative_shares())

    def apply(self, uc, us, vc, vs, coins):
        xp = self._backend.xp
        dt = self._backend.dtypes
        resample = coins[..., 0] < self._protocol.resample_probability
        pick = xp.searchsorted(self._cum, coins[..., 1], side="right")
        pick = xp.astype(xp.minimum(pick, self._kmax0), dt.int64)
        change = resample & (pick != uc)
        new_c = xp.where(change, pick, uc)
        new_s = xp.where(change, self._dark0, us)
        return new_c, new_s


#: Exact protocol type -> kernel factory (called with the protocol and
#: the resolved backend).  Exact matches only: a subclass overriding
#: ``transition`` must not inherit its parent's kernel.
_KERNEL_FACTORIES = {
    Diversification: lambda p, bk: _DiversificationKernel(p, backend=bk),
    UnweightedLightening: lambda p, bk: _DiversificationKernel(
        p, unweighted=True, backend=bk
    ),
    VoterModel: lambda p, bk: _VoterKernel(p, backend=bk),
    ThreeMajority: lambda p, bk: _ThreeMajorityKernel(p, backend=bk),
    TwoChoices: lambda p, bk: _TwoChoicesKernel(p, backend=bk),
    AntiVoterModel: lambda p, bk: _AntiVoterKernel(p, backend=bk),
    SISEpidemic: lambda p, bk: _SISKernel(p, backend=bk),
    RandomRecolouring: lambda p, bk: _RandomRecolouringKernel(
        p, backend=bk
    ),
    TrivialResampling: lambda p, bk: _TrivialResamplingKernel(
        p, backend=bk
    ),
}


def kernel_for(protocol: Protocol, backend: str | Backend | None = None):
    """The vectorised kernel for ``protocol``, or None if it has none.

    ``backend`` selects the array namespace the kernel computes with
    (name, resolved :class:`~repro.engine.backend.Backend`, or None for
    the ``REPRO_BACKEND``/NumPy default).  Kernels run on *any* known
    backend, including ``array-api-strict``.
    """
    factory = _KERNEL_FACTORIES.get(type(protocol))
    if factory is None:
        return None
    return factory(protocol, resolve_backend(backend))


def has_kernel(protocol: Protocol) -> bool:
    """Whether ``protocol`` can run on :class:`ArraySimulation`."""
    return type(protocol) in _KERNEL_FACTORIES


def supports_topology(topology) -> bool:
    """Whether the array engine can sample neighbours on ``topology``.

    ``None`` and :class:`~repro.topology.base.CompleteGraph` use the
    shifted-uniform complete-graph draw; anything exposing
    ``neighbour_arrays()`` (CSR adjacency) uses vectorised gathers.
    """
    return (
        topology is None
        or isinstance(topology, CompleteGraph)
        or hasattr(topology, "neighbour_arrays")
    )


# ----------------------------------------------------------------------


class ArrayPopulationView:
    """Read-mostly :class:`~repro.engine.population.Population` facade
    over an :class:`ArraySimulation`'s state arrays, so observers and
    recording code written against the scalar engine keep working."""

    def __init__(self, simulation: "ArraySimulation"):
        self._simulation = simulation

    @property
    def n(self) -> int:
        return self._simulation.n

    @property
    def k(self) -> int:
        return self._simulation.k

    def state_of(self, agent: int) -> AgentState:
        return AgentState(self.colour_of(agent), self.shade_of(agent))

    def colour_of(self, agent: int) -> int:
        return int(self._simulation._colours[agent])

    def shade_of(self, agent: int) -> int:
        return int(self._simulation._shades[agent])

    def states(self) -> list[AgentState]:
        return [
            AgentState(int(c), int(s))
            for c, s in zip(
                self._simulation._colours, self._simulation._shades
            )
        ]

    def colour_counts(self):
        return self._simulation.colour_counts()

    def dark_counts(self):
        return self._simulation.dark_counts()

    def light_counts(self):
        return self._simulation.light_counts()

    def colours_view(self):
        return self._simulation._colours

    def shades_view(self):
        return self._simulation._shades

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayPopulationView(n={self.n}, k={self.k})"


class ArraySimulation:
    """Structure-of-arrays agent-level engine with vectorised kernels.

    Args:
        protocol: The local update rule; must have a registered kernel
            (see :func:`has_kernel`).
        colours: Initial colours — a
            :class:`~repro.engine.population.Population` (colours and
            shades are copied out), a flat length-``n`` sequence, or an
            ``(R, n)`` matrix giving each replication its own start.
        shades: Optional initial shades, same shape as ``colours``;
            defaults to each colour's ``protocol.initial_state`` shade.
        k: Number of colour slots (default: inferred from the
            protocol's weight table, else ``max(colour) + 1``).
        topology: ``None`` / complete graph, or a CSR-adjacency
            topology (see :func:`supports_topology`).
        scheduler: Activation policy (default uniform; reset at
            construction).  Batched runs require the uniform scheduler.
        rng: Seed or generator driving all randomness (one shared
            stream for all replications, vectorised draws).  Draws are
            host-resident on every backend — the seeding contract.
        observers: Change-driven instrumentation (single-run mode
            only).  With observers attached, kernel evaluation stays
            vectorised but changes are applied one at a time so each
            callback sees the exact mid-trajectory state.
        replications: Fuse R replications into an ``(R, n)`` state
            matrix.  ``None`` (with 1-D ``colours``) selects single-run
            mode; 2-D ``colours`` implies batched mode.
        lighten_rows: Optional ``(R, k)`` per-row lightening coins for
            the Diversification kernel in batched mode, letting rows
            with *different* weight tables share one fused engine (the
            dynamics depend on the weights only through these coins).
            Incompatible with colour addition (the per-row table cannot
            grow).
        backend: Array backend for state and kernels — a name, a
            resolved :class:`~repro.engine.backend.Backend`, or None
            (``REPRO_BACKEND`` env var, default NumPy).  The step loops
            need a NumPy-compatible namespace, so ``array-api-strict``
            is rejected here (use :func:`kernel_for` to exercise the
            kernel layer on it).
    """

    def __init__(
        self,
        protocol: Protocol,
        colours,
        *,
        shades=None,
        k: int | None = None,
        topology=None,
        scheduler: Scheduler | None = None,
        rng: int | Generator | None = None,
        observers: Iterable[Observer] = (),
        replications: int | None = None,
        lighten_rows=None,
        backend: str | Backend | None = None,
    ):
        self.protocol = protocol
        self._backend = require_engine_loops(
            resolve_backend(backend), "ArraySimulation"
        )
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        self._kernel = kernel_for(protocol, backend=bk)
        if self._kernel is None:
            raise ValueError(
                f"protocol {protocol.name!r} has no vectorised kernel; "
                "use repro.engine.Simulation"
            )
        if isinstance(colours, Population):
            if shades is None:
                shades = xp.asarray(colours.shades_view(), dtype=dt.int64)
            if k is None:
                k = colours.k
            colours = xp.asarray(colours.colours_view(), dtype=dt.int64)
        colours = xp.asarray(colours, dtype=dt.int64)
        if colours.ndim == 1 and replications is not None:
            if replications < 1:
                raise ValueError("need at least one replication")
            colours = xp.tile(colours, (replications, 1))
        elif colours.ndim == 2:
            if replications is not None and replications != colours.shape[0]:
                raise ValueError(
                    f"colours has {colours.shape[0]} rows but "
                    f"replications={replications}"
                )
            replications = colours.shape[0]
        elif colours.ndim != 1:
            raise ValueError("colours must be 1-D (n,) or 2-D (R, n)")
        self._batched = colours.ndim == 2
        self._n = int(colours.shape[-1])
        if self._n < 2:
            raise ValueError("need at least two agents to interact")
        if colours.size and int(colours.min()) < 0:
            raise ValueError("colours must be non-negative")
        observed_k = int(colours.max()) + 1 if colours.size else 1
        if k is None:
            weights = getattr(protocol, "weights", None)
            k = weights.k if weights is not None else observed_k
        if k < observed_k:
            raise ValueError(
                f"k={k} smaller than max colour {observed_k - 1}"
            )
        self._k = int(k)
        if shades is None:
            shade_map = xp.asarray(
                [protocol.initial_state(c).shade for c in range(self._k)],
                dtype=dt.int64,
            )
            shades = shade_map[colours]
        else:
            shades = xp.asarray(shades, dtype=dt.int64)
            if self._batched and shades.ndim == 1:
                shades = xp.tile(shades, (colours.shape[0], 1))
            if shades.shape != colours.shape:
                raise ValueError("shades must match the shape of colours")
            if shades.size and int(shades.min()) < 0:
                raise ValueError("shades must be non-negative")
        self._colours = colours.copy()
        self._shades = shades.copy()
        self.topology = topology
        if topology is not None and topology.n != self._n:
            raise ValueError(
                f"topology has {topology.n} nodes but population has "
                f"{self._n} agents"
            )
        self._complete = topology is None or isinstance(
            topology, CompleteGraph
        )
        if self._complete:
            self._offsets = self._targets = None
        elif hasattr(topology, "neighbour_arrays"):
            offsets, targets = topology.neighbour_arrays()
            self._offsets = xp.asarray(offsets, dtype=dt.int64)
            self._targets = xp.asarray(targets, dtype=dt.int64)
        else:
            raise ValueError(
                f"topology {type(topology).__name__} exposes no CSR "
                "adjacency (neighbour_arrays); use repro.engine.Simulation"
            )
        self.scheduler = scheduler or UniformScheduler()
        self.scheduler.reset()
        self.observers: list[Observer] = list(observers)
        if self._batched:
            if self.observers:
                raise ValueError(
                    "observers are only supported in single-run mode"
                )
            if not isinstance(self.scheduler, UniformScheduler):
                raise ValueError(
                    "batched replications require the uniform scheduler"
                )
        if lighten_rows is not None:
            if not self._batched:
                raise ValueError(
                    "lighten_rows requires batched (R, n) mode"
                )
            table = xp.asarray(lighten_rows, dtype=dt.float64)
            expected = (self._colours.shape[0], self._k)
            if table.shape != expected:
                raise ValueError(
                    f"lighten_rows must have shape {expected}, "
                    f"got {table.shape}"
                )
            if bool((table < 0.0).any()) or bool((table > 1.0).any()):
                raise ValueError(
                    "lighten probabilities must be in [0, 1]"
                )
            if not hasattr(self._kernel, "set_row_lighten"):
                raise ValueError(
                    "per-row lighten tables are only supported by the "
                    "Diversification kernel"
                )
            self._kernel.set_row_lighten(table)
        self.rng = make_rng(rng)
        self._time = 0
        self.changes = 0
        self._arity = int(protocol.arity)
        self._ncoins = int(self._kernel.coins)
        self._batch_block = (
            max(1, _BATCH_DRAWS // colours.shape[0])
            if self._batched
            else _BLOCK
        )
        self._buf_pos = self._batch_block  # empty; first run() refills
        # Live (k,) count tables are maintained only while observers
        # need per-change snapshots; otherwise counts are recomputed on
        # demand with one bincount.
        # repro-lint: disable=RL301 -- pure cache; restore() invalidates it, rebuilt on first query
        self._live_counts: dict | None = None
        self._population_view = (
            None if self._batched else ArrayPopulationView(self)
        )

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n(self) -> int:
        """Number of agents (per replication, in batched mode)."""
        return self._n

    @property
    def k(self) -> int:
        """Number of colour slots (fixed for the engine's lifetime)."""
        return self._k

    @property
    def backend(self) -> Backend:
        """The resolved array backend this engine computes with."""
        return self._backend

    @property
    def replications(self) -> int:
        """Number of fused replications (1 in single-run mode)."""
        return self._colours.shape[0] if self._batched else 1

    @property
    def time(self) -> int:
        """Executed time-steps (shared by all replications)."""
        return self._time

    @property
    def population(self) -> ArrayPopulationView:
        """Population facade (single-run mode only)."""
        if self._population_view is None:
            raise ValueError(
                "batched runs have no single population view; use the "
                "(R, k) count matrices"
            )
        return self._population_view

    def add_observer(self, observer: Observer) -> None:
        """Attach an observer before (or between) runs."""
        if self._batched:
            raise ValueError(
                "observers are only supported in single-run mode"
            )
        self.observers.append(observer)

    def colour_counts(self):
        """``C_i`` per colour — ``(k,)``, or ``(R, k)`` batched."""
        if self._live_counts is not None:
            return self._live_counts["colour"].copy()
        return self._bincount(None)

    def dark_counts(self):
        """``A_i`` (shade > 0) — ``(k,)``, or ``(R, k)`` batched."""
        if self._live_counts is not None:
            return self._live_counts["dark"].copy()
        return self._bincount(self._shades > LIGHT)

    def light_counts(self):
        """``a_i`` (shade == 0) — ``(k,)``, or ``(R, k)`` batched."""
        if self._live_counts is not None:
            return self._live_counts["light"].copy()
        return self._bincount(self._shades == LIGHT)

    def _bincount(self, mask):
        xp = self._backend.xp
        k = self._k
        if not self._batched:
            data = self._colours if mask is None else self._colours[mask]
            return xp.bincount(data, minlength=k)
        rows = self._colours.shape[0]
        keys = self._colours + (xp.arange(rows) * k)[:, None]
        data = keys.ravel() if mask is None else keys[mask]
        return xp.bincount(data, minlength=rows * k).reshape(rows, k)

    # ------------------------------------------------------------------
    # Adversary support (between, never during, ``run`` calls)

    def add_agents(self, colour: int, count: int, dark: bool = True) -> None:
        """Inject ``count`` fresh agents of an existing colour (into
        every replication, in batched mode).

        Growth discards the draw buffer — partner draws are relative to
        the population size — which re-anchors the stream exactly like
        the scalar engine's refill-on-growth; it requires the complete
        graph because CSR adjacency cannot grow.
        """
        if not 0 <= colour < self._k:
            raise ValueError(f"unknown colour {colour}")
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        if not self._complete:
            raise ValueError(
                "population growth requires the complete graph; explicit "
                "topologies cannot gain agents"
            )
        xp = self._backend.xp
        dt = self._backend.dtypes
        shade = DARK if dark else LIGHT
        shape = (
            (self.replications, count) if self._batched else (count,)
        )
        self._colours = xp.concatenate(
            [self._colours, xp.full(shape, colour, dtype=dt.int64)],
            axis=-1,
        )
        self._shades = xp.concatenate(
            [self._shades, xp.full(shape, shade, dtype=dt.int64)],
            axis=-1,
        )
        self._n += count
        self._buf_pos = self._batch_block  # discard stale partner draws
        if self._live_counts is not None:
            counts = self._live_counts
            counts["colour"][colour] += count
            counts["dark" if dark else "light"][colour] += count

    def add_colour(self, weight: float, count: int, dark: bool = True) -> int:
        """Introduce a brand-new colour with ``count`` supporters,
        widening the protocol's weight table (the kernel rebinds its
        per-colour tables from that table on the next run)."""
        weights = getattr(self.protocol, "weights", None)
        if weights is None:
            raise TypeError(
                f"protocol {self.protocol.name!r} has no weight table"
            )
        if count < 0:  # validate before any widening takes effect
            raise ValueError("count must be non-negative")
        colour = weights.add_colour(weight)
        self._grow_colour_slots(weights.k)
        self._kernel.refresh(self._k)
        self.add_agents(colour, count, dark=dark)
        return colour

    def recolour(self, source: int, target: int) -> None:
        """Repaint every agent of ``source`` colour as ``target``
        (shades kept; batch-wide in batched mode).  Indices are stable,
        so the draw buffer stays valid."""
        if not (0 <= source < self._k and 0 <= target < self._k):
            raise ValueError("source and target must be existing colours")
        if source == target:
            return
        self._colours[self._colours == source] = target
        if self._live_counts is not None:
            self._live_counts = {
                "colour": self._bincount(None),
                "dark": self._bincount(self._shades > LIGHT),
                "light": self._bincount(self._shades == LIGHT),
            }

    def _grow_colour_slots(self, new_k: int) -> None:
        if new_k < self._k:
            raise ValueError("colour slots can only grow")
        xp = self._backend.xp
        extra = new_k - self._k
        self._k = int(new_k)
        if extra and self._live_counts is not None:
            self._live_counts = {
                key: xp.concatenate(
                    [table, xp.zeros(extra, dtype=table.dtype)]
                )
                for key, table in self._live_counts.items()
            }

    # ------------------------------------------------------------------
    # Stepping

    def step(self) -> bool:
        """Execute one time-step; returns True if a state changed.

        Trajectory-equivalent to ``run(1)`` (same draws), but — like
        the scalar engine — does not fire the observers'
        ``on_start``/``on_end`` lifecycle hooks, which frame whole
        ``run`` calls.
        """
        before = self.changes
        self._prepare()
        if self._batched:
            self._run_batched(1)
        else:
            self._run_single(1)
        return self.changes > before

    def run(self, steps: int) -> "ArraySimulation":
        """Execute ``steps`` time-steps; returns self for chaining."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self._prepare()
        for observer in self.observers:
            observer.on_start(self)
        if self._batched:
            self._run_batched(steps)
        else:
            self._run_single(steps)
        for observer in self.observers:
            observer.on_end(self)
        return self

    def _prepare(self) -> None:
        self._kernel.refresh(self._k)
        if self.observers and self._live_counts is None:
            self._live_counts = {
                "colour": self._bincount(None),
                "dark": self._bincount(self._shades > LIGHT),
                "light": self._bincount(self._shades == LIGHT),
            }

    # ------------------------------------------------------------------
    # Single-run mode: conflict-free segments

    def _run_single(self, steps: int) -> None:
        remaining = steps
        while remaining > 0:
            if self._buf_pos >= _BLOCK:
                self._refill_single()
            take = min(remaining, _BLOCK - self._buf_pos)
            self._process_slice(self._buf_pos, self._buf_pos + take)
            self._buf_pos += take
            remaining -= take

    def _refill_single(self) -> None:
        """Draw a full block of steps and precompute its conflict map."""
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        n = self._n
        rng = self.rng
        initiators = xp.asarray(
            self.scheduler.draw_block(n, _BLOCK, rng), dtype=dt.int64
        )
        partner_uniforms = bk.uniform_block(rng, (_BLOCK, self._arity))
        if self._ncoins:
            self._buf_coins = bk.uniform_block(rng, (_BLOCK, self._ncoins))
        else:
            self._buf_coins = xp.zeros((_BLOCK, 0), dtype=dt.float64)
        if self._complete:
            draw = xp.astype(partner_uniforms * (n - 1), dt.int64)
            partners = draw + (draw >= initiators[:, None])
        else:
            degrees = (
                self._offsets[initiators + 1] - self._offsets[initiators]
            )
            local = xp.astype(partner_uniforms * degrees[:, None], dt.int64)
            partners = self._targets[
                self._offsets[initiators][:, None] + local
            ]
        self._buf_init = initiators
        self._buf_partners = partners
        self._buf_pos = 0
        self._buf_runmax = _conflict_runmax(initiators, partners, xp=xp)

    def _process_slice(self, lo: int, hi: int) -> None:
        """Apply buffered steps ``[lo, hi)`` in conflict-free segments."""
        xp = self._backend.xp
        initiators = self._buf_init
        partners = self._buf_partners
        coins = self._buf_coins
        runmax = self._buf_runmax
        colours = self._colours
        shades = self._shades
        kernel = self._kernel
        start = lo
        while start < hi:
            end = min(
                hi, int(xp.searchsorted(runmax, start, side="left"))
            )
            u = initiators[start:end]
            v = partners[start:end]
            uc = colours[u]
            us = shades[u]
            new_c, new_s = kernel.apply(
                uc, us, colours[v], shades[v], coins[start:end]
            )
            changed = (new_c != uc) | (new_s != us)
            if self.observers:
                self._apply_observed(
                    end - start, u, uc, us, new_c, new_s, changed
                )
            else:
                targets = u[changed]
                colours[targets] = new_c[changed]
                shades[targets] = new_s[changed]
                self.changes += int(xp.count_nonzero(changed))
                self._time += end - start
            start = end

    def _apply_observed(
        self, length, u, uc, us, new_c, new_s, changed
    ) -> None:
        """Apply a segment change-by-change so observers see exact
        mid-trajectory state (the vectorised kernel already fixed the
        outcomes; conflict-freedom makes sequential replay exact)."""
        xp = self._backend.xp
        base = self._time
        counts = self._live_counts
        for j in xp.flatnonzero(changed):
            j = int(j)
            agent = int(u[j])
            old = AgentState(int(uc[j]), int(us[j]))
            new = AgentState(int(new_c[j]), int(new_s[j]))
            self._time = base + j + 1
            self._colours[agent] = new.colour
            self._shades[agent] = new.shade
            counts["colour"][old.colour] -= 1
            counts["colour"][new.colour] += 1
            counts["dark" if old.shade > LIGHT else "light"][
                old.colour
            ] -= 1
            counts["dark" if new.shade > LIGHT else "light"][
                new.colour
            ] += 1
            self.changes += 1
            for observer in self.observers:
                observer.on_change(self, agent, old, new)
        self._time = base + length

    # ------------------------------------------------------------------
    # Batched mode: one step for all replications per iteration

    def _run_batched(self, steps: int) -> None:
        xp = self._backend.xp
        remaining = steps
        rows = xp.arange(self._colours.shape[0])
        while remaining > 0:
            if self._buf_pos >= self._batch_block:
                self._refill_batched()
            take = min(remaining, self._batch_block - self._buf_pos)
            start = self._buf_pos
            for t in range(start, start + take):
                self._step_batched(rows, t)
            self._buf_pos += take
            remaining -= take

    def _refill_batched(self) -> None:
        bk = self._backend
        xp = bk.xp
        dt = bk.dtypes
        n = self._n
        rng = self.rng
        block = self._batch_block
        r = self._colours.shape[0]
        initiators = xp.asarray(
            self.scheduler.draw_block(n, block * r, rng), dtype=dt.int64
        ).reshape(block, r)
        partner_uniforms = bk.uniform_block(rng, (block, r, self._arity))
        if self._ncoins:
            self._buf_coins = bk.uniform_block(
                rng, (block, r, self._ncoins)
            )
        else:
            self._buf_coins = xp.zeros((block, r, 0), dtype=dt.float64)
        if self._complete:
            draw = xp.astype(partner_uniforms * (n - 1), dt.int64)
            partners = draw + (draw >= initiators[..., None])
        else:
            degrees = (
                self._offsets[initiators + 1] - self._offsets[initiators]
            )
            local = xp.astype(
                partner_uniforms * degrees[..., None], dt.int64
            )
            partners = self._targets[
                self._offsets[initiators][..., None] + local
            ]
        self._buf_init = initiators
        self._buf_partners = partners
        self._buf_pos = 0

    def _step_batched(self, rows, t: int) -> None:
        xp = self._backend.xp
        colours = self._colours
        shades = self._shades
        u = self._buf_init[t]
        v = self._buf_partners[t]
        uc = colours[rows, u]
        us = shades[rows, u]
        new_c, new_s = self._kernel.apply(
            uc,
            us,
            colours[rows[:, None], v],
            shades[rows[:, None], v],
            self._buf_coins[t],
        )
        changed = (new_c != uc) | (new_s != us)
        target_rows = rows[changed]
        target_cols = u[changed]
        colours[target_rows, target_cols] = new_c[changed]
        shades[target_rows, target_cols] = new_s[changed]
        self.changes += int(xp.count_nonzero(changed))
        self._time += 1

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state.

        Captures the state arrays, clocks, the partially consumed draw
        buffer (initiators, partners and coins), scheduler progress,
        the RNG bit-generator state, and the protocol's weight table
        when it has one.  An exhausted buffer is dropped (the next run
        refills at the same stream position either way); the single-run
        conflict map is recomputed on restore, since it is a pure
        function of the buffered draws.  All arrays cross
        ``Backend.to_numpy`` so the payload restores on any backend.
        """
        bk = self._backend
        buffered = (
            hasattr(self, "_buf_init")
            and self._buf_pos < self._batch_block
        )
        weights = getattr(self.protocol, "weights", None)
        fields = {
            "colours": bk.to_numpy(self._colours, copy=True),
            "shades": bk.to_numpy(self._shades, copy=True),
            "k": int(self._k),
            "n": int(self._n),
            "time": int(self._time),
            "changes": int(self.changes),
            "buffered": int(buffered),
            "buf_pos": int(self._buf_pos),
            "scheduler": self.scheduler.state_dict(),
            "rng": ckpt.rng_state(self.rng),
        }
        if buffered:
            fields["buf_init"] = bk.to_numpy(self._buf_init, copy=True)
            fields["buf_partners"] = bk.to_numpy(
                self._buf_partners, copy=True
            )
            fields["buf_coins"] = bk.to_numpy(self._buf_coins, copy=True)
        if isinstance(weights, WeightTable):
            fields["weights"] = weights.as_array()
        return ckpt.payload("ArraySimulation", **fields)

    def restore(self, data: dict) -> "ArraySimulation":
        """Restore a :meth:`snapshot` payload in place."""
        ckpt.check(data, "ArraySimulation")
        bk = self._backend
        weights = getattr(self.protocol, "weights", None)
        if isinstance(weights, WeightTable) and "weights" in data:
            ckpt.restore_weight_table(weights, data["weights"])
        colours = ckpt.as_array(data["colours"], INT64)
        shades = ckpt.as_array(data["shades"], INT64)
        if colours.ndim != self._colours.ndim or colours.shape != shades.shape:
            raise ValueError(
                f"state shape {colours.shape} does not match the "
                f"engine's mode (expected {self._colours.ndim}-D)"
            )
        if self._batched and colours.shape[0] != self.replications:
            raise ValueError(
                f"checkpoint has {colours.shape[0]} replications but "
                f"the engine has {self.replications}"
            )
        if not self._complete and colours.shape[-1] != self._n:
            raise ValueError(
                "checkpoint population size does not match the topology"
            )
        self._grow_colour_slots(ckpt.as_int(data["k"]))
        self._colours = bk.from_host(colours)
        self._shades = bk.from_host(shades)
        self._n = ckpt.as_int(data["n"])
        self._time = ckpt.as_int(data["time"])
        self.changes = ckpt.as_int(data["changes"])
        self._buf_pos = ckpt.as_int(data["buf_pos"])
        if ckpt.as_int(data["buffered"]):
            self._buf_init = bk.from_host(
                ckpt.as_array(data["buf_init"], INT64)
            )
            self._buf_partners = bk.from_host(
                ckpt.as_array(data["buf_partners"], INT64)
            )
            self._buf_coins = bk.from_host(
                ckpt.as_array(data["buf_coins"], FLOAT64)
            )
            if not self._batched:
                self._buf_runmax = _conflict_runmax(
                    self._buf_init, self._buf_partners, xp=bk.xp
                )
        else:
            self._buf_pos = max(self._buf_pos, self._batch_block)
        # Live counts are rebuilt lazily by _prepare() when observers
        # need them.
        self._live_counts = None
        self.scheduler.load_state(data["scheduler"])
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"R={self.replications}, " if self._batched else ""
        return (
            f"ArraySimulation(protocol={self.protocol.name!r}, {mode}"
            f"n={self.n}, k={self.k}, t={self.time})"
        )


def _conflict_runmax(initiators, partners, xp=None):
    """Running maximum of each step's latest read-write conflict.

    For every step ``t`` of a drawn block, ``maxprev[t]`` is the latest
    earlier step whose *initiator* is read by step ``t`` (as its own
    initiator or any sampled partner), or -1.  A segment ``[s, e)`` is
    conflict-free iff ``maxprev[t] < s`` for all ``t`` in it; since
    ``maxprev[t] < t`` the running maximum is the segmentation oracle:
    the segment starting at ``s`` extends to the first ``t`` with
    ``runmax[t] >= s`` (found by binary search — the running max is
    non-decreasing).

    The latest-write lookup is one sorted search: writes are encoded as
    ``agent * B + step`` (unique, sorted), each read ``(agent, t)``
    queries the largest write key strictly below ``agent * B + t``.

    ``xp`` is the (NumPy-compatible) namespace holding the buffers; the
    ufunc-style ``maximum.accumulate`` keeps this helper on the
    engine-loop side of the backend gate.
    """
    if xp is None:
        xp = HOST.xp
    block = initiators.shape[0]
    steps = xp.arange(block, dtype=INT64)
    write_keys = xp.sort(initiators * block + steps)
    reads = xp.concatenate([initiators[:, None], partners], axis=1)
    queries = (reads * block + steps[:, None]).ravel()
    position = xp.searchsorted(write_keys, queries, side="left") - 1
    candidate = write_keys[xp.maximum(position, 0)]
    hit = (position >= 0) & (candidate // block == reads.ravel())
    prev = xp.where(hit, candidate % block, -1)
    maxprev = prev.reshape(block, -1).max(axis=1)
    return xp.maximum.accumulate(maxprev)
