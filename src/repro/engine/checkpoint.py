"""Versioned, pickle-free engine checkpoint payloads (``repro-ckpt/v1``).

Every engine exposes ``snapshot() -> dict`` and ``restore(payload)``
built from the helpers here.  A payload is a plain tree of JSON-able
scalars and NumPy arrays — *no pickled objects* — so checkpoints can be
persisted with :func:`repro.experiments.export.save_checkpoint`
(JSON + NPZ), inspected by hand, and loaded across process boundaries
without trusting the file's code.

The contract backed by these payloads (and enforced by
``tests/property/test_checkpoint_invariance.py``) is *split
invariance*: for any split point,

    ``run(a); snapshot(); ...; restore(); run(b)``

is bit-identical to the uninterrupted ``run(a + b)`` — trajectories,
tables and subsequent RNG draws all match exactly.  Two ingredients
make that possible:

* the payload captures *all* run-relevant mutable state, including the
  RNG bit-generator state (:func:`rng_state`), buffered-but-unconsumed
  draws, per-row stream pools (:mod:`repro.engine.streams`) and pending
  event arrivals (the event-driven engines carry an overshooting
  geometric jump across ``run`` calls instead of discarding it);
* ``restore`` rebuilds that state *in place* on a compatibly
  constructed engine, so nothing about the downstream draw sequence
  depends on whether a checkpoint happened.

Payloads are host-side by contract: engines running on a device backend
cross ``Backend.to_numpy`` before assembling a payload and
``Backend.from_host`` after :func:`as_array`, so a checkpoint taken on
one backend restores on any other.
"""

from __future__ import annotations

from .backend import HOST, Generator

np = HOST.xp  # host namespace: payloads always serialise as NumPy so
              # ``repro-ckpt/v1`` stays portable across array backends

#: Payload format tag; bump on incompatible layout changes.
CKPT_FORMAT = "repro-ckpt/v1"


def payload(engine: str, **fields) -> dict:
    """Assemble a ``repro-ckpt/v1`` payload for ``engine``."""
    out = {"format": CKPT_FORMAT, "engine": engine}
    out.update(fields)
    return out


def check(data: dict, engine: str) -> dict:
    """Validate a payload's format tag and engine name; returns it."""
    if not isinstance(data, dict):
        raise TypeError("checkpoint payload must be a dict")
    fmt = data.get("format")
    if fmt != CKPT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {fmt!r} "
            f"(expected {CKPT_FORMAT!r})"
        )
    found = data.get("engine")
    if found != engine:
        raise ValueError(
            f"checkpoint was taken from engine {found!r}, "
            f"cannot restore into {engine!r}"
        )
    return data


# ----------------------------------------------------------------------
# RNG bit-generator state


def rng_state(rng: Generator) -> dict:
    """JSON-able snapshot of a generator's bit-generator state.

    NumPy's ``bit_generator.state`` is already a plain dict of strings
    and (arbitrary-precision) integers for the PCG64 family; SFC64 and
    Philox carry their counters as uint64 arrays, which are converted
    to lists so the payload stays pickle-free.
    """
    return _plain_state(rng.bit_generator.state)


def set_rng_state(rng: Generator, state: dict) -> None:
    """Restore a generator's bit-generator state in place."""
    name = state.get("bit_generator")
    if name != type(rng.bit_generator).__name__:
        raise ValueError(
            f"checkpoint holds {name!r} state but the engine uses "
            f"{type(rng.bit_generator).__name__!r}"
        )
    rng.bit_generator.state = state


def restore_rng(state: dict) -> Generator:
    """Build a fresh generator from a :func:`rng_state` snapshot."""
    name = state.get("bit_generator")
    factory = getattr(np.random, str(name), None)
    if factory is None:
        raise ValueError(f"unknown bit generator {name!r}")
    bit_generator = factory()
    bit_generator.state = state
    return Generator(bit_generator)


def _plain_state(value):
    if isinstance(value, dict):
        return {key: _plain_state(entry) for key, entry in value.items()}
    if isinstance(value, np.ndarray):
        return [int(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    return value


# ----------------------------------------------------------------------
# Array/scalar coercion for restore paths


def as_array(value, dtype):
    """Coerce a payload field back to a fresh NumPy array of ``dtype``.

    Always copies: restore paths assign the result to engine state
    that later runs mutate in place, and aliasing the payload would
    silently corrupt it for a second ``restore``.
    """
    return np.array(value, dtype=dtype)


def as_int(value) -> int:
    return int(value)


def restore_weight_table(table, values) -> None:
    """Re-grow a :class:`~repro.core.weights.WeightTable` to match the
    snapshotted weights.

    Colour addition is the only legal mutation of a weight table, so a
    checkpoint taken after adversarial ``add_colour`` interventions may
    hold *more* colours than a freshly constructed engine.  The shared
    prefix must agree exactly; extra snapshotted colours are appended.
    """
    values = [float(v) for v in values]
    if len(values) < table.k:
        raise ValueError(
            f"checkpoint has {len(values)} colours but the engine's "
            f"weight table already has {table.k}"
        )
    current = [table.weight(i) for i in range(table.k)]
    if current != values[: table.k]:
        raise ValueError(
            "checkpoint weights disagree with the engine's weight table"
        )
    for weight in values[table.k:]:
        table.add_colour(weight)
