"""Mutable population container with incremental count maintenance.

The container stores one :class:`~repro.core.state.AgentState` per agent
(as parallel colour/shade lists for speed) and maintains the aggregate
statistics the analysis needs — per-colour totals ``C_i``, dark counts
``A_i`` (shade > 0) and light counts ``a_i`` (shade == 0) — updated in
O(1) per state change.  Agents may be *added* at run time (the paper's
adversary model); they are never removed.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..core.protocol import Protocol
from ..core.state import AgentState
from .backend import HOST, INT64

np = HOST.xp  # host namespace: the scalar container is CPU-resident


class Population:
    """A growable collection of agents with live aggregate counts."""

    def __init__(self, states: Iterable[AgentState], k: int | None = None):
        states = list(states)
        if not states:
            raise ValueError("population must contain at least one agent")
        self._colours: list[int] = [s.colour for s in states]
        self._shades: list[int] = [s.shade for s in states]
        observed_k = max(self._colours) + 1
        if k is None:
            k = observed_k
        elif k < observed_k:
            raise ValueError(f"k={k} smaller than max colour {observed_k - 1}")
        self._k = k
        self._colour_counts = [0] * k
        self._dark_counts = [0] * k
        self._light_counts = [0] * k
        for colour, shade in zip(self._colours, self._shades):
            self._colour_counts[colour] += 1
            if shade > 0:
                self._dark_counts[colour] += 1
            else:
                self._light_counts[colour] += 1

    @classmethod
    def from_colours(
        cls,
        colours: Sequence[int],
        protocol: Protocol,
        k: int | None = None,
    ) -> "Population":
        """Build a population whose agents start in the protocol's
        initial state for the given colours."""
        return cls([protocol.initial_state(c) for c in colours], k=k)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n(self) -> int:
        """Number of agents."""
        return len(self._colours)

    @property
    def k(self) -> int:
        """Number of colour slots (grows when colours are added)."""
        return self._k

    def state_of(self, agent: int) -> AgentState:
        """Current state of one agent."""
        return AgentState(self._colours[agent], self._shades[agent])

    def colour_of(self, agent: int) -> int:
        """Current colour of one agent."""
        return self._colours[agent]

    def shade_of(self, agent: int) -> int:
        """Current shade of one agent."""
        return self._shades[agent]

    def states(self) -> list[AgentState]:
        """Snapshot of all agent states (new list)."""
        return [
            AgentState(c, s) for c, s in zip(self._colours, self._shades)
        ]

    def colour_counts(self):
        """``C_i``: agents per colour, shape ``(k,)``."""
        return np.asarray(self._colour_counts, dtype=INT64)

    def dark_counts(self):
        """``A_i``: committed (shade > 0) agents per colour."""
        return np.asarray(self._dark_counts, dtype=INT64)

    def light_counts(self):
        """``a_i``: open (shade == 0) agents per colour."""
        return np.asarray(self._light_counts, dtype=INT64)

    def colours_view(self) -> Sequence[int]:
        """Read-only view of the internal colour list (do not mutate)."""
        return self._colours

    def shades_view(self) -> Sequence[int]:
        """Read-only view of the internal shade list (do not mutate)."""
        return self._shades

    # ------------------------------------------------------------------
    # Mutation

    def set_state(self, agent: int, new_state: AgentState) -> AgentState:
        """Replace an agent's state; returns the previous state."""
        if new_state.colour >= self._k:
            self._grow_colours(new_state.colour + 1)
        old_colour = self._colours[agent]
        old_shade = self._shades[agent]
        old = AgentState(old_colour, old_shade)
        self._bump_counts(old_colour, old_shade, -1)
        self._colours[agent] = new_state.colour
        self._shades[agent] = new_state.shade
        self._bump_counts(new_state.colour, new_state.shade, +1)
        return old

    def add_agent(self, state: AgentState) -> int:
        """Append a new agent; returns its index."""
        if state.colour >= self._k:
            self._grow_colours(state.colour + 1)
        self._colours.append(state.colour)
        self._shades.append(state.shade)
        self._bump_counts(state.colour, state.shade, +1)
        return len(self._colours) - 1

    def restore_states(
        self, colours: Sequence[int], shades: Sequence[int], k: int
    ) -> None:
        """Bulk-replace all agent states (checkpoint restore path).

        Rewrites the parallel colour/shade lists and recomputes the
        aggregate counts from scratch.  Agents are never removed, so the
        restored population must be at least as large as the current
        one; ``k`` may only grow.
        """
        colours = [int(c) for c in colours]
        shades = [int(s) for s in shades]
        if len(colours) != len(shades):
            raise ValueError("colour and shade lists must match in length")
        if len(colours) < self.n:
            raise ValueError(
                f"cannot shrink the population ({self.n} -> {len(colours)})"
            )
        k = int(k)
        if k < self._k or (colours and max(colours) >= k):
            raise ValueError(f"k={k} is inconsistent with the states")
        if any(c < 0 for c in colours) or any(s < 0 for s in shades):
            raise ValueError("colours and shades must be non-negative")
        self._colours = colours
        self._shades = shades
        self._k = k
        self._colour_counts = [0] * k
        self._dark_counts = [0] * k
        self._light_counts = [0] * k
        for colour, shade in zip(colours, shades):
            self._bump_counts(colour, shade, +1)

    def _grow_colours(self, new_k: int) -> None:
        extra = new_k - self._k
        self._colour_counts.extend([0] * extra)
        self._dark_counts.extend([0] * extra)
        self._light_counts.extend([0] * extra)
        self._k = new_k

    def _bump_counts(self, colour: int, shade: int, delta: int) -> None:
        self._colour_counts[colour] += delta
        if shade > 0:
            self._dark_counts[colour] += delta
        else:
            self._light_counts[colour] += delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Population(n={self.n}, k={self.k})"
