"""Reproducible randomness utilities.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  These helpers centralise construction
and deterministic splitting so that experiments are reproducible from a
single integer seed.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Build a generator from a seed, pass through an existing generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent children."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def seed_stream(base_seed: int) -> Iterator[int]:
    """Infinite deterministic stream of distinct 63-bit seeds."""
    sequence = np.random.SeedSequence(base_seed)
    while True:
        (child,) = sequence.spawn(1)
        yield int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        sequence = child
