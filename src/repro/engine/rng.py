"""Reproducible randomness utilities.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  These helpers centralise construction
and deterministic splitting so that experiments are reproducible from a
single integer seed.

Randomness is host-resident by design: even when an engine computes on
a device backend, its draws originate from these CPU generators (see
:mod:`repro.engine.backend`), so the seed-to-trajectory mapping is the
same on every backend.
"""

from __future__ import annotations

from collections.abc import Iterator

from .backend import UINT64, Generator, SeedSequence, default_rng


def make_rng(seed: int | Generator | None = None) -> Generator:
    """Build a generator from a seed, pass through an existing generator."""
    if isinstance(seed, Generator):
        return seed
    return default_rng(seed)


def spawn(rng: Generator, count: int) -> list[Generator]:
    """Split ``rng`` into ``count`` statistically independent children."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def spawn_sequences(
    seed: int | SeedSequence | None, count: int
) -> list[SeedSequence]:
    """``count`` child seed sequences of ``seed``, derived statelessly.

    Unlike :func:`spawn`, which advances the parent generator's spawn
    counter, this derives the children from a *fresh*
    :class:`~numpy.random.SeedSequence`, so the mapping from
    ``(seed, index)`` to a child is pure and prefix-stable:
    ``spawn_sequences(s, m)[:j] == spawn_sequences(s, n)[:j]`` for any
    ``j <= min(m, n)``.  The first ``count`` children equal those of
    ``spawn(make_rng(seed), count)``, so pipelines that shard a legacy
    seed loop reproduce its replication streams exactly.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, SeedSequence):
        # Copy so the caller's sequence keeps its own spawn counter.
        sequence = SeedSequence(
            entropy=seed.entropy,
            spawn_key=seed.spawn_key,
            pool_size=seed.pool_size,
        )
    else:
        sequence = SeedSequence(seed)
    return sequence.spawn(count)


def seed_stream(base_seed: int) -> Iterator[int]:
    """Infinite deterministic stream of distinct 63-bit seeds."""
    sequence = SeedSequence(base_seed)
    while True:
        (child,) = sequence.spawn(1)
        yield int(child.generate_state(1, dtype=UINT64)[0] >> 1)
        sequence = child
