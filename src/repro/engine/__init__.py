"""Simulation engines.

* :class:`Simulation` — scalar agent-level reference engine (any
  topology, any protocol, interventions, observers);
* :class:`ArraySimulation` — vectorised agent-level engine
  (structure-of-arrays state, conflict-free transition kernels, an
  optional batched ``(R, n)`` replication axis) for protocols with a
  registered kernel;
* :class:`AggregateSimulation` — count-based engine (complete graph,
  Diversification family);
* :class:`BatchedAggregateSimulation` — R aggregate replications as one
  ``(R, 2k)`` count matrix;
* :class:`HeterogeneousAggregateBatch` — B rows with *different* weight
  tables, populations and horizons (padded ``(B, k_max)`` state) in one
  event loop, the engine behind mega-batched scenario sweeps.
"""

from . import checkpoint
from .aggregate import AggregateSimulation
from .backend import (
    Backend,
    available_backends,
    require_engine_loops,
    resolve_backend,
)
from .array_engine import (
    ArrayPopulationView,
    ArraySimulation,
    has_kernel,
    kernel_for,
    supports_topology,
)
from .batched import BatchedAggregateSimulation
from .hetero import HeterogeneousAggregateBatch
from .multishade import MultiShadeAggregate
from .observers import (
    ConvergenceDetector,
    MinCountTracker,
    Observer,
    OccupancyTracker,
)
from .population import Population
from .rng import make_rng, seed_stream, spawn
from .scheduler import RoundRobinScheduler, Scheduler, UniformScheduler
from .simulator import Simulation
from .streams import RowStreams, geometric_from_uniform

__all__ = [
    "AggregateSimulation",
    "ArrayPopulationView",
    "ArraySimulation",
    "BatchedAggregateSimulation",
    "HeterogeneousAggregateBatch",
    "MultiShadeAggregate",
    "Simulation",
    "Population",
    "has_kernel",
    "kernel_for",
    "supports_topology",
    "Observer",
    "OccupancyTracker",
    "MinCountTracker",
    "ConvergenceDetector",
    "Scheduler",
    "UniformScheduler",
    "RoundRobinScheduler",
    "make_rng",
    "spawn",
    "seed_stream",
    "checkpoint",
    "RowStreams",
    "geometric_from_uniform",
    "Backend",
    "available_backends",
    "require_engine_loops",
    "resolve_backend",
]
