"""Simulation engines: agent-level (any topology, any protocol),
aggregate count-based (complete graph, Diversification family), and the
batched aggregate engine (R replications as one count matrix)."""

from .aggregate import AggregateSimulation
from .batched import BatchedAggregateSimulation
from .multishade import MultiShadeAggregate
from .observers import (
    ConvergenceDetector,
    MinCountTracker,
    Observer,
    OccupancyTracker,
)
from .population import Population
from .rng import make_rng, seed_stream, spawn
from .scheduler import RoundRobinScheduler, Scheduler, UniformScheduler
from .simulator import Simulation

__all__ = [
    "AggregateSimulation",
    "BatchedAggregateSimulation",
    "MultiShadeAggregate",
    "Simulation",
    "Population",
    "Observer",
    "OccupancyTracker",
    "MinCountTracker",
    "ConvergenceDetector",
    "Scheduler",
    "UniformScheduler",
    "RoundRobinScheduler",
    "make_rng",
    "spawn",
    "seed_stream",
]
