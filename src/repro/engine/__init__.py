"""Simulation engines: agent-level (any topology, any protocol) and
aggregate count-based (complete graph, Diversification family)."""

from .aggregate import AggregateSimulation
from .multishade import MultiShadeAggregate
from .observers import (
    ConvergenceDetector,
    MinCountTracker,
    Observer,
    OccupancyTracker,
)
from .population import Population
from .rng import make_rng, seed_stream, spawn
from .scheduler import RoundRobinScheduler, Scheduler, UniformScheduler
from .simulator import Simulation

__all__ = [
    "AggregateSimulation",
    "MultiShadeAggregate",
    "Simulation",
    "Population",
    "Observer",
    "OccupancyTracker",
    "MinCountTracker",
    "ConvergenceDetector",
    "Scheduler",
    "UniformScheduler",
    "RoundRobinScheduler",
    "make_rng",
    "spawn",
    "seed_stream",
]
