"""Observers: change-driven instrumentation for the agent-level engine.

The simulator notifies observers only when an agent actually changes
state, so instrumentation stays O(changes) rather than O(steps).
Snapshot-style recording at fixed intervals is handled separately by
:class:`repro.experiments.recorder.CountRecorder`.
"""

from __future__ import annotations

from ..core.state import AgentState
from ..core.weights import WeightTable
from .backend import FLOAT64, HOST, INT64

np = HOST.xp  # host namespace: observers instrument the scalar engine


class Observer:
    """Base class; subclasses override the hooks they need."""

    def on_start(self, simulation) -> None:
        """Called once before the first step."""

    def on_change(
        self,
        simulation,
        agent: int,
        old: AgentState,
        new: AgentState,
    ) -> None:
        """Called after an agent's state changed (old != new)."""

    def on_end(self, simulation) -> None:
        """Called when a run() invocation finishes."""

    def state_dict(self) -> dict:
        """JSON-able/array progress for engine checkpoints.

        Observers that accumulate across ``run`` calls override this
        (and :meth:`load_state`) so checkpoint/resume reproduces the
        uninterrupted instrumentation exactly.  Stateless observers
        need not override.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but the checkpoint "
                f"carries state {state!r}"
            )


class OccupancyTracker(Observer):
    """Accumulates, per agent, time spent in each (colour, dark/light)
    cell — the raw material of the fairness property (Def 1.1(2)).

    Time is measured in simulator time-steps.  The tracker handles
    populations and colour sets that grow mid-run.
    """

    def __init__(self):
        self._occupancy = None  # (n, k, 2) float64
        self._last_change = None  # (n,) int64
        self._start_time = 0

    def on_start(self, simulation) -> None:
        n, k = simulation.population.n, simulation.population.k
        if self._occupancy is None:
            self._occupancy = np.zeros((n, k, 2), dtype=FLOAT64)
            self._last_change = np.full(n, simulation.time, dtype=INT64)
            self._start_time = simulation.time
        else:
            self._ensure_capacity(n, k)

    def on_change(self, simulation, agent, old, new) -> None:
        self._ensure_capacity(
            simulation.population.n, simulation.population.k
        )
        now = simulation.time
        elapsed = now - self._last_change[agent]
        shade_cell = 1 if old.shade > 0 else 0
        self._occupancy[agent, old.colour, shade_cell] += elapsed
        self._last_change[agent] = now

    def on_end(self, simulation) -> None:
        self.flush(simulation)

    def flush(self, simulation) -> None:
        """Credit all agents up to the current simulator time."""
        self._ensure_capacity(
            simulation.population.n, simulation.population.k
        )
        now = simulation.time
        colours = simulation.population.colours_view()
        shades = simulation.population.shades_view()
        for agent in range(simulation.population.n):
            elapsed = now - self._last_change[agent]
            if elapsed > 0:
                cell = 1 if shades[agent] > 0 else 0
                self._occupancy[agent, colours[agent], cell] += elapsed
                self._last_change[agent] = now

    def _ensure_capacity(self, n: int, k: int) -> None:
        rows, cols, _ = self._occupancy.shape
        if n > rows or k > cols:
            grown = np.zeros((max(n, rows), max(k, cols), 2), dtype=FLOAT64)
            grown[:rows, :cols, :] = self._occupancy
            self._occupancy = grown
            if n > rows:
                last = np.full(n, 0, dtype=INT64)
                last[:rows] = self._last_change
                # New agents start accumulating from their insertion time;
                # callers adding agents mid-run should call flush() first.
                last[rows:] = self._last_change.max(initial=self._start_time)
                self._last_change = last

    def state_dict(self) -> dict:
        if self._occupancy is None:
            return {"started": 0}
        return {
            "started": 1,
            "occupancy": self._occupancy.copy(),
            "last_change": self._last_change.copy(),
            "start_time": int(self._start_time),
        }

    def load_state(self, state: dict) -> None:
        if not int(state["started"]):
            self._occupancy = None
            self._last_change = None
            self._start_time = 0
            return
        # np.array (not asarray): the tracker mutates these in place,
        # and aliasing the caller's state dict would corrupt it.
        self._occupancy = np.array(state["occupancy"], dtype=FLOAT64)
        self._last_change = np.array(
            state["last_change"], dtype=INT64
        )
        self._start_time = int(state["start_time"])

    def occupancy_fractions(self):
        """Per-agent colour occupancy fractions, shape ``(n, k)``.

        Rows sum to 1 once at least one time-step has elapsed.
        """
        totals = self._occupancy.sum(axis=2)
        horizons = totals.sum(axis=1, keepdims=True)
        if np.any(horizons <= 0):
            raise ValueError("no elapsed time recorded; call flush() first")
        return totals / horizons

    def shade_occupancy_fractions(self):
        """Per-agent (colour, light/dark) occupancy, shape ``(n, k, 2)``.

        ``[..., 0]`` is light time, ``[..., 1]`` dark time; each agent's
        cells sum to 1.
        """
        horizons = self._occupancy.sum(axis=(1, 2), keepdims=True)
        if np.any(horizons <= 0):
            raise ValueError("no elapsed time recorded; call flush() first")
        return self._occupancy / horizons


class MinCountTracker(Observer):
    """Tracks the minimum per-colour totals and dark counts ever seen —
    a streaming witness for sustainability (Def 1.1(3))."""

    def __init__(self):
        self.min_colour_counts = None
        self.min_dark_counts = None

    def on_start(self, simulation) -> None:
        counts = simulation.population.colour_counts()
        darks = simulation.population.dark_counts()
        if self.min_colour_counts is None:
            self.min_colour_counts = counts.astype(INT64)
            self.min_dark_counts = darks.astype(INT64)
        else:
            self._refresh(simulation)

    def on_change(self, simulation, agent, old, new) -> None:
        self._refresh(simulation)

    def _refresh(self, simulation) -> None:
        counts = simulation.population.colour_counts()
        darks = simulation.population.dark_counts()
        if len(counts) > len(self.min_colour_counts):
            grow = len(counts) - len(self.min_colour_counts)
            self.min_colour_counts = np.concatenate(
                [self.min_colour_counts, counts[-grow:]]
            )
            self.min_dark_counts = np.concatenate(
                [self.min_dark_counts, darks[-grow:]]
            )
        np.minimum(self.min_colour_counts, counts, out=self.min_colour_counts)
        np.minimum(self.min_dark_counts, darks, out=self.min_dark_counts)

    def state_dict(self) -> dict:
        if self.min_colour_counts is None:
            return {"started": 0}
        return {
            "started": 1,
            "min_colour": self.min_colour_counts.copy(),
            "min_dark": self.min_dark_counts.copy(),
        }

    def load_state(self, state: dict) -> None:
        if not int(state["started"]):
            self.min_colour_counts = None
            self.min_dark_counts = None
            return
        self.min_colour_counts = np.array(
            state["min_colour"], dtype=INT64
        )
        self.min_dark_counts = np.array(
            state["min_dark"], dtype=INT64
        )


class ConvergenceDetector(Observer):
    """Records the first time the diversity error drops below a bound.

    The error is recomputed only on state changes, which is exact: the
    error is constant between changes.
    """

    def __init__(self, weights: WeightTable, bound: float):
        self.weights = weights
        self.bound = bound
        self.hit_time: int | None = None

    def on_start(self, simulation) -> None:
        self._check(simulation)

    def on_change(self, simulation, agent, old, new) -> None:
        if self.hit_time is None:
            self._check(simulation)

    def _check(self, simulation) -> None:
        counts = simulation.population.colour_counts()
        shares = counts / counts.sum()
        error = float(np.abs(shares - self.weights.fair_shares()).max())
        if error <= self.bound:
            self.hit_time = simulation.time

    def state_dict(self) -> dict:
        return {
            "hit_time": -1 if self.hit_time is None else int(self.hit_time)
        }

    def load_state(self, state: dict) -> None:
        hit = int(state["hit_time"])
        self.hit_time = None if hit < 0 else hit
