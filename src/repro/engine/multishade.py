"""Aggregate (count-based) simulator for the *derandomised* protocol.

The derandomised Diversification protocol (Sec 1.2) replaces the
``1/w_i`` coin with ``1 + w_i`` shades of grey.  On the complete graph
the configuration is again exchangeable, so the process is fully
described by the counts ``S_i[s]`` of agents holding colour ``i`` at
shade ``s ∈ {0..w_i}``.  Exactly two event types change the counts:

* **decrement** — the scheduled agent has colour ``i`` at shade
  ``s > 0`` and samples *another* positive-shade agent of the same
  colour: ``S_i[s] -= 1, S_i[s-1] += 1``.  Probability
  ``S_i[s] (P_i − 1) / (n (n − 1))`` where ``P_i = Σ_{s≥1} S_i[s]``.
* **adopt** — the scheduled agent has shade 0 (any colour) and samples
  a positive-shade agent of colour ``j``: it joins colour ``j`` at full
  shade ``w_j``.  Probability ``Z · P_j / (n (n − 1))`` with
  ``Z = Σ_i S_i[0]``.

As with :class:`~repro.engine.aggregate.AggregateSimulation`, no-op
steps are skipped in geometrically-distributed jumps, which keeps the
simulation exact in distribution.  Analysing this protocol is an open
problem of the paper (Sec 3); this engine makes the empirical study
(experiment E9) feasible at large ``n``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.weights import WeightTable
from . import checkpoint as ckpt
from .backend import HOST, INT64, Generator
from .rng import make_rng

np = HOST.xp  # host namespace: the scalar shade engine is CPU-resident


class MultiShadeAggregate:
    """Count-based simulator of the derandomised protocol.

    Args:
        weights: Integer weight table.
        colour_counts: Initial number of agents per colour; all agents
            start at full shade ``w_i`` (the protocol's initial state).
        rng: Seed or generator.
    """

    def __init__(
        self,
        weights: WeightTable,
        colour_counts: Sequence[int],
        *,
        rng: int | Generator | None = None,
    ):
        if not weights.is_integer():
            raise ValueError("derandomised protocol requires integer weights")
        if len(colour_counts) != weights.k:
            raise ValueError(
                f"colour_counts must have length k={weights.k}"
            )
        if any(int(c) < 0 for c in colour_counts):
            raise ValueError("counts must be non-negative")
        self.weights = weights
        #: shade_counts[i][s] = agents of colour i at shade s.
        self._shades: list[list[int]] = []
        for colour, count in enumerate(colour_counts):
            full = int(weights.weight(colour))
            row = [0] * (full + 1)
            row[full] = int(count)
            self._shades.append(row)
        self.rng = make_rng(rng)
        self.time = 0
        self._pending: int | None = None
        if self.n < 2:
            raise ValueError("need at least two agents")

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n(self) -> int:
        """Total number of agents."""
        return sum(sum(row) for row in self._shades)

    @property
    def k(self) -> int:
        """Number of colours."""
        return len(self._shades)

    def shade_counts(self, colour: int) -> list[int]:
        """Counts per shade ``0..w_i`` for one colour (copy)."""
        return list(self._shades[colour])

    def colour_counts(self):
        """``C_i`` per colour."""
        return np.asarray(
            [sum(row) for row in self._shades], dtype=INT64
        )

    def dark_counts(self):
        """Positive-shade (committed) agents per colour, ``P_i``."""
        return np.asarray(
            [sum(row[1:]) for row in self._shades], dtype=INT64
        )

    def light_counts(self):
        """Shade-0 (open) agents per colour, ``Z_i``."""
        return np.asarray(
            [row[0] for row in self._shades], dtype=INT64
        )

    # ------------------------------------------------------------------
    # Dynamics

    def _rates(self):
        """Per-event unnormalised rates (scaled by n(n-1)).

        Returns (decrement_terms, positive_totals, adopt_total,
        decrement_total) where decrement_terms[i][s] is the rate of the
        decrement event at (colour i, shade s).
        """
        positive = [sum(row[1:]) for row in self._shades]
        zero_total = sum(row[0] for row in self._shades)
        decrement_terms: list[list[float]] = []
        decrement_total = 0.0
        for colour, row in enumerate(self._shades):
            partner = positive[colour] - 1
            terms = [0.0] * len(row)
            if partner > 0:
                for shade in range(1, len(row)):
                    rate = row[shade] * partner
                    terms[shade] = rate
                    decrement_total += rate
            decrement_terms.append(terms)
        adopt_total = zero_total * sum(positive)
        return decrement_terms, positive, adopt_total, decrement_total

    def step(self) -> bool:
        """One faithful time-step; True if the configuration changed."""
        self._pending = None  # per-step mode re-examines every step
        self.time += 1
        decrement_terms, positive, adopt_total, decrement_total = (
            self._rates()
        )
        denom = self.n * (self.n - 1)
        p_active = (adopt_total + decrement_total) / denom
        if self.rng.random() >= p_active:
            return False
        self._apply_event(
            decrement_terms, positive, adopt_total, decrement_total
        )
        return True

    def run(self, steps: int) -> "MultiShadeAggregate":
        """Advance exactly ``steps`` time-steps using event jumps.

        An arrival drawn past the horizon is kept in ``_pending`` and
        consumed by the next call, so any split of a horizon into
        consecutive ``run`` calls yields the bit-identical trajectory
        (cf. :mod:`repro.engine.aggregate`).
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        horizon = self.time + steps
        rng = self.rng
        while self.time < horizon:
            decrement_terms, positive, adopt_total, decrement_total = (
                self._rates()
            )
            denom = self.n * (self.n - 1)
            p_active = (adopt_total + decrement_total) / denom
            if p_active <= 0.0:
                self.time = horizon
                break
            if self._pending is None:
                gap = int(rng.geometric(min(p_active, 1.0)))
                self._pending = self.time + gap
            if self._pending > horizon:
                self.time = horizon
                break
            self.time = self._pending
            self._pending = None
            self._apply_event(
                decrement_terms, positive, adopt_total, decrement_total
            )
        return self

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state.

        The ragged shade table is flattened into one int64 array plus
        per-colour offsets so the payload stays a dict of plain arrays.
        """
        flat = [count for row in self._shades for count in row]
        offsets = np.zeros(self.k + 1, dtype=INT64)
        for colour, row in enumerate(self._shades):
            offsets[colour + 1] = offsets[colour] + len(row)
        return ckpt.payload(
            "MultiShadeAggregate",
            weights=self.weights.as_array(),
            shades=np.asarray(flat, dtype=INT64),
            offsets=offsets,
            time=int(self.time),
            pending=-1 if self._pending is None else int(self._pending),
            rng=ckpt.rng_state(self.rng),
        )

    def restore(self, data: dict) -> "MultiShadeAggregate":
        """Restore a :meth:`snapshot` payload in place."""
        ckpt.check(data, "MultiShadeAggregate")
        ckpt.restore_weight_table(self.weights, data["weights"])
        flat = ckpt.as_array(data["shades"], INT64)
        offsets = ckpt.as_array(data["offsets"], INT64)
        if offsets.shape != (self.weights.k + 1,):
            raise ValueError("shade offsets do not match the colour count")
        self._shades = [
            [int(c) for c in flat[offsets[i]:offsets[i + 1]]]
            for i in range(self.weights.k)
        ]
        for colour, row in enumerate(self._shades):
            if len(row) != int(self.weights.weight(colour)) + 1:
                raise ValueError(
                    f"colour {colour} shade row length {len(row)} does "
                    f"not match weight {self.weights.weight(colour)}"
                )
        self.time = ckpt.as_int(data["time"])
        pending = ckpt.as_int(data["pending"])
        self._pending = None if pending < 0 else pending
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def _apply_event(
        self, decrement_terms, positive, adopt_total, decrement_total
    ) -> None:
        rng = self.rng
        pick = rng.random() * (adopt_total + decrement_total)
        if pick < adopt_total:
            # Adopt: a shade-0 agent (colour i ∝ Z_i) joins colour j
            # (∝ P_j) at full shade.
            zeros = [row[0] for row in self._shades]
            source = _pick(zeros, rng)
            target = _pick(positive, rng)
            self._shades[source][0] -= 1
            full = int(self.weights.weight(target))
            self._shades[target][full] += 1
        else:
            # Decrement: pick (colour, shade) ∝ term.
            pick -= adopt_total
            acc = 0.0
            for colour, terms in enumerate(decrement_terms):
                for shade in range(1, len(terms)):
                    acc += terms[shade]
                    if pick < acc:
                        self._shades[colour][shade] -= 1
                        self._shades[colour][shade - 1] += 1
                        return
            # Numerical edge: apply to the last positive term.
            for colour in reversed(range(self.k)):
                terms = decrement_terms[colour]
                for shade in reversed(range(1, len(terms))):
                    if terms[shade] > 0:
                        self._shades[colour][shade] -= 1
                        self._shades[colour][shade - 1] += 1
                        return

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiShadeAggregate(n={self.n}, k={self.k}, t={self.time})"


def _pick(masses: Sequence[float], rng: Generator) -> int:
    total = float(sum(masses))
    pick = rng.random() * total
    acc = 0.0
    for index, mass in enumerate(masses):
        acc += mass
        if pick < acc:
            return index
    for index in reversed(range(len(masses))):
        if masses[index] > 0:
            return index
    raise ValueError("cannot sample from all-zero masses")
