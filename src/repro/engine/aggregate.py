"""Aggregate (count-based) simulator for the Diversification protocol.

On the complete graph the configuration process
``ξ(t) = (A_1..A_k, a_1..a_k)`` (dark and light counts per colour,
Sec 2 of the paper) is itself a Markov chain: agent identities are
exchangeable, so the counts can be simulated directly without touching
individual agents.  Per time-step only two event types change the
configuration (cf. the rate sketch in Sec 1.2):

* **adopt** — the scheduled agent is light with colour ``i`` and samples
  a dark agent of colour ``j``:  ``a_i -= 1, A_j += 1``.  Probability
  ``a_i A_j / (n (n - 1))``.
* **lighten** — the scheduled agent is dark with colour ``i``, samples
  another dark agent of the same colour and passes the ``1/w_i`` coin:
  ``A_i -= 1, a_i += 1``.  Probability ``A_i (A_i - 1) / (w_i n (n-1))``.

All other steps are no-ops.  The engine therefore supports an
*event-driven* mode: it draws the geometric number of steps until the
next active event and jumps time forward, which is exact in distribution
and several times faster near equilibrium (the active fraction is about
``2w/(1+w)^2``).

Split invariance.  A drawn arrival that lands beyond the current
horizon is *carried over* (``_pending``) instead of discarded, so the
next ``run`` call consumes it first.  By memorylessness of the
geometric this is distribution-identical to the truncate-and-redraw
rule, but it additionally makes ``run(a); run(b)`` bit-identical to
``run(a + b)`` for any split — the foundation of the
``snapshot()``/``restore()`` checkpoint contract (the pending arrival
is part of the payload).  Interventions change the event rates, so they
drop the pending arrival (the redraw at the new rates is the correct
truncation semantics there).

A per-step mode (:meth:`AggregateSimulation.step`) is kept for the
engine-equivalence tests against the agent-level simulator.

The ``lighten_probabilities`` override generalises the coin to arbitrary
per-colour values, which also gives the A2 ablation
(:class:`~repro.core.ablations.UnweightedLightening`) a fast path.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.weights import WeightTable
from . import checkpoint as ckpt
from .backend import FLOAT64, HOST, INT64, Generator
from .rng import make_rng

np = HOST.xp  # host namespace: the scalar count engine is CPU-resident


def resolve_lighten_probabilities(
    weights: WeightTable,
    override: Sequence[float] | None,
) -> list[float]:
    """Per-colour lightening coins: the protocol's ``1/w_i`` default,
    or a validated override (shared by the scalar and batched
    engines)."""
    if override is None:
        return [1.0 / weights.weight(i) for i in range(weights.k)]
    lighten = [float(p) for p in override]
    if len(lighten) != weights.k:
        raise ValueError("lighten_probabilities must have length k")
    if any(not 0.0 <= p <= 1.0 for p in lighten):
        raise ValueError("lighten probabilities must be in [0, 1]")
    return lighten


class AggregateSimulation:
    """Count-based simulator of Diversification on the complete graph.

    Args:
        weights: Colour weight table (shared; adversarial colour
            additions through :meth:`add_colour` keep it in sync).
        dark_counts: Initial ``A_i`` per colour.
        light_counts: Initial ``a_i`` per colour (defaults to all zero —
            the paper's all-dark start).
        rng: Seed or generator.
        lighten_probabilities: Optional per-colour override of the
            ``1/w_i`` lightening coin.
    """

    def __init__(
        self,
        weights: WeightTable,
        dark_counts: Sequence[int],
        light_counts: Sequence[int] | None = None,
        *,
        rng: int | Generator | None = None,
        lighten_probabilities: Sequence[float] | None = None,
    ):
        self.weights = weights
        self._dark = [int(c) for c in dark_counts]
        if light_counts is None:
            light_counts = [0] * len(self._dark)
        self._light = [int(c) for c in light_counts]
        if len(self._dark) != weights.k or len(self._light) != weights.k:
            raise ValueError(
                "count vectors must match the weight table size "
                f"(k={weights.k})"
            )
        if any(c < 0 for c in self._dark) or any(c < 0 for c in self._light):
            raise ValueError("counts must be non-negative")
        self._lighten = resolve_lighten_probabilities(
            weights, lighten_probabilities
        )
        self.rng = make_rng(rng)
        self.time = 0
        self._pending: int | None = None
        # repro-lint: disable=RL3 -- observer callbacks, re-registered by the owner after restore()
        self._taps: list = []
        if self.n < 2:
            raise ValueError("need at least two agents")

    # ------------------------------------------------------------------
    # Introspection

    @property
    def n(self) -> int:
        """Total number of agents."""
        return sum(self._dark) + sum(self._light)

    @property
    def k(self) -> int:
        """Number of colours."""
        return len(self._dark)

    def dark_counts(self):
        """``A_i`` per colour."""
        return np.asarray(self._dark, dtype=INT64)

    def light_counts(self):
        """``a_i`` per colour."""
        return np.asarray(self._light, dtype=INT64)

    def colour_counts(self):
        """``C_i = A_i + a_i`` per colour."""
        return self.dark_counts() + self.light_counts()

    # ------------------------------------------------------------------
    # Per-step mode (used by the equivalence tests)

    def step(self) -> bool:
        """Simulate one time-step faithfully; True if counts changed."""
        self._pending = None  # per-step mode re-examines every step
        self.time += 1
        n = self.n
        rng = self.rng
        # Scheduled agent u: light colour i w.p. a_i/n, dark w.p. A_i/n.
        pick = rng.random() * n
        acc = 0.0
        u_colour, u_dark = -1, False
        for i in range(self.k):
            acc += self._light[i]
            if pick < acc:
                u_colour, u_dark = i, False
                break
            acc += self._dark[i]
            if pick < acc:
                u_colour, u_dark = i, True
                break
        else:  # numerical edge: attribute to the last non-empty class
            for i in reversed(range(self.k)):
                if self._dark[i]:
                    u_colour, u_dark = i, True
                    break
                if self._light[i]:
                    u_colour, u_dark = i, False
                    break
        # Sampled agent v among the other n-1 agents.
        pick = rng.random() * (n - 1)
        acc = 0.0
        v_colour, v_dark = -1, False
        for j in range(self.k):
            light = self._light[j] - (
                1 if (j == u_colour and not u_dark) else 0
            )
            acc += light
            if pick < acc:
                v_colour, v_dark = j, False
                break
            darkc = self._dark[j] - (1 if (j == u_colour and u_dark) else 0)
            acc += darkc
            if pick < acc:
                v_colour, v_dark = j, True
                break
        else:
            v_colour, v_dark = u_colour, u_dark
        # Apply the Diversification rule.
        if not u_dark and v_dark:
            self._light[u_colour] -= 1
            self._dark[v_colour] += 1
            return True
        if u_dark and v_dark and u_colour == v_colour:
            if rng.random() < self._lighten[u_colour]:
                self._dark[u_colour] -= 1
                self._light[u_colour] += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Event-driven mode

    def _event_rates(self) -> tuple[float, float, list[float]]:
        """(adopt_rate, lighten_rate, per-colour lighten terms), scaled
        by ``n (n - 1)``."""
        total_light = float(sum(self._light))
        total_dark = float(sum(self._dark))
        adopt = total_light * total_dark
        lighten_terms = [
            self._dark[i] * (self._dark[i] - 1) * self._lighten[i]
            for i in range(self.k)
        ]
        return adopt, float(sum(lighten_terms)), lighten_terms

    def run(self, steps: int) -> "AggregateSimulation":
        """Advance exactly ``steps`` time-steps using event jumps.

        An arrival drawn past the horizon is kept in ``_pending`` and
        consumed by the next call, so any split of a horizon into
        consecutive ``run`` calls yields the bit-identical trajectory.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        horizon = self.time + steps
        rng = self.rng
        while self.time < horizon:
            adopt, lighten, lighten_terms = self._event_rates()
            denom = self.n * (self.n - 1)
            p_active = (adopt + lighten) / denom
            if p_active <= 0.0:
                self.time = horizon
                break
            if self._pending is None:
                gap = int(rng.geometric(min(p_active, 1.0)))
                self._pending = self.time + gap
            if self._pending > horizon:
                # The next active event falls beyond the horizon; the
                # remaining steps are no-ops, and the arrival is kept
                # for the next run call (memorylessness makes keeping
                # and redrawing equal in distribution; keeping is also
                # split-invariant bit-for-bit).
                self.time = horizon
                break
            self.time = self._pending
            self._pending = None
            self._apply_active_event(adopt, lighten, lighten_terms)
            self._notify_taps()
        self._sync_taps()
        return self

    def run_until(
        self,
        predicate,
        *,
        max_steps: int,
        check_interval: int = 1,
    ) -> int | None:
        """Run until ``predicate(self)`` is true at an active event.

        Returns the hitting time-step, or None if ``max_steps`` elapsed.
        The predicate is evaluated after every ``check_interval``-th
        active event (the configuration is constant in between).
        """
        if predicate(self):
            return self.time
        horizon = self.time + max_steps
        rng = self.rng
        events = 0
        while self.time < horizon:
            adopt, lighten, lighten_terms = self._event_rates()
            denom = self.n * (self.n - 1)
            p_active = (adopt + lighten) / denom
            if p_active <= 0.0:
                return None
            if self._pending is None:
                gap = int(rng.geometric(min(p_active, 1.0)))
                self._pending = self.time + gap
            if self._pending > horizon:
                self.time = horizon
                return None
            self.time = self._pending
            self._pending = None
            self._apply_active_event(adopt, lighten, lighten_terms)
            events += 1
            if events % check_interval == 0 and predicate(self):
                return self.time
        return None

    def _apply_active_event(
        self,
        adopt: float,
        lighten: float,
        lighten_terms: list[float],
    ) -> None:
        rng = self.rng
        if rng.random() * (adopt + lighten) < adopt:
            # Adopt: light colour i -> dark colour j.
            i = _pick_weighted(self._light, rng)
            j = _pick_weighted(self._dark, rng)
            self._light[i] -= 1
            self._dark[j] += 1
        else:
            i = _pick_weighted(lighten_terms, rng)
            self._dark[i] -= 1
            self._light[i] += 1

    # ------------------------------------------------------------------
    # Adversary support

    def add_agents(self, colour: int, count: int, dark: bool = True) -> None:
        """Inject ``count`` fresh agents of an existing colour."""
        if not 0 <= colour < self.k:
            raise ValueError(f"unknown colour {colour}")
        if count < 0:
            raise ValueError("count must be non-negative")
        if dark:
            self._dark[colour] += count
        else:
            self._light[colour] += count
        self._pending = None  # rates changed: redraw the next arrival

    def add_colour(self, weight: float, count: int, dark: bool = True) -> int:
        """Introduce a brand-new colour with ``count`` supporters.

        Sustainability requires new colours to arrive dark (Sec 1.2).
        """
        colour = self.weights.add_colour(weight)
        self._dark.append(0)
        self._light.append(0)
        self._lighten.append(1.0 / weight)
        self.add_agents(colour, count, dark=dark)
        return colour

    def recolour(self, source: int, target: int) -> None:
        """Repaint all agents of ``source`` as ``target`` (shades kept)."""
        if not (0 <= source < self.k and 0 <= target < self.k):
            raise ValueError("source and target must be existing colours")
        if source == target:
            return
        self._dark[target] += self._dark[source]
        self._light[target] += self._light[source]
        self._dark[source] = 0
        self._light[source] = 0
        self._pending = None  # rates changed: redraw the next arrival

    # ------------------------------------------------------------------
    # Streaming analysis taps

    def attach_stream(self, accumulator, *, reset: bool = True) -> None:
        """Feed a streaming accumulator from inside the event loop.

        The accumulator is reset to the current configuration and then
        updated after every applied event and at each horizon, so it
        integrates the trajectory exactly while the engine holds no
        history.  Pass ``reset=False`` to re-attach an accumulator
        restored via ``load_state`` alongside an engine ``restore()``
        — continuing the original accumulation bit-identically.
        """
        if reset:
            accumulator.reset(
                np.asarray([self.time], dtype=INT64),
                self.dark_counts()[None, :].astype(FLOAT64),
                self.light_counts()[None, :].astype(FLOAT64),
            )
        self._taps.append(accumulator)

    def detach_streams(self) -> None:
        """Drop all attached streaming accumulators."""
        self._taps.clear()

    def _notify_taps(self) -> None:
        if not self._taps:
            return
        rows = np.zeros(1, dtype=INT64)
        times = np.asarray([self.time], dtype=INT64)
        dark = self.dark_counts()[None, :].astype(FLOAT64)
        light = self.light_counts()[None, :].astype(FLOAT64)
        for tap in self._taps:
            tap.update(rows, times, dark, light)

    def _sync_taps(self) -> None:
        if not self._taps:
            return
        times = np.asarray([self.time], dtype=INT64)
        for tap in self._taps:
            tap.sync(times)

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state."""
        return ckpt.payload(
            "AggregateSimulation",
            weights=self.weights.as_array(),
            dark=self.dark_counts(),
            light=self.light_counts(),
            lighten=np.asarray(self._lighten, dtype=FLOAT64),
            time=int(self.time),
            pending=-1 if self._pending is None else int(self._pending),
            rng=ckpt.rng_state(self.rng),
        )

    def restore(self, data: dict) -> "AggregateSimulation":
        """Restore a :meth:`snapshot` payload in place."""
        ckpt.check(data, "AggregateSimulation")
        ckpt.restore_weight_table(self.weights, data["weights"])
        self._dark = [int(c) for c in np.asarray(data["dark"])]
        self._light = [int(c) for c in np.asarray(data["light"])]
        self._lighten = [float(p) for p in np.asarray(data["lighten"])]
        self.time = ckpt.as_int(data["time"])
        pending = ckpt.as_int(data["pending"])
        self._pending = None if pending < 0 else pending
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregateSimulation(n={self.n}, k={self.k}, t={self.time})"


def _pick_weighted(
    masses: Sequence[float], rng: Generator
) -> int:
    """Index sampled proportionally to non-negative masses."""
    total = float(sum(masses))
    pick = rng.random() * total
    acc = 0.0
    for index, mass in enumerate(masses):
        acc += mass
        if pick < acc:
            return index
    for index in reversed(range(len(masses))):  # numerical edge
        if masses[index] > 0:
            return index
    raise ValueError("cannot sample from all-zero masses")
