"""Heterogeneous mega-batch aggregate engine: B rows with *different*
weight tables, population sizes and horizons in one event loop.

:class:`~repro.engine.batched.BatchedAggregateSimulation` fuses R
replications of *one* configuration — one shared
:class:`~repro.core.weights.WeightTable`, one lighten vector, one
population size — so a parameter sweep still pays one Python-level
event loop per grid cell.  This engine removes that restriction: every
row carries its own weight table (stored as a zero-padded ``(B, k_max)``
matrix), its own lightening probabilities, its own population size and
its own step horizon, so ``B = cells x replications`` rows of an entire
sweep advance through a *single* vectorised event loop.

Padding is safe by construction.  A row with ``k_r`` colours occupies
columns ``0..k_r-1`` of the dark block and of the light block; the
padding columns ``k_r..k_max-1`` hold zero mass, zero weight and zero
lightening probability.  The row-wise categorical draws
(:func:`~repro.engine.batched._pick_rows`) clamp their thresholds
strictly below the row totals, so a zero-mass class is never selected —
adopt partners, lighten targets and per-step class picks all stay
inside the row's real colour set, and the event masses
``a_i * total_dark`` and ``A_i (A_i - 1) * lighten_i`` vanish
identically on padding columns.  The property suite
(``tests/property/test_hetero_invariants.py``) checks that runs and
row-targeted interventions never leak mass into padding.

Per-row horizons use the same active-row retirement as the homogeneous
engine's event mode: :meth:`HeterogeneousAggregateBatch.run_to` advances
each row to its own target time, rows whose next geometric jump
overshoots coast to their target and drop out of the update masks, and
the loop ends when every row has arrived.  One loop iteration costs
O(B k_max) NumPy work but advances every live row by a full event, so a
whole sweep pays the Python interpreter once instead of once per cell
(``benchmarks/bench_e17_fused_sweep.py`` measures the resulting
speedup).

Equivalence with the per-cell engines is distributional and is verified
per cell with Kolmogorov-Smirnov tests in
``tests/integration/test_fused_equivalence.py``, mirroring the
established batched-vs-scalar precedent.

Split invariance.  Every row owns an independent PCG64 substream
(:class:`~repro.engine.streams.RowStreams`), and an arrival drawn past
a row's target is carried in a per-row ``_pending`` slot instead of
being discarded, so splitting any row's horizon — including *per-row*
splits through :meth:`HeterogeneousAggregateBatch.run_to` — reproduces
the uninterrupted trajectory bit-for-bit.  This backs the
``snapshot()``/``restore()`` checkpoint contract; interventions change
the event rates and therefore drop the pending arrivals of the rows
they touch.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.weights import MIN_WEIGHT, WeightTable
from . import checkpoint as ckpt
from .backend import (
    BOOL,
    FLOAT64,
    HOST,
    INT64,
    Backend,
    Generator,
    require_engine_loops,
    resolve_backend,
)
from .batched import advance_event_driven, apply_step_rows
from .rng import make_rng
from .streams import RowStreams


class HeterogeneousAggregateBatch:
    """Count-based simulator of B heterogeneous Diversification rows.

    Args:
        weight_rows: One weight table per row — each entry a
            :class:`~repro.core.weights.WeightTable` or a plain weight
            sequence.  Rows may have different numbers of colours.
        dark_counts: Initial ``A_i`` per row — a ragged sequence whose
            row ``r`` has length ``k_r``, or an already padded
            ``(B, k_max)`` matrix (padding columns must be zero).
        light_counts: Initial ``a_i`` per row, same accepted shapes
            (defaults to all zero — the paper's all-dark start).
        rng: Seed or generator.  Each row draws from its own PCG64
            substream seeded off this base generator
            (:class:`~repro.engine.streams.RowStreams`), which is what
            makes runs split-invariant and checkpointable.
        lighten_rows: Optional per-row override of the ``1/w_i``
            lightening coins, same accepted shapes as the counts.
    """

    def __init__(
        self,
        weight_rows: Sequence,
        dark_counts,
        light_counts=None,
        *,
        rng: int | Generator | None = None,
        lighten_rows=None,
        backend: str | Backend | None = None,
    ):
        self._backend = require_engine_loops(
            resolve_backend(backend), "HeterogeneousAggregateBatch"
        )
        xp = self._backend.xp
        tables = [
            row if isinstance(row, WeightTable) else WeightTable(row)
            for row in weight_rows
        ]
        if not tables:
            raise ValueError("need at least one row")
        rows = len(tables)
        self._ks = xp.asarray([table.k for table in tables], dtype=INT64)
        k_max = int(self._ks.max())
        self._weights = xp.zeros((rows, k_max), dtype=FLOAT64)
        for r, table in enumerate(tables):
            self._weights[r, : table.k] = table.as_array()
        if (self._weights[self._mass_columns()] < MIN_WEIGHT).any():
            raise ValueError(f"weights must be >= {MIN_WEIGHT}")
        dark = self._rows_to_padded(dark_counts, "dark_counts", INT64)
        if light_counts is None:
            light = xp.zeros(dark.shape, dtype=INT64)
        else:
            light = self._rows_to_padded(
                light_counts, "light_counts", INT64
            )
        if (dark < 0).any() or (light < 0).any():
            raise ValueError("counts must be non-negative")
        self._n = dark.sum(axis=1) + light.sum(axis=1)
        if (self._n < 2).any():
            raise ValueError("every row needs at least two agents")
        # One contiguous (B, 2 k_max) state matrix; dark and light are
        # views on the left and right blocks.
        # repro-lint: disable=RL301 -- serialised via its _dark/_light views; restore() rebuilds it
        self._state = xp.concatenate([dark, light], axis=1)
        self._dark = self._state[:, :k_max]
        self._light = self._state[:, k_max:]
        if lighten_rows is None:
            self._lighten = xp.zeros((rows, k_max), dtype=FLOAT64)
            mass = self._mass_columns()
            self._lighten[mass] = 1.0 / self._weights[mass]
        else:
            self._lighten = self._rows_to_padded(
                lighten_rows, "lighten_rows", FLOAT64
            )
            if (self._lighten < 0.0).any() or (self._lighten > 1.0).any():
                raise ValueError("lighten probabilities must be in [0, 1]")
        self.rng = make_rng(rng)
        self._times = xp.zeros(rows, dtype=INT64)
        # repro-lint: disable=RL301 -- derived from the serialised _n; restore() recomputes it
        self._denom = (
            self._n.astype(FLOAT64) * (self._n - 1).astype(FLOAT64)
        )
        # Per-row substreams and pending arrivals: see the module
        # docstring's split-invariance paragraph.
        self._streams = RowStreams.from_generator(self.rng, rows)
        self._pending = xp.full(rows, -1, dtype=INT64)
        # repro-lint: disable=RL3 -- observer callbacks, re-registered by the owner after restore()
        self._taps: list = []

    def _mass_columns(self):
        """Boolean ``(B, k_max)`` mask of the non-padding columns."""
        xp = self._backend.xp
        return xp.arange(self.k_max)[None, :] < self._ks[:, None]

    def _rows_to_padded(self, values, name: str, dtype):
        """Zero-pad ragged per-row vectors to ``(B, k_max)``; validate a
        pre-padded matrix instead when one is passed."""
        xp = self._backend.xp
        rows, k_max = self._ks.shape[0], self.k_max
        if getattr(values, "ndim", None) == 2:
            values = xp.asarray(values)
            if values.shape != (rows, k_max):
                raise ValueError(
                    f"padded {name} must have shape ({rows}, {k_max}), "
                    f"got {values.shape}"
                )
            out = values.astype(dtype, copy=True)
            if out[~self._mass_columns()].any():
                raise ValueError(
                    f"{name} carries mass in padding columns"
                )
            return out
        if len(values) != rows:
            raise ValueError(
                f"{name} has {len(values)} rows but the batch has {rows}"
            )
        out = xp.zeros((rows, k_max), dtype=dtype)
        for r, row in enumerate(values):
            row = xp.asarray(row, dtype=dtype)
            if row.ndim != 1 or row.shape[0] != self._ks[r]:
                raise ValueError(
                    f"{name} row {r} must have length k_r={self._ks[r]}, "
                    f"got shape {row.shape}"
                )
            out[r, : row.shape[0]] = row
        return out

    def _per_row(self, steps, name: str = "steps"):
        """Broadcast a scalar or per-row step count to ``(B,)``."""
        xp = self._backend.xp
        steps = xp.asarray(steps, dtype=INT64)
        if steps.ndim == 0:
            steps = xp.full(self.rows, int(steps), dtype=INT64)
        if steps.shape != (self.rows,):
            raise ValueError(
                f"{name} must be a scalar or have shape ({self.rows},)"
            )
        if (steps < 0).any():
            raise ValueError(f"{name} must be non-negative")
        return steps

    def _resolve_rows(self, rows):
        """Row selection for interventions: None (all rows), a boolean
        mask, or an index array."""
        xp = self._backend.xp
        if rows is None:
            return xp.arange(self.rows)
        rows = xp.asarray(rows)
        if rows.dtype == BOOL:
            if rows.shape != (self.rows,):
                raise ValueError(
                    f"boolean row mask must have shape ({self.rows},)"
                )
            return xp.flatnonzero(rows)
        rows = rows.astype(INT64).reshape(-1)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise ValueError("row indices out of range")
        return rows

    # ------------------------------------------------------------------
    # Introspection

    @property
    def rows(self) -> int:
        """Number of fused rows B."""
        return self._state.shape[0]

    @property
    def k_max(self) -> int:
        """Width of the padded colour axis."""
        return self._weights.shape[1]

    @property
    def backend(self) -> Backend:
        """The array backend this engine computes on."""
        return self._backend

    def ks(self):
        """Per-row colour counts ``k_r``, shape ``(B,)``."""
        return self._ks.copy()

    def populations(self):
        """Per-row population sizes ``n_r``, shape ``(B,)``."""
        return self._n.copy()

    def times(self):
        """Per-row clocks, shape ``(B,)``."""
        return self._times.copy()

    def weights_matrix(self):
        """Padded per-row weights, shape ``(B, k_max)`` (padding 0)."""
        return self._weights.copy()

    def lighten_matrix(self):
        """Padded per-row lightening coins, ``(B, k_max)`` (padding 0)."""
        return self._lighten.copy()

    def dark_counts(self):
        """``A_i`` per row and colour, ``(B, k_max)`` zero-padded."""
        return self._dark.copy()

    def light_counts(self):
        """``a_i`` per row and colour, ``(B, k_max)`` zero-padded."""
        return self._light.copy()

    def colour_counts(self):
        """``C_i = A_i + a_i`` per row and colour, ``(B, k_max)``."""
        return self._dark + self._light

    # ------------------------------------------------------------------
    # Per-step mode (used by the equivalence tests)

    def step(self):
        """One faithful time-step in every row; returns the changed mask."""
        changed = self._step_rows(self._backend.xp.arange(self.rows))
        self._times += 1
        return changed

    def run_per_step(self, steps) -> "HeterogeneousAggregateBatch":
        """Advance each row by its own ``steps`` (scalar or ``(B,)``)
        in faithful per-step mode; rows past their horizon sit out."""
        horizon = self._times + self._per_row(steps)
        xp = self._backend.xp
        while True:
            act = xp.flatnonzero(self._times < horizon)
            if act.size == 0:
                return self
            self._step_rows(act)
            self._times[act] += 1

    def _step_rows(self, act):
        """One faithful step for the rows in ``act`` (returns per-``act``
        changed mask) through the shared per-step transition
        (:func:`~repro.engine.batched.apply_step_rows`), with the
        lighten coin thresholds indexing the per-row table."""
        self._pending[act] = -1  # per-step mode re-examines every step
        bk = self._backend
        uniforms = bk.from_host(self._streams.take(bk.to_numpy(act), 3)).T
        return apply_step_rows(
            self._state,
            self._dark,
            self._light,
            self._lighten,
            act,
            uniforms,
            xp=bk.xp,
        )

    # ------------------------------------------------------------------
    # Event-driven mode

    def run(self, steps) -> "HeterogeneousAggregateBatch":
        """Advance each row by its own ``steps`` (scalar or ``(B,)``)
        using per-row event jumps."""
        return self.run_to(self._times + self._per_row(steps))

    def run_to(self, targets) -> "HeterogeneousAggregateBatch":
        """Advance every row to its own absolute target time.

        Runs the shared event core
        (:func:`~repro.engine.batched.advance_event_driven` — fused
        event-type/colour categorical draw over ``2 k_max`` masses, a
        three-block cumulative sum, branch-free ±1 updates) with its
        three per-row generalisations: the lighten terms come from the
        ``(B, k_max)`` table, the geometric jump probabilities use
        per-row ``n_r (n_r - 1)`` denominators, and the horizon is a
        per-row vector, so rows retire independently (absorbed, jumped
        past their target, or arrived) while the rest keep advancing.
        """
        targets = self._per_row(targets, "targets")
        if (targets < self._times).any():
            raise ValueError("targets must not precede the row clocks")
        advance_event_driven(
            self._times,
            targets,
            self._dark,
            self._light,
            self._lighten,
            self._denom,
            self._streams,
            self._pending,
            self.k_max,
            tap=self._tap_update if self._taps else None,
            backend=self._backend,
        )
        self._sync_taps()
        return self

    # ------------------------------------------------------------------
    # Adversary support (row-targeted, between ``run`` calls)

    def add_agents(
        self, colour: int, count: int, dark: bool = True, rows=None
    ) -> None:
        """Inject ``count`` fresh agents of an existing colour into the
        selected rows (all rows by default)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        sel = self._resolve_rows(rows)
        # An empty selection still validates against k_max, so a wrong
        # colour id in a row-targeted schedule fails loudly instead of
        # no-opping on sweeps where no row matches the mask.
        limit = int(self._ks[sel].min()) if sel.size else self.k_max
        if not 0 <= colour < limit:
            raise ValueError(
                f"colour {colour} is not present in every selected row"
            )
        if sel.size == 0:
            return
        block = self._dark if dark else self._light
        block[sel, colour] += count
        self._n[sel] += count
        self._denom[sel] = self._n[sel].astype(FLOAT64) * (
            self._n[sel] - 1
        )
        self._pending[sel] = -1  # rates changed: redraw those arrivals

    def add_colour(
        self, weight: float, count: int, dark: bool = True, rows=None
    ):
        """Introduce a brand-new colour with ``count`` supporters in the
        selected rows, widening the padded matrices when a selected row
        is already at ``k_max``.

        Rows have *different* colour counts, so the new colour lands at
        each row's own next free column ``k_r`` (returned per selected
        row); unselected rows keep zero mass and zero weight there.
        """
        if count < 0:  # validate before any widening takes effect
            raise ValueError("count must be non-negative")
        if weight < MIN_WEIGHT:
            raise ValueError(f"weights must be >= {MIN_WEIGHT}")
        sel = self._resolve_rows(rows)
        if sel.size == 0:
            return self._backend.xp.zeros(0, dtype=INT64)
        if (self._ks[sel] == self.k_max).any():
            self._widen()
        cols = self._ks[sel].copy()
        self._weights[sel, cols] = weight
        self._lighten[sel, cols] = 1.0 / weight
        block = self._dark if dark else self._light
        block[sel, cols] += count
        self._ks[sel] += 1
        self._n[sel] += count
        self._denom[sel] = self._n[sel].astype(FLOAT64) * (
            self._n[sel] - 1
        )
        self._pending[sel] = -1  # rates changed: redraw those arrivals
        return cols

    def recolour(self, source: int, target: int, rows=None) -> None:
        """Repaint all agents of ``source`` as ``target`` (shades kept)
        in the selected rows."""
        sel = self._resolve_rows(rows)
        limit = int(self._ks[sel].min()) if sel.size else self.k_max
        if not (0 <= source < limit and 0 <= target < limit):
            raise ValueError(
                "source and target must be existing colours in every "
                "selected row"
            )
        if sel.size == 0 or source == target:
            return
        self._dark[sel, target] += self._dark[sel, source]
        self._light[sel, target] += self._light[sel, source]
        self._dark[sel, source] = 0
        self._light[sel, source] = 0
        self._pending[sel] = -1  # rates changed: redraw those arrivals

    def _widen(self) -> None:
        """Grow the padded colour axis by one column (dark and light
        blocks are re-laid out; padding stays zero)."""
        xp = self._backend.xp
        k = self.k_max
        rows = self.rows
        state = xp.zeros((rows, 2 * (k + 1)), dtype=INT64)
        state[:, :k] = self._dark
        state[:, k + 1 : 2 * k + 1] = self._light
        self._state = state
        self._dark = state[:, : k + 1]
        self._light = state[:, k + 1 :]
        pad = xp.zeros((rows, 1), dtype=FLOAT64)
        self._weights = xp.concatenate([self._weights, pad], axis=1)
        self._lighten = xp.concatenate([self._lighten, pad.copy()], axis=1)

    # ------------------------------------------------------------------
    # Streaming analysis taps

    def attach_stream(self, accumulator, *, reset: bool = True) -> None:
        """Feed a streaming accumulator from inside the event loop.

        The accumulator is reset to the current padded ``(B, k_max)``
        configuration and then updated after every applied event (per
        affected rows) and synchronised at each horizon; padding columns
        carry zero mass, so they contribute nothing to any potential.
        Pass ``reset=False`` to re-attach an accumulator restored via
        ``load_state`` alongside an engine ``restore()`` — continuing
        the original accumulation bit-identically.
        """
        if reset:
            accumulator.reset(
                self._times.copy(),
                self._dark.astype(FLOAT64),
                self._light.astype(FLOAT64),
            )
        self._taps.append(accumulator)

    def detach_streams(self) -> None:
        """Drop all attached streaming accumulators."""
        self._taps.clear()

    def _tap_update(self, rows) -> None:
        times = self._times[rows]
        dark = self._dark[rows].astype(FLOAT64)
        light = self._light[rows].astype(FLOAT64)
        for tap in self._taps:
            tap.update(rows, times, dark, light)

    def _sync_taps(self) -> None:
        if not self._taps:
            return
        times = self._times.copy()
        for tap in self._taps:
            tap.sync(times)

    # ------------------------------------------------------------------
    # Checkpointing

    def snapshot(self) -> dict:
        """``repro-ckpt/v1`` payload of all run-relevant state."""
        bk = self._backend
        return ckpt.payload(
            "HeterogeneousAggregateBatch",
            weights=bk.to_numpy(self._weights, copy=True),
            ks=bk.to_numpy(self._ks, copy=True),
            dark=bk.to_numpy(self._dark, copy=True),
            light=bk.to_numpy(self._light, copy=True),
            lighten=bk.to_numpy(self._lighten, copy=True),
            times=bk.to_numpy(self._times, copy=True),
            pending=bk.to_numpy(self._pending, copy=True),
            n=bk.to_numpy(self._n, copy=True),
            streams=self._streams.snapshot(),
            rng=ckpt.rng_state(self.rng),
        )

    def restore(self, data: dict) -> "HeterogeneousAggregateBatch":
        """Restore a :meth:`snapshot` payload in place.

        Handles checkpoints taken after ``add_colour`` interventions:
        the padded matrices are re-widened to the snapshot's ``k_max``.
        """
        ckpt.check(data, "HeterogeneousAggregateBatch")
        bk = self._backend
        weights = ckpt.as_array(data["weights"], FLOAT64)
        ks = ckpt.as_array(data["ks"], INT64)
        dark = ckpt.as_array(data["dark"], INT64)
        light = ckpt.as_array(data["light"], INT64)
        lighten = ckpt.as_array(data["lighten"], FLOAT64)
        rows = self.rows
        if ks.shape != (rows,) or weights.shape[0] != rows:
            raise ValueError(
                f"checkpoint has {ks.shape[0]} rows but the engine "
                f"has {rows}"
            )
        k_max = weights.shape[1]
        if k_max < self.k_max:
            raise ValueError(
                f"checkpoint k_max {k_max} is narrower than the "
                f"engine's {self.k_max}"
            )
        shapes = {dark.shape, light.shape, lighten.shape}
        if shapes != {(rows, k_max)}:
            raise ValueError(
                f"checkpoint matrices disagree on shape: {shapes}"
            )
        self._weights = bk.from_host(weights)
        self._ks = bk.from_host(ks)
        self._state = bk.from_host(HOST.xp.concatenate([dark, light], axis=1))
        self._dark = self._state[:, :k_max]
        self._light = self._state[:, k_max:]
        self._lighten = bk.from_host(lighten)
        self._times = bk.from_host(ckpt.as_array(data["times"], INT64))
        self._pending = bk.from_host(ckpt.as_array(data["pending"], INT64))
        self._n = bk.from_host(ckpt.as_array(data["n"], INT64))
        self._denom = self._n.astype(FLOAT64) * (
            self._n - 1
        ).astype(FLOAT64)
        self._streams.restore(data["streams"])
        ckpt.set_rng_state(self.rng, data["rng"])
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeterogeneousAggregateBatch(B={self.rows}, "
            f"k_max={self.k_max}, "
            f"n=[{int(self._n.min())}..{int(self._n.max())}], "
            f"t=[{int(self._times.min())}..{int(self._times.max())}])"
        )
