"""Initial-configuration generators (workloads).

The paper allows an *arbitrary* initial distribution of colours with
every colour initially dark (``b_u(0) = 1``, Sec 1.2) and at least one
supporter each (the state space Ω requires ``A_i >= 1``).  These
generators produce the standard starting points used across the
experiment suite.
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable
from ..engine.rng import make_rng


def worst_case_counts(n: int, k: int) -> np.ndarray:
    """Maximally unbalanced legal start: colours ``1..k-1`` hold one
    agent each and colour 0 holds all the rest.

    This is the hard case for Phase 1 ("the rise of the minorities"):
    a singleton colour must grow to Θ(n), which already costs
    Ω(n log n) by the broadcast lower bound quoted in Sec 1.
    """
    if k < 1 or n < k:
        raise ValueError(f"need n >= k >= 1, got n={n}, k={k}")
    counts = np.ones(k, dtype=np.int64)
    counts[0] = n - (k - 1)
    return counts


def uniform_counts(n: int, k: int) -> np.ndarray:
    """Equal split with remainders to the lowest colour ids."""
    if k < 1 or n < k:
        raise ValueError(f"need n >= k >= 1, got n={n}, k={k}")
    counts = np.full(k, n // k, dtype=np.int64)
    counts[: n % k] += 1
    return counts


def proportional_counts(n: int, weights: WeightTable) -> np.ndarray:
    """Deterministic rounding of the fair shares ``w_i n / w``.

    Largest-remainder rounding; every colour keeps at least one agent.
    """
    if n < weights.k:
        raise ValueError("need at least one agent per colour")
    exact = weights.fair_shares() * n
    floors = np.floor(exact).astype(np.int64)
    floors = np.maximum(floors, 1)
    while floors.sum() > n:
        floors[int(np.argmax(floors))] -= 1
    remainder = n - floors.sum()
    order = np.argsort(-(exact - np.floor(exact)))
    for index in order[:remainder]:
        floors[index] += 1
    return floors


def random_counts(
    n: int, k: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Uniformly random assignment, repaired so every colour has >= 1."""
    if k < 1 or n < k:
        raise ValueError(f"need n >= k >= 1, got n={n}, k={k}")
    rng = make_rng(rng)
    assignment = rng.integers(0, k, size=n)
    counts = np.bincount(assignment, minlength=k).astype(np.int64)
    # Repair empties by stealing from the largest colour.
    for colour in range(k):
        while counts[colour] == 0:
            donor = int(np.argmax(counts))
            counts[donor] -= 1
            counts[colour] += 1
    return counts


def equilibrium_split(
    n: int, weights: WeightTable
) -> tuple[np.ndarray, np.ndarray]:
    """Rounded perfect-equilibrium (dark, light) counts of Eq. (7).

    Used to start aggregate runs *inside* the stabilised regime, e.g.
    to measure plateau statistics without paying the convergence phase.
    """
    dark_exact = weights.dark_shares() * n
    dark = np.maximum(np.round(dark_exact).astype(np.int64), 1)
    light_exact = weights.light_shares() * n
    light = np.maximum(np.round(light_exact).astype(np.int64), 0)
    # Repair the total to exactly n, adjusting light counts first.
    excess = int(dark.sum() + light.sum()) - n
    index = 0
    while excess > 0:
        slot = index % weights.k
        if light[slot] > 0:
            light[slot] -= 1
            excess -= 1
        elif dark[slot] > 1:
            dark[slot] -= 1
            excess -= 1
        index += 1
    while excess < 0:
        light[index % weights.k] += 1
        excess += 1
        index += 1
    return dark, light


def colours_from_counts(counts: np.ndarray) -> list[int]:
    """Expand per-colour counts into an explicit agent colour list."""
    colours: list[int] = []
    for colour, count in enumerate(np.asarray(counts)):
        colours.extend([colour] * int(count))
    return colours
