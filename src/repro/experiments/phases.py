"""Experiments E3 and E4: the phase structure of the analysis.

E3 reproduces the Fig. 1 storyline quantitatively: from an arbitrary
start the potentials fall in order — φ (dark imbalance, Lemma 2.6),
ψ (light imbalance, Lemma 2.7), σ² (dark/light mass split, Lemma 2.14)
— and then plateau at their theoretical sizes.  E4 checks the Phase-3
equilibrium values of Thm 2.13.

Both are single-run experiments; they ride the declarative pipeline as
one-shard plans (``"direct"`` seed scope) so they share the executor,
artifact store and profile machinery with the sweep experiments.  Both
measurements also register fused (mega-batch) implementations on the
heterogeneous aggregate engine, so ``execute(..., fused=True)`` — or
``repro run e3 e4 --fused`` — advances every shard of a widened grid
through one event loop (:mod:`repro.experiments.fusion`).
"""

from __future__ import annotations

import numpy as np

from ..analysis.potentials import phi, phi_plateau, psi, sigma_plateau, sigma_squared
from ..core.properties import (
    equilibrium_dark_counts,
    equilibrium_light_counts,
)
from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from .fusion import (
    FusedMeasurement,
    hetero_batch,
    register_fused,
    run_recorded,
)
from .pipeline import ScenarioSpec, execute
from .table import ExperimentTable
from .workloads import worst_case_counts

E3_PROFILES = {"full": {}, "quick": {"n": 512, "settle_factor": 8.0}}
E4_PROFILES = {
    "full": {},
    "quick": {"n": 1024, "settle_factor": 6.0, "window_samples": 64},
}


def potential_series(record) -> dict[str, np.ndarray]:
    """φ(t), ψ(t), σ²(t) evaluated along a recorded run."""
    weights = record.weights
    times = record.times
    phis = np.array(
        [phi(row, weights) for row in record.dark_counts], dtype=np.float64
    )
    psis = np.array(
        [psi(row, weights) for row in record.light_counts], dtype=np.float64
    )
    sigmas = np.array(
        [
            sigma_squared(dark.sum(), light.sum(), weights)
            for dark, light in zip(record.dark_counts, record.light_counts)
        ],
        dtype=np.float64,
    )
    return {"times": times, "phi": phis, "psi": psis, "sigma_sq": sigmas}


def _first_below(times: np.ndarray, series: np.ndarray, level: float):
    hits = np.nonzero(series <= level)[0]
    return int(times[hits[0]]) if hits.size else None


def _measure_potentials(params: dict, rng: np.random.Generator) -> dict:
    """E3 shard: one recorded run and its potential series."""
    from .runner import run_aggregate

    weights = WeightTable(params["vector"])
    steps = _horizon_steps(params)
    record = run_aggregate(
        weights, params["n"], steps, start="worst", seed=rng,
        record_interval=max(1, steps // 512),
    )
    series = potential_series(record)
    return {
        "times": [int(t) for t in series["times"]],
        "phi": [float(v) for v in series["phi"]],
        "psi": [float(v) for v in series["psi"]],
        "sigma_sq": [float(v) for v in series["sigma_sq"]],
    }


def _horizon_steps(params: dict) -> int:
    """The settle horizon ``settle_factor * w^2 n ln n`` of one cell."""
    w = WeightTable(params["vector"]).total
    n = params["n"]
    return int(params["settle_factor"] * w * w * n * np.log(n))


def _fused_measure_potentials(spec, shards) -> list[dict]:
    """E3 mega-batch: one heterogeneous engine row per shard, per-row
    horizons and snapshot intervals (CountRecorder semantics)."""
    engine = hetero_batch(shards)
    steps = np.array(
        [_horizon_steps(shard.params) for shard in shards], dtype=np.int64
    )
    intervals = np.maximum(1, steps // 512)
    series = run_recorded(engine, steps, intervals)
    values = []
    for shard, row in zip(shards, series):
        weights = WeightTable(shard.params["vector"])
        k = weights.k
        dark = row["dark"][:, :k]
        light = row["light"][:, :k]
        values.append(
            {
                "times": [int(t) for t in row["times"]],
                "phi": [float(phi(counts, weights)) for counts in dark],
                "psi": [float(psi(counts, weights)) for counts in light],
                "sigma_sq": [
                    float(sigma_squared(d.sum(), l.sum(), weights))
                    for d, l in zip(dark, light)
                ],
            }
        )
    return values


register_fused(
    _measure_potentials,
    FusedMeasurement(
        family="aggregate",
        group_key=lambda params: "aggregate",
        run_group=_fused_measure_potentials,
    ),
)


def _build_potentials(result) -> ExperimentTable:
    """Format the decay/plateau rows from the recorded series."""
    params = result.cells[0]
    weights = WeightTable(params["vector"])
    n = params["n"]
    plateau_constant = result.spec.context["plateau_constant"]
    (value,) = result.values()
    times = np.asarray(value["times"], dtype=np.int64)
    phi_level = phi_plateau(n, weights, plateau_constant)
    sigma_level = sigma_plateau(n, plateau_constant)

    table = ExperimentTable(
        "E3",
        "Potential decay (Fig. 1 storyline; Thm 2.8, Lemma 2.14)",
        ["potential", "initial", "peak", "final", "plateau bound",
         "below bound after peak (t)", "stays below"],
    )
    tail = max(1, len(times) // 4)
    for name, level in (
        ("phi", phi_level),
        ("psi", phi_level),
        ("sigma_sq", sigma_level),
    ):
        values = np.asarray(value[name], dtype=np.float64)
        peak_index = int(np.argmax(values))
        hit = _first_below(
            times[peak_index:], values[peak_index:], level
        )
        stays = bool((values[-tail:] <= level).all())
        table.add_row(
            name, float(values[0]), float(values[peak_index]),
            float(values[-1]), level,
            "-" if hit is None else hit, stays,
        )
    table.add_note(
        "from the all-dark worst start psi begins at 0 (no light "
        "agents), rises as Phase 1 creates the light reservoir, then "
        "settles at its plateau — the Fig. 1 ordering concerns the "
        "post-peak decay"
    )
    table.add_note(
        f"plateau bounds use C={plateau_constant}: phi/psi ≤ C·w·n·ln n, "
        f"sigma² ≤ C·n^1.5·sqrt(ln n)"
    )
    return table


def spec_potentials(
    n: int = 1024,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seed: int = 7,
    settle_factor: float = 12.0,
    plateau_constant: float = 2.0,
) -> ScenarioSpec:
    """E3 as a one-shard scenario (single recorded run)."""
    return ScenarioSpec(
        name="e3",
        measure=_measure_potentials,
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "settle_factor": settle_factor,
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_potentials,
        context={"plateau_constant": plateau_constant},
    )


def experiment_potentials(
    n: int = 1024,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seed: int = 7,
    settle_factor: float = 12.0,
    plateau_constant: float = 2.0,
    fused: bool = False,
) -> ExperimentTable:
    """E3: decay and plateau of φ, ψ and σ² (Thm 2.8 / Lemma 2.14).

    Expected shape: each potential drops by orders of magnitude from
    the worst-case start, reaches its plateau, and stays there; φ
    plateaus no later than ψ (Subphase 2.1 before 2.2).  ``fused``
    routes the plan through the mega-batch fusion layer (heterogeneous
    aggregate engine).
    """
    return execute(
        spec_potentials(
            n, weight_vector, seed=seed, settle_factor=settle_factor,
            plateau_constant=plateau_constant,
        ),
        fused=fused,
    ).table()


def _measure_equilibrium(params: dict, rng: np.random.Generator) -> dict:
    """E4 shard: settle, then time-average the (dark, light) counts."""
    weights = WeightTable(params["vector"])
    n = params["n"]
    engine = AggregateSimulation(
        weights.copy(), dark_counts=worst_case_counts(n, weights.k),
        rng=rng,
    )
    engine.run(_horizon_steps(params))
    dark_rows, light_rows = [], []
    for _ in range(params["window_samples"]):
        engine.run(n)
        dark_rows.append(engine.dark_counts())
        light_rows.append(engine.light_counts())
    return {
        "dark_mean": np.asarray(dark_rows).mean(axis=0).tolist(),
        "light_mean": np.asarray(light_rows).mean(axis=0).tolist(),
    }


def _fused_measure_equilibrium(spec, shards) -> list[dict]:
    """E4 mega-batch: settle every row to its own horizon, then sample
    per-row windows (rows with fewer samples sit out the extra rounds
    through the active mask)."""
    engine = hetero_batch(shards)
    engine.run(
        np.array(
            [_horizon_steps(shard.params) for shard in shards],
            dtype=np.int64,
        )
    )
    ns = np.array(
        [int(shard.params["n"]) for shard in shards], dtype=np.int64
    )
    samples = np.array(
        [int(shard.params["window_samples"]) for shard in shards],
        dtype=np.int64,
    )
    dark_acc = np.zeros((engine.rows, engine.k_max), dtype=np.float64)
    light_acc = np.zeros_like(dark_acc)
    for sample in range(int(samples.max())):
        active = samples > sample
        engine.run(np.where(active, ns, 0))
        dark_acc[active] += engine.dark_counts()[active]
        light_acc[active] += engine.light_counts()[active]
    ks = engine.ks()
    return [
        {
            "dark_mean": (dark_acc[r, : ks[r]] / samples[r]).tolist(),
            "light_mean": (light_acc[r, : ks[r]] / samples[r]).tolist(),
        }
        for r in range(engine.rows)
    ]


register_fused(
    _measure_equilibrium,
    FusedMeasurement(
        family="aggregate",
        group_key=lambda params: "aggregate",
        run_group=_fused_measure_equilibrium,
    ),
)


def _build_equilibrium(result) -> ExperimentTable:
    """Compare the window means against the Thm-2.13 targets."""
    params = result.cells[0]
    weights = WeightTable(params["vector"])
    n = params["n"]
    error_constant = result.spec.context["error_constant"]
    (value,) = result.values()
    dark_mean = np.asarray(value["dark_mean"], dtype=np.float64)
    light_mean = np.asarray(value["light_mean"], dtype=np.float64)
    dark_target = equilibrium_dark_counts(n, weights)
    light_target = equilibrium_light_counts(n, weights)
    allowed = error_constant * n**0.75 * np.log(n) ** 0.25

    table = ExperimentTable(
        "E4",
        "Phase-3 equilibrium counts (Thm 2.13: additive error "
        "O(n^{3/4} log^{1/4} n))",
        ["colour", "w_i", "mean A_i", "target A_i", "mean a_i",
         "target a_i", "|err| max", "within"],
    )
    for colour in range(weights.k):
        err = max(
            abs(dark_mean[colour] - dark_target[colour]),
            abs(light_mean[colour] - light_target[colour]),
        )
        table.add_row(
            colour,
            weights.weight(colour),
            float(dark_mean[colour]),
            float(dark_target[colour]),
            float(light_mean[colour]),
            float(light_target[colour]),
            float(err),
            err <= allowed,
        )
    table.add_note(
        f"allowed additive error C·n^0.75·(ln n)^0.25 = {allowed:.1f} "
        f"with C={error_constant}, n={n}"
    )
    return table


def spec_equilibrium(
    n: int = 2048,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seed: int = 99,
    settle_factor: float = 10.0,
    window_samples: int = 128,
    error_constant: float = 2.0,
) -> ScenarioSpec:
    """E4 as a one-shard scenario (single settled run)."""
    return ScenarioSpec(
        name="e4",
        measure=_measure_equilibrium,
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "settle_factor": settle_factor,
            "window_samples": window_samples,
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_equilibrium,
        context={"error_constant": error_constant},
    )


def experiment_equilibrium(
    n: int = 2048,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seed: int = 99,
    settle_factor: float = 10.0,
    window_samples: int = 128,
    error_constant: float = 2.0,
    fused: bool = False,
) -> ExperimentTable:
    """E4: Phase-3 equilibrium values (Thm 2.13).

    Measures time-averaged dark and light counts per colour against
    ``A_i = w_i n/(1+w)`` and ``a_i = (w_i/w) n/(1+w)`` with the paper's
    additive error ``C·n^{3/4}(log n)^{1/4}``.  ``fused`` routes the
    plan through the mega-batch fusion layer (heterogeneous aggregate
    engine).
    """
    return execute(
        spec_equilibrium(
            n, weight_vector, seed=seed, settle_factor=settle_factor,
            window_samples=window_samples, error_constant=error_constant,
        ),
        fused=fused,
    ).table()
