"""Experiment E10: Diversification against the consensus baselines.

Same start, same horizon: the consensus dynamics of Sec 1.1 (Voter,
2-Choices, 3-Majority) collapse the colour distribution while
Diversification holds every colour at its fair share.  The trivial
global-knowledge resampler reaches the shares in expectation but is
not sustainable and is blind to added colours.
"""

from __future__ import annotations

import numpy as np

from ..baselines.epidemic import SISEpidemic
from ..baselines.three_majority import ThreeMajority
from ..baselines.trivial import TrivialResampling
from ..baselines.two_choices import TwoChoices
from ..baselines.voter import VoterModel
from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..engine.population import Population
from ..engine.rng import make_rng, spawn
from ..engine.simulator import Simulation
from .runner import run_agent
from .table import ExperimentTable


def experiment_baselines(
    n: int = 128,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 3000,
    seed: int = 2718,
) -> ExperimentTable:
    """E10: colour survival and diversity error across protocols.

    Expected shape: only Diversification is simultaneously diverse and
    sustainable.  Consensus dynamics lose colours (min count 0);
    trivial resampling tracks shares but lets counts touch zero and is
    excluded from sustainability.
    """
    weights = WeightTable(weight_vector)
    steps = rounds * n
    fair = weights.fair_shares()
    table = ExperimentTable(
        "E10",
        "Consensus baselines destroy diversity (Sec 1.1 contrast)",
        ["protocol", "colours alive at end", "min count seen",
         "final max |share − w_i/w|", "sustainable", "diverse-ish"],
    )
    contenders = (
        ("diversification", lambda w: Diversification(w)),
        ("voter", lambda w: VoterModel()),
        ("2-choices", lambda w: TwoChoices()),
        ("3-majority", lambda w: ThreeMajority()),
        ("trivial-resampling", lambda w: TrivialResampling(w)),
    )
    for name, factory in contenders:
        local = weights.copy()
        tracker = MinCountTracker()
        record = run_agent(
            factory(local), local, n, steps,
            start="proportional", seed=seed, observers=[tracker],
        )
        final = record.final_colour_counts[: local.k].astype(float)
        shares = final / final.sum()
        error = float(np.abs(shares - fair).max())
        alive = int((final >= 1).sum())
        min_seen = int(tracker.min_colour_counts.min())
        table.add_row(
            name, alive, min_seen, error,
            min_seen >= 1, error <= 0.1,
        )
    table.add_note(
        "consensus dynamics started from the proportional split still "
        "fixate; Diversification holds all colours near w_i/w"
    )
    table.add_note(
        "trivial resampling tracks the shares but has no survival "
        "guarantee: counts are Binomial and hit zero with positive "
        "probability (visible at small n; see the integration tests)"
    )
    return table


def experiment_epidemic(
    n: int = 200,
    *,
    ratios=(0.1, 0.5, 1.0, 2.0, 8.0),
    recovery: float = 0.1,
    initial_infected_fraction: float = 0.1,
    steps_per_agent: int = 1200,
    seeds: int = 5,
    base_seed: int = 1848,
) -> ExperimentTable:
    """E10b: SIS epidemic threshold — sustainability by contrast.

    The contact process (Sec 1.1, refs [8, 24, 27]) has an absorbing
    all-susceptible state: below the threshold the infected "colour"
    dies out.  Expected shape: survival probability jumps from ≈0 to
    ≈1 as ``transmission/recovery`` crosses 1, while Diversification
    keeps every colour alive *by construction* at any parameters.
    """
    steps = steps_per_agent * n
    infected0 = max(1, int(initial_infected_fraction * n))
    table = ExperimentTable(
        "E10b",
        "SIS epidemic threshold (Sec 1.1): the canonical "
        "non-sustainable dynamic",
        ["transmission/recovery", "transmission", "runs survived",
         "mean infected at end", "sustainable-like"],
    )
    rng = make_rng(base_seed)
    for ratio in ratios:
        transmission = min(1.0, ratio * recovery)
        survived = 0
        totals = []
        for child in spawn(rng, seeds):
            protocol = SISEpidemic(transmission, recovery)
            colours = [1] * infected0 + [0] * (n - infected0)
            population = Population.from_colours(colours, protocol, k=2)
            Simulation(protocol, population, rng=child).run(steps)
            infected = int(population.colour_counts()[1])
            totals.append(infected)
            if infected > 0:
                survived += 1
        table.add_row(
            ratio, transmission, f"{survived}/{seeds}",
            float(np.mean(totals)), survived == seeds,
        )
    table.add_note(
        "mean-field threshold at transmission/recovery = 1; compare "
        "E6 where Diversification survives at min dark count >= 1 "
        "with probability 1, independent of parameters"
    )
    return table
