"""Experiment E10: Diversification against the consensus baselines.

Same start, same horizon: the consensus dynamics of Sec 1.1 (Voter,
2-Choices, 3-Majority) collapse the colour distribution while
Diversification holds every colour at its fair share.  The trivial
global-knowledge resampler reaches the shares in expectation but is
not sustainable and is blind to added colours.

Both experiments run through the declarative pipeline: E10 is a
protocol grid sharing one run seed per shard (``"direct"`` scope), E10b
sweeps the transmission/recovery ratio with ``seeds`` replications per
point (``"stream"`` scope).
"""

from __future__ import annotations

import numpy as np

from ..baselines.epidemic import SISEpidemic
from ..baselines.three_majority import ThreeMajority
from ..baselines.trivial import TrivialResampling
from ..baselines.two_choices import TwoChoices
from ..baselines.voter import VoterModel
from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..engine.population import Population
from ..engine.simulator import Simulation
from .pipeline import ScenarioSpec, execute
from .runner import run_agent
from .table import ExperimentTable

E10_PROFILES = {"full": {}, "quick": {"n": 96, "rounds": 2000}}
E10B_PROFILES = {
    "full": {},
    "quick": {"n": 100, "seeds": 3, "steps_per_agent": 600},
}

# E10 contenders, in table order; rebuilt inside shards by name.
_E10_FACTORIES = {
    "diversification": lambda w: Diversification(w),
    "voter": lambda w: VoterModel(),
    "2-choices": lambda w: TwoChoices(),
    "3-majority": lambda w: ThreeMajority(),
    "trivial-resampling": lambda w: TrivialResampling(w),
}


def _measure_baseline(params: dict, rng: np.random.Generator) -> dict:
    """E10 shard: one run of one contender from the proportional start."""
    weights = WeightTable(params["vector"])
    tracker = MinCountTracker()
    record = run_agent(
        _E10_FACTORIES[params["protocol"]](weights), weights,
        params["n"], params["rounds"] * params["n"],
        start="proportional", seed=rng, observers=[tracker],
    )
    return {
        "final": [int(v) for v in record.final_colour_counts[: weights.k]],
        "min_seen": int(tracker.min_colour_counts.min()),
    }


def _build_baselines(result) -> ExperimentTable:
    """Format the survival/diversity contrast rows."""
    fair = WeightTable(result.spec.fixed["vector"]).fair_shares()
    table = ExperimentTable(
        "E10",
        "Consensus baselines destroy diversity (Sec 1.1 contrast)",
        ["protocol", "colours alive at end", "min count seen",
         "final max |share − w_i/w|", "sustainable", "diverse-ish"],
    )
    for params, values in result.by_cell():
        (value,) = values
        final = np.asarray(value["final"], dtype=float)
        shares = final / final.sum()
        error = float(np.abs(shares - fair).max())
        alive = int((final >= 1).sum())
        min_seen = value["min_seen"]
        table.add_row(
            params["protocol"], alive, min_seen, error,
            min_seen >= 1, error <= 0.1,
        )
    table.add_note(
        "consensus dynamics started from the proportional split still "
        "fixate; Diversification holds all colours near w_i/w"
    )
    table.add_note(
        "trivial resampling tracks the shares but has no survival "
        "guarantee: counts are Binomial and hit zero with positive "
        "probability (visible at small n; see the integration tests)"
    )
    return table


def spec_baselines(
    n: int = 128,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 3000,
    seed: int = 2718,
) -> ScenarioSpec:
    """E10 as a scenario: one shard per contender, shared run seed."""
    return ScenarioSpec(
        name="e10",
        measure=_measure_baseline,
        grid={"protocol": tuple(_E10_FACTORIES)},
        fixed={"vector": tuple(weight_vector), "n": n, "rounds": rounds},
        base_seed=seed,
        seed_scope="direct",
        build=_build_baselines,
    )


def experiment_baselines(
    n: int = 128,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 3000,
    seed: int = 2718,
) -> ExperimentTable:
    """E10: colour survival and diversity error across protocols.

    Expected shape: only Diversification is simultaneously diverse and
    sustainable.  Consensus dynamics lose colours (min count 0);
    trivial resampling tracks shares but lets counts touch zero and is
    excluded from sustainability.
    """
    return execute(
        spec_baselines(n, weight_vector, rounds=rounds, seed=seed)
    ).table()


def _measure_epidemic(params: dict, rng: np.random.Generator) -> dict:
    """E10b shard: one SIS run at one transmission/recovery ratio."""
    n = params["n"]
    transmission = min(1.0, params["ratio"] * params["recovery"])
    protocol = SISEpidemic(transmission, params["recovery"])
    infected0 = max(
        1, int(params["initial_infected_fraction"] * n)
    )
    colours = [1] * infected0 + [0] * (n - infected0)
    population = Population.from_colours(colours, protocol, k=2)
    Simulation(protocol, population, rng=rng).run(
        params["steps_per_agent"] * n
    )
    return {
        "infected": int(population.colour_counts()[1]),
        "transmission": transmission,
    }


def _build_epidemic(result) -> ExperimentTable:
    """Format the per-ratio survival rows."""
    seeds = result.spec.replications
    table = ExperimentTable(
        "E10b",
        "SIS epidemic threshold (Sec 1.1): the canonical "
        "non-sustainable dynamic",
        ["transmission/recovery", "transmission", "runs survived",
         "mean infected at end", "sustainable-like"],
    )
    for params, values in result.by_cell():
        totals = [value["infected"] for value in values]
        survived = sum(1 for infected in totals if infected > 0)
        table.add_row(
            params["ratio"], values[0]["transmission"],
            f"{survived}/{seeds}", float(np.mean(totals)),
            survived == seeds,
        )
    table.add_note(
        "mean-field threshold at transmission/recovery = 1; compare "
        "E6 where Diversification survives at min dark count >= 1 "
        "with probability 1, independent of parameters"
    )
    return table


def spec_epidemic(
    n: int = 200,
    *,
    ratios=(0.1, 0.5, 1.0, 2.0, 8.0),
    recovery: float = 0.1,
    initial_infected_fraction: float = 0.1,
    steps_per_agent: int = 1200,
    seeds: int = 5,
    base_seed: int = 1848,
) -> ScenarioSpec:
    """E10b as a scenario: ratio sweep × ``seeds`` replications."""
    return ScenarioSpec(
        name="e10b",
        measure=_measure_epidemic,
        grid={"ratio": tuple(ratios)},
        fixed={
            "n": n,
            "recovery": recovery,
            "initial_infected_fraction": initial_infected_fraction,
            "steps_per_agent": steps_per_agent,
        },
        replications=seeds,
        base_seed=base_seed,
        seed_scope="stream",
        build=_build_epidemic,
    )


def experiment_epidemic(
    n: int = 200,
    *,
    ratios=(0.1, 0.5, 1.0, 2.0, 8.0),
    recovery: float = 0.1,
    initial_infected_fraction: float = 0.1,
    steps_per_agent: int = 1200,
    seeds: int = 5,
    base_seed: int = 1848,
) -> ExperimentTable:
    """E10b: SIS epidemic threshold — sustainability by contrast.

    The contact process (Sec 1.1, refs [8, 24, 27]) has an absorbing
    all-susceptible state: below the threshold the infected "colour"
    dies out.  Expected shape: survival probability jumps from ≈0 to
    ≈1 as ``transmission/recovery`` crosses 1, while Diversification
    keeps every colour alive *by construction* at any parameters.
    """
    return execute(
        spec_epidemic(
            n, ratios=ratios, recovery=recovery,
            initial_infected_fraction=initial_infected_fraction,
            steps_per_agent=steps_per_agent, seeds=seeds,
            base_seed=base_seed,
        )
    ).table()
