"""Experiment E5: fairness (Def 1.1(2), Thm 2.12, Sec 2.4).

Runs the agent-level engine with the occupancy tracker and checks that
every agent's time-occupancy of colour ``i`` approaches ``w_i/w`` as
the horizon grows, and that the dark/light split of that time matches
the stationary distribution of the equilibrium chain
(``π(D_i) = w_i/(1+w)``, ``π(L_i) = (w_i/w)/(1+w)``).

The run is cumulative over increasing horizons, so E5 is a one-shard
plan (``"direct"`` seed scope) on the declarative pipeline.
"""

from __future__ import annotations

import numpy as np

from ..analysis.markov import theoretical_stationary
from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.observers import OccupancyTracker
from ..engine.population import Population
from ..engine.simulator import Simulation
from .pipeline import ScenarioSpec, execute
from .table import ExperimentTable
from .workloads import colours_from_counts, proportional_counts

E5_PROFILES = {
    "full": {},
    "quick": {"n": 128, "horizon_rounds": (200, 800)},
}


def run_fairness(
    weights: WeightTable,
    n: int,
    horizons: list[int],
    *,
    seed: int | np.random.Generator | None = None,
) -> list[dict]:
    """Occupancy statistics at increasing horizons (one run, cumulative).

    Returns one summary dict per horizon with max/mean deviations of
    per-agent colour occupancy from ``w_i/w`` and of the (colour, shade)
    occupancy from the chain's stationary distribution.
    """
    weights = weights.copy()
    protocol = Diversification(weights)
    population = Population.from_colours(
        colours_from_counts(proportional_counts(n, weights)), protocol,
        k=weights.k,
    )
    tracker = OccupancyTracker()
    simulation = Simulation(
        protocol, population, rng=seed, observers=[tracker]
    )
    fair = weights.fair_shares()
    pi = theoretical_stationary(weights)
    k = weights.k
    summaries = []
    previous = 0
    for horizon in sorted(horizons):
        simulation.run(horizon - previous)
        previous = horizon
        tracker.flush(simulation)
        occupancy = tracker.occupancy_fractions()
        colour_dev = np.abs(occupancy - fair[None, :])
        shade = tracker.shade_occupancy_fractions()  # (n, k, 2)
        # Stationary vector indexes dark states first.
        stationary_dev = np.abs(
            np.concatenate(
                [shade[:, :, 1], shade[:, :, 0]], axis=1
            ) - pi[None, :]
        )
        summaries.append(
            {
                "horizon": horizon,
                "max_colour_dev": float(colour_dev.max()),
                "mean_colour_dev": float(colour_dev.mean()),
                "max_state_dev": float(stationary_dev.max()),
                "mean_state_dev": float(stationary_dev.mean()),
                "k": k,
            }
        )
    return summaries


def _measure_fairness(params: dict, rng: np.random.Generator) -> dict:
    """E5 shard: one cumulative run over all horizons."""
    n = params["n"]
    horizons = [rounds * n for rounds in params["horizon_rounds"]]
    summaries = run_fairness(
        WeightTable(params["vector"]), n, horizons, seed=rng
    )
    return {"summaries": summaries}


def _build_fairness(result) -> ExperimentTable:
    """Format the per-horizon deviation rows."""
    params = result.cells[0]
    (value,) = result.values()
    summaries = value["summaries"]
    table = ExperimentTable(
        "E5",
        "Fairness: per-agent time-occupancy vs fair shares "
        "(Thm 2.12; chain π of Sec 2.4)",
        ["horizon (steps)", "rounds", "max |occ−w_i/w|",
         "mean |occ−w_i/w|", "max |occ−π|", "mean |occ−π|"],
    )
    for rounds, summary in zip(sorted(params["horizon_rounds"]), summaries):
        table.add_row(
            summary["horizon"],
            rounds,
            summary["max_colour_dev"],
            summary["mean_colour_dev"],
            summary["max_state_dev"],
            summary["mean_state_dev"],
        )
    if len(summaries) >= 2:
        improved = (
            summaries[-1]["mean_colour_dev"] < summaries[0]["mean_colour_dev"]
        )
        table.add_note(
            "mean occupancy deviation decreases with horizon: "
            + ("yes" if improved else "NO — investigate")
        )
    table.add_note(
        "every agent should spend ≈ w_i/w of its time with colour i, "
        "split ≈ w_i/(1+w) dark and ≈ (w_i/w)/(1+w) light"
    )
    return table


def spec_fairness(
    n: int = 192,
    weight_vector=(1.0, 2.0, 3.0),
    horizon_rounds=(200, 800, 3200),
    *,
    seed: int = 31,
) -> ScenarioSpec:
    """E5 as a one-shard scenario (one cumulative occupancy run)."""
    return ScenarioSpec(
        name="e5",
        measure=_measure_fairness,
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "horizon_rounds": tuple(horizon_rounds),
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_fairness,
    )


def experiment_fairness(
    n: int = 192,
    weight_vector=(1.0, 2.0, 3.0),
    horizon_rounds=(200, 800, 3200),
    *,
    seed: int = 31,
    fused: bool = False,
) -> ExperimentTable:
    """E5: per-agent occupancy convergence to the fair shares.

    ``horizon_rounds`` are parallel rounds; time-steps are ``rounds·n``.
    Expected shape: the deviation columns shrink as the horizon grows
    (the paper proves ``(1 ± o(1)) w_i/w`` occupancy for horizons
    ``T' > T = Ω(n^β)``).  ``fused`` routes through the fusion layer;
    the occupancy tracker needs the exact per-change observer stream,
    which the batched engines do not expose, so the shard falls back to
    the per-shard path (the flag is accepted for a uniform CLI).
    """
    return execute(
        spec_fairness(n, weight_vector, horizon_rounds, seed=seed),
        fused=fused,
    ).table()
