"""Replication helpers: run a measurement across independent seeds and
summarise it with confidence intervals.

Simulation papers report means over repetitions; this module provides
the boilerplate so experiments stay focused on their measurement.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..engine.rng import make_rng, spawn


@dataclass(frozen=True)
class Summary:
    """Mean with spread statistics for a replicated measurement."""

    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    count: int

    def as_row(self) -> list[float]:
        """Convenient [mean, std, ci_low, ci_high] for table rows."""
        return [self.mean, self.std, self.ci_low, self.ci_high]


def replicate(
    measurement: Callable[[np.random.Generator], float],
    repetitions: int,
    *,
    base_seed: int | np.random.Generator | None = 0,
    skip_none: bool = True,
) -> list[float]:
    """Run ``measurement`` once per independent child generator.

    Args:
        measurement: Callable taking a generator and returning a scalar
            (or None for "no result", dropped when ``skip_none``).
        repetitions: Number of independent runs.
        base_seed: Seed of the parent generator.
        skip_none: Drop None results instead of failing.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    children = spawn(make_rng(base_seed), repetitions)
    values = []
    for child in children:
        value = measurement(child)
        if value is None:
            if skip_none:
                continue
            raise ValueError("measurement returned None")
        values.append(float(value))
    return values


def summarise(
    values: Sequence[float], *, confidence: float = 0.95
) -> Summary:
    """Mean, deviation and a Student-t confidence interval."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(data.mean())
    if data.size == 1:
        return Summary(mean, 0.0, 0.0, mean, mean, 1)
    std = float(data.std(ddof=1))
    stderr = std / float(np.sqrt(data.size))
    halfwidth = float(
        stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1) * stderr
    )
    return Summary(
        mean=mean,
        std=std,
        stderr=stderr,
        ci_low=mean - halfwidth,
        ci_high=mean + halfwidth,
        count=int(data.size),
    )


def replicate_and_summarise(
    measurement: Callable[[np.random.Generator], float],
    repetitions: int,
    *,
    base_seed: int | np.random.Generator | None = 0,
    confidence: float = 0.95,
) -> Summary:
    """Convenience: :func:`replicate` then :func:`summarise`."""
    return summarise(
        replicate(measurement, repetitions, base_seed=base_seed),
        confidence=confidence,
    )
