"""Replication helpers: run a measurement across independent seeds and
summarise it with confidence intervals.

Simulation papers report means over repetitions; this module provides
the boilerplate so experiments stay focused on their measurement.

:func:`replicate_colour_counts` is the routed entry point for the most
common measurement — final colour counts over R replications.  When the
run is *aggregate-compatible* (Diversification or its
``lighten_probabilities`` ablations on the complete graph), all R
replications are fused into one
:class:`~repro.engine.batched.BatchedAggregateSimulation` — including
under an intervention schedule, which is applied batch-wide between
event segments (so the E6/E7 adversarial sweeps share the batched fast
path).  Agent-level runs (explicit topologies, baseline dynamics) that
have a vectorised kernel fuse into one batched ``(R, n)``
:class:`~repro.engine.array_engine.ArraySimulation` instead; protocols
without a kernel — and population-growing schedules on explicit
topologies — fall back to the scalar per-replication loop.  On every
path a schedule sees an independent copy of the protocol's weight
table per run, never the caller's.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.ablations import UnweightedLightening
from ..core.diversification import Diversification
from ..core.protocol import Protocol
from ..core.weights import WeightTable
from ..engine.rng import make_rng, spawn


@dataclass(frozen=True)
class Summary:
    """Mean with spread statistics for a replicated measurement."""

    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    count: int

    def as_row(self) -> list[float]:
        """Convenient [mean, std, ci_low, ci_high] for table rows."""
        return [self.mean, self.std, self.ci_low, self.ci_high]


def replicate(
    measurement: Callable[[np.random.Generator], float],
    repetitions: int,
    *,
    base_seed: int | np.random.Generator | None = 0,
    skip_none: bool = True,
) -> list[float]:
    """Run ``measurement`` once per independent child generator.

    Args:
        measurement: Callable taking a generator and returning a scalar
            (or None for "no result", dropped when ``skip_none``).
        repetitions: Number of independent runs.
        base_seed: Seed of the parent generator.
        skip_none: Drop None results instead of failing.
    """
    if repetitions < 1:
        raise ValueError("need at least one repetition")
    children = spawn(make_rng(base_seed), repetitions)
    values = []
    for child in children:
        value = measurement(child)
        if value is None:
            if skip_none:
                continue
            raise ValueError("measurement returned None")
        values.append(float(value))
    return values


def summarise(
    values: Sequence[float], *, confidence: float = 0.95
) -> Summary:
    """Mean, deviation and a Student-t confidence interval."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(data.mean())
    if data.size == 1:
        return Summary(mean, 0.0, 0.0, mean, mean, 1)
    std = float(data.std(ddof=1))
    stderr = std / float(np.sqrt(data.size))
    halfwidth = float(
        stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1) * stderr
    )
    return Summary(
        mean=mean,
        std=std,
        stderr=stderr,
        ci_low=mean - halfwidth,
        ci_high=mean + halfwidth,
        count=int(data.size),
    )


def is_aggregate_compatible(
    protocol: Protocol | None = None,
    *,
    topology=None,
    schedule=None,
) -> bool:
    """Whether R replications of a run can share the batched engine.

    The batched engine simulates the configuration chain of the
    Diversification family on the complete graph, so anything that
    needs agent identities (an explicit topology, a non-aggregate
    protocol) must use the scalar path.  Intervention schedules are
    accepted: the batched engine applies them batch-wide between event
    segments, so a ``schedule`` never forces the scalar loop here.
    ``protocol=None`` means plain Diversification.
    """
    del schedule  # any schedule is batched-compatible on this path
    if topology is not None:
        return False
    if protocol is None:
        return True
    return isinstance(protocol, (Diversification, UnweightedLightening))


def _aggregate_lighten_probabilities(
    protocol: Protocol | None, weights: WeightTable
) -> list[float] | None:
    """Per-colour lightening coins of an aggregate-compatible protocol
    (None means the default ``1/w_i``)."""
    if isinstance(protocol, UnweightedLightening):
        return [1.0] * weights.k
    return None


def replicate_colour_counts(
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    replications: int,
    protocol: Protocol | None = None,
    topology=None,
    schedule=None,
    start: str = "worst",
    base_seed: int | np.random.Generator | None = 0,
    batched: bool = True,
    lighten_probabilities: Sequence[float] | None = None,
    engine: str = "auto",
) -> np.ndarray:
    """Final colour counts of R replications, shape ``(R, k)``.

    Routes through :class:`~repro.engine.batched.BatchedAggregateSimulation`
    when ``batched`` is set and the run is aggregate-compatible —
    intervention schedules included, applied batch-wide.  Agent-level
    runs fuse into one batched ``(R, n)``
    :class:`~repro.engine.array_engine.ArraySimulation` when ``batched``
    is set and the protocol/topology/schedule triple has a vectorised
    path; otherwise each replication runs on its own engine seeded by
    an independent child generator of ``base_seed``.  Rows are
    zero-padded to the widest colour set when an intervention schedule
    adds colours mid-run.  A schedule always mutates an independent
    copy of the protocol (one per run on the scalar loop, one shared
    batch copy on the fused paths), never the caller's instance.

    ``engine`` mirrors :func:`~repro.experiments.runner.run_agent`:
    ``"auto"`` applies the routing above, ``"scalar"``/``"array"``
    force the agent-level engines (skipping the aggregate fast path),
    e.g. to benchmark one engine in isolation.
    """
    from ..adversary.schedule import run_with_interventions
    from ..engine.array_engine import ArraySimulation
    from .recorder import _pad_stack
    from .runner import (
        initial_count_rows,
        run_agent,
        run_aggregate,
        use_array_engine,
    )
    from .workloads import colours_from_counts

    if replications < 1:
        raise ValueError("need at least one replication")
    if engine == "auto" and is_aggregate_compatible(
        protocol, topology=topology, schedule=schedule
    ):
        # The whole aggregate family shares one routed path; with a
        # schedule the fused batched engine applies the interventions
        # batch-wide between event segments.
        batch = run_aggregate(
            weights, n, steps,
            start=start,
            seed=base_seed,
            schedule=schedule,
            lighten_probabilities=(
                lighten_probabilities
                if lighten_probabilities is not None
                else _aggregate_lighten_probabilities(protocol, weights)
            ),
            replications=replications,
            batched=batched,
        )
        return batch.final_colour_counts
    if lighten_probabilities is not None:
        # The override is only consumed by the aggregate engines; the
        # agent-level paths run the protocol's own transition rule.
        raise ValueError(
            "lighten_probabilities requires the aggregate path "
            "(engine='auto', no explicit topology or agent-level "
            "protocol); use UnweightedLightening for the unit-coin "
            "ablation on the agent engines"
        )
    # use_array_engine also validates the engine name and rejects
    # engine="array" for population-growing schedules on an explicit
    # topology.
    run_protocol = protocol or Diversification(weights.copy())
    if batched and use_array_engine(
        run_protocol, topology=topology, schedule=schedule, engine=engine
    ):
        if protocol is not None and schedule is not None:
            # The fused engine shares one protocol across all
            # replications; a schedule that widens its weight table
            # must mutate a copy, never the caller's instance.
            run_protocol = copy.deepcopy(protocol)
        # Fuse all R replications into one (R, n) array engine: one
        # shared draw stream, one Python-level loop; interventions
        # apply to every replication at once between segments.
        rng = make_rng(base_seed)
        colour_rows = np.array(
            [
                colours_from_counts(row)
                for row in initial_count_rows(
                    start, n, weights, rng, replications
                )
            ],
            dtype=np.int64,
        )
        simulation = ArraySimulation(
            run_protocol,
            colour_rows,
            k=weights.k,
            topology=topology,
            rng=rng,
        )
        run_with_interventions(simulation, steps, schedule)
        return simulation.colour_counts()
    # Per-replication fallback: one simulator per replication,
    # independent child generators.  run_agent deep-copies the
    # protocol under a schedule, so each replication mutates its own
    # weight table — a shared weighted protocol no longer compounds
    # colours across replications.
    children = spawn(make_rng(base_seed), replications)
    finals = []
    for child in children:
        record = run_agent(
            protocol or Diversification(weights.copy()), weights, n, steps,
            start=start,
            seed=child,
            record_interval=max(1, steps),
            topology=topology,
            schedule=schedule,
            engine=engine,
        )
        finals.append(record.final_colour_counts)
    return _pad_stack(finals)


def replicate_and_summarise(
    measurement: Callable[[np.random.Generator], float],
    repetitions: int,
    *,
    base_seed: int | np.random.Generator | None = 0,
    confidence: float = 0.95,
) -> Summary:
    """Convenience: :func:`replicate` then :func:`summarise`."""
    return summarise(
        replicate(measurement, repetitions, base_seed=base_seed),
        confidence=confidence,
    )
