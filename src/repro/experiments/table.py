"""Result container shared by all experiments in the suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import format_table


@dataclass
class ExperimentTable:
    """One paper-shaped results table.

    Attributes:
        experiment: Short id, e.g. ``"E1"``.
        title: Human-readable description with the paper reference.
        headers: Column names.
        rows: Table rows (values formatted lazily).
        notes: Free-form remarks (expected shape, pass/fail summary).
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row."""
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a remark shown under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Full plain-text rendering."""
        body = format_table(
            self.headers, self.rows, title=f"[{self.experiment}] {self.title}"
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return body

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
