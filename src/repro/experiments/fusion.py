"""Mega-batch fusion layer: run whole scenario sweeps as one engine.

The declarative pipeline executes one shard (grid cell × replication)
at a time — each shard pays its own engine construction and its own
Python-level event loop.  This module fuses *compatible* shards of an
:class:`~repro.experiments.pipeline.ExperimentPlan` into mega-batch
jobs that advance together inside a single vectorised engine:

* aggregate-family measurements pack one
  :class:`~repro.engine.hetero.HeterogeneousAggregateBatch` row per
  shard (per-row weight tables, populations and horizons), so an entire
  weight-skew × k × n sweep runs through one event loop;
* agent-level Diversification measurements pack one ``(R, n)``
  :class:`~repro.engine.array_engine.ArraySimulation` row per shard,
  with per-row lighten tables covering per-row weight vectors.

A measurement opts in by registering a :class:`FusedMeasurement`
(:func:`register_fused`); :func:`fuse` groups a plan's shards by the
implementation's ``group_key`` (the engine-family compatibility key),
and :class:`FusedExecutor` runs each group as one job — shards whose
measurement has no fused implementation, or whose parameters are
incompatible (``group_key`` returns None), fall back to the ordinary
per-shard path inside the same run.  Results are scattered back to
shard order, so :func:`execute_fused` returns the same
:class:`~repro.experiments.pipeline.PlanResult` shape as
:func:`~repro.experiments.pipeline.execute`.

Seeding.  A fused group shares one vectorised draw stream, so fused
results are *distribution*-equivalent to the per-shard path (verified
per cell with KS tests in
``tests/integration/test_fused_equivalence.py``), not bit-identical —
the same contract the batched replication engines established.  The
group's stream is derived deterministically from *all* participating
shard seeds (:func:`fused_rng`), and per-row workload draws (random
starts) still use each shard's own seed, so a fused run is reproducible
from the spec's ``base_seed`` alone.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.weights import WeightTable
from ..engine.hetero import HeterogeneousAggregateBatch
from .faults import NO_RETRY, FaultPlan, InjectedFault, RetryPolicy
from .pipeline import (
    ExperimentPlan,
    PlanResult,
    ScenarioSpec,
    SerialExecutor,
    Shard,
    ShardError,
    ShardResult,
    build_fault_report,
    make_executor,
    plan as expand_plan,
    shard_tasks,
)

__all__ = [
    "FusedMeasurement",
    "FusedJob",
    "FusedPlan",
    "FusedExecutor",
    "register_fused",
    "fused_implementation",
    "fuse",
    "fused_rng",
    "execute_fused",
    "hetero_batch",
    "run_recorded",
    "measure_sweep_final_counts",
    "spec_fused_sweep",
]


@dataclass(frozen=True)
class FusedMeasurement:
    """Fused (mega-batch) implementation of one measurement function.

    Attributes:
        family: Engine family label (``"aggregate"``, ``"array"``),
            shown in docs/plans and part of the grouping key.
        group_key: Maps shard params to a hashable compatibility key —
            shards with equal keys share one mega-batch job; ``None``
            sends the shard to the per-shard fallback path.
        run_group: ``(spec, shards) -> values`` running one group in a
            single fused engine, returning one measurement dict per
            shard *in the given order*.
    """

    family: str
    group_key: Callable[[dict], object]
    run_group: Callable[[ScenarioSpec, list[Shard]], list[dict]]


#: Measurement function -> fused implementation.
_FUSED: dict[Callable, FusedMeasurement] = {}


def register_fused(
    measure: Callable, impl: FusedMeasurement | None
) -> None:
    """Register the fused implementation of a measurement function
    (``None`` clears a registration)."""
    _FUSED[measure] = impl


def fused_implementation(measure: Callable) -> FusedMeasurement | None:
    """The registered fused implementation, or None."""
    return _FUSED.get(measure)


@dataclass(frozen=True)
class FusedJob:
    """One unit of fused execution: a mega-batch group (``impl`` set)
    or a single fallback shard (``impl`` None)."""

    impl: FusedMeasurement | None
    shards: tuple[Shard, ...]


@dataclass(frozen=True)
class FusedPlan:
    """An expanded plan regrouped into fused jobs (shard order is
    recovered at merge time through each shard's index)."""

    plan: ExperimentPlan
    jobs: tuple[FusedJob, ...]

    @property
    def fused_shards(self) -> int:
        """Number of shards riding a mega-batch job."""
        return sum(
            len(job.shards) for job in self.jobs if job.impl is not None
        )

    @property
    def fallback_shards(self) -> int:
        """Number of shards on the per-shard fallback path."""
        return sum(
            len(job.shards) for job in self.jobs if job.impl is None
        )


def fuse(expanded: ExperimentPlan) -> FusedPlan:
    """Group a plan's shards into mega-batch jobs.

    Shards are grouped by ``(measurement, group_key(params))`` — the
    measurement identifies the fused implementation and the key its
    engine-family compatibility class.  Grouping keeps plan order
    within each group, and fallback shards (no implementation, or an
    incompatible parameter combination) become single-shard jobs.
    """
    impl = _FUSED.get(expanded.spec.measure)
    groups: dict[object, list[Shard]] = {}
    fallback: list[Shard] = []
    for shard in expanded.shards:
        key = impl.group_key(dict(shard.params)) if impl else None
        if key is None:
            fallback.append(shard)
        else:
            groups.setdefault(key, []).append(shard)
    jobs = [
        FusedJob(impl=impl, shards=tuple(shards))
        for shards in groups.values()
    ] + [FusedJob(impl=None, shards=(shard,)) for shard in fallback]
    return FusedPlan(plan=expanded, jobs=tuple(jobs))


def fused_rng(shards: Sequence[Shard]) -> np.random.Generator:
    """One engine stream derived from *all* the group's shard seeds.

    Each shard contributes two words of its seed sequence's output
    (``generate_state`` is pure — the shard's own stream, used by the
    per-shard path and for per-row workload draws, is untouched); the
    pooled words seed the group generator, so the fused stream is a
    deterministic function of the spec's seeds and the group
    membership.
    """
    words = np.concatenate(
        [shard.seed.generate_state(2, dtype=np.uint32) for shard in shards]
    )
    entropy = [int(word) for word in words]
    return np.random.default_rng(np.random.SeedSequence(entropy=entropy))


def _group_members(shards: Sequence[Shard]) -> str:
    """One line per member shard of a mega-batch group, so a failed
    group is diagnosable without re-running serially."""
    return "\n".join(
        f"  shard {shard.index} (cell {shard.cell}, replication "
        f"{shard.replication}): params {dict(shard.params)!r}"
        for shard in shards
    )


class FusedExecutor:
    """Run a fused plan: mega-batch jobs through their fused engines,
    fallback shards through an ordinary shard executor (serial by
    default, a process pool when the caller asked for ``jobs``) — the
    fallback shards are exactly the independent per-shard work that
    benefits from parallelism.

    With a :class:`~repro.experiments.cache.ShardCache` each group is
    partitioned into hits and misses before its engine is built: only
    the miss rows run through the fused engine (the miss subset forms
    its own :func:`fused_rng` group stream — distribution-equivalent,
    the established fused contract), cached and fresh values are
    scattered back in shard order, and fresh values are written back
    under the group's ``fused:<family>`` key space.  Fallback shards
    cache under the per-shard (``"shard"``) key space they share with
    the serial and process paths.

    Timing semantics: a mega-batch job is one engine call, so its
    shards have no independent wall-clocks — each computed shard of
    the group records the engine call's elapsed time divided evenly
    across the rows that actually ran (an attribution, not a
    measurement; fallback shards keep real per-shard timings, cache
    hits report their stored original compute time).
    """

    def __init__(self, shard_executor=None, *, cache=None, retry=None,
                 faults=None, max_failures=None):
        self.shard_executor = shard_executor or SerialExecutor()
        self.cache = cache
        self.retry: RetryPolicy | None = retry
        self.faults: FaultPlan | None = faults
        self.max_failures = max_failures
        #: Per-run hit/miss counters of the last :meth:`run_plan` call
        #: (None when no cache is attached).
        self.cache_stats: dict | None = None
        #: ``(shard, ShardOutcome)`` pairs of the last run's per-shard
        #: (fallback + degraded) work, for the fault report.
        self.shard_pairs: list = []
        #: Mega-batch groups that exhausted their fused attempts and
        #: degraded to per-shard execution in the last run.
        self.degraded_groups: list[dict] = []

    @property
    def jobs(self) -> int:
        """Worker processes available to the fallback shards."""
        return self.shard_executor.jobs

    @property
    def _degrading(self) -> bool:
        """Graceful degradation is armed whenever any fault-tolerance
        knob (retry, fault injection, failure budget) is supplied."""
        return (
            self.retry is not None
            or self.faults is not None
            or self.max_failures is not None
        )

    def _store_fresh(self, store, key, shard, value, seconds, *,
                     experiment):
        if self.faults is not None:
            self.faults.cache_put(
                store, shard.index, key, value, seconds,
                experiment=experiment,
            )
        else:
            store.put(key, value, seconds, experiment=experiment)

    def _run_group(self, spec, impl, to_run, keys, store, outcomes):
        """One mega-batch group: up to two fused attempts when
        degradation is armed, then surrender the members to the
        per-shard fallback path (returned) instead of raising."""
        policy = self.retry or NO_RETRY
        tries = 2 if self._degrading and policy.max_attempts >= 2 else 1
        detail = ""
        for attempt in range(1, tries + 1):
            start = time.perf_counter()
            try:
                if self.faults is not None:
                    injected = self.faults.group_fault(
                        [shard.index for shard in to_run], attempt
                    )
                    if injected is not None:
                        raise InjectedFault(injected)
                values = impl.run_group(spec, to_run)
            except Exception:
                detail = traceback.format_exc()
                continue
            elapsed = time.perf_counter() - start
            if len(values) != len(to_run):
                raise ShardError(
                    spec.name,
                    to_run[0],
                    f"fused implementation returned {len(values)} values "
                    f"for {len(to_run)} shards; group members:\n"
                    + _group_members(to_run),
                )
            # Even attribution of the engine call's wall-clock (see
            # the class docstring) across the rows that actually ran.
            per_shard = elapsed / len(to_run)
            for shard, value in zip(to_run, values):
                if store is not None:
                    self._store_fresh(
                        store, keys[shard.index], shard, value,
                        per_shard, experiment=spec.name,
                    )
                outcomes[shard.index] = (value, per_shard)
            return []
        if not self._degrading:
            # A mega-batch group fails as one engine call — there is
            # no single failing shard, so the error is attributed to
            # the group's first shard; every member shard's params are
            # listed for diagnosis.
            raise ShardError(
                spec.name,
                to_run[0],
                f"mega-batch group of {len(to_run)} shards failed "
                "as one engine call (error attributed to the "
                "group's first shard); group members:\n"
                + _group_members(to_run)
                + "\n"
                + detail,
            )
        self.degraded_groups.append(
            {
                "family": impl.family,
                "shards": [shard.index for shard in to_run],
                "fused_attempts": tries,
                "error": detail,
            }
        )
        return list(to_run)

    def run_plan(self, fused_plan: FusedPlan) -> list[tuple[dict, float]]:
        spec = fused_plan.plan.spec
        store = self.cache
        outcomes: list[tuple[dict, float] | None] = [None] * len(
            fused_plan.plan.shards
        )
        self.shard_pairs = []
        self.degraded_groups = []
        hits = misses = 0
        fallback: list[Shard] = []
        for job in fused_plan.jobs:
            if job.impl is None:
                fallback.extend(job.shards)
                continue
            members = list(job.shards)
            if store is not None:
                from .cache import lookup_shards

                keys, cached, to_run = lookup_shards(
                    store, spec, members,
                    mode=f"fused:{job.impl.family}",
                )
                for index, entry in cached.items():
                    outcomes[index] = (
                        entry["value"], float(entry["seconds"])
                    )
                hits += len(cached)
                misses += len(to_run)
            else:
                keys, to_run = {}, members
            if not to_run:
                continue
            fallback.extend(
                self._run_group(spec, job.impl, to_run, keys, store,
                                outcomes)
            )
        if fallback:
            # Degraded group members join the ordinary fallback shards
            # here and cache under the per-shard ("shard") key space.
            if store is not None:
                from .cache import lookup_shards

                keys, cached, to_run = lookup_shards(
                    store, spec, fallback
                )
                for index, entry in cached.items():
                    outcomes[index] = (
                        entry["value"], float(entry["seconds"])
                    )
                hits += len(cached)
                misses += len(to_run)
            else:
                keys, to_run = {}, fallback
            tasks = shard_tasks(to_run, self.faults)
            shard_outcomes = (
                self.shard_executor.run_shards(
                    spec.measure, tasks, self.retry or NO_RETRY,
                    stop_on_failure=self.max_failures is None,
                )
                if tasks
                else []
            )
            failure: ShardError | None = None
            for shard, outcome in zip(to_run, shard_outcomes):
                if outcome is None:
                    continue
                self.shard_pairs.append((shard, outcome))
                if outcome.error is not None:
                    if failure is None:
                        failure = ShardError.from_outcome(
                            spec.name, shard, outcome
                        )
                    continue
                if store is not None:
                    self._store_fresh(
                        store, keys[shard.index], shard, outcome.value,
                        outcome.seconds, experiment=spec.name,
                    )
                outcomes[shard.index] = (outcome.value, outcome.seconds)
            if failure is not None and (
                self.max_failures is None
                or sum(
                    1
                    for _, outcome in self.shard_pairs
                    if outcome.error is not None
                )
                > int(self.max_failures)
            ):
                raise failure
        if store is not None:
            self.cache_stats = {
                "enabled": True,
                "hits": hits,
                "misses": misses,
                "dir": str(store.directory),
            }
        else:
            self.cache_stats = None
        return outcomes


def execute_fused(
    spec_or_plan: ScenarioSpec | ExperimentPlan,
    *,
    jobs: int | None = None,
    executor=None,
    cache=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    max_failures: int | None = None,
) -> PlanResult:
    """Fused counterpart of :func:`~repro.experiments.pipeline.execute`.

    Expands the spec, fuses compatible shards into mega-batch jobs and
    merges the results back into shard order.  Mega-batch jobs run
    in-process (each is one engine call); ``jobs``/``executor`` apply
    to the fallback shards, which are ordinary per-shard work.  With
    ``cache`` set (a :class:`~repro.experiments.cache.ShardCache` or a
    directory path) each group runs only its cache misses — an
    overlapping sweep computes only the new cells.  Usually reached
    through ``execute(..., fused=True)``.

    With any of ``retry``/``faults``/``max_failures`` set, graceful
    degradation is armed: a failed mega-batch group retries once fused
    (when the policy allows a second attempt) and then degrades to
    per-shard execution instead of killing the sweep, the degraded
    shards ride the ordinary fallback path (per-shard retry policy,
    per-shard cache key space), and the returned result carries a
    ``fault_report`` recording degradations, retries and failures.
    """
    if isinstance(spec_or_plan, ScenarioSpec):
        expanded = expand_plan(spec_or_plan)
    else:
        expanded = spec_or_plan
    fused_plan = fuse(expanded)
    if executor is None:
        executor = make_executor(jobs)
    if cache is not None:
        from .cache import resolve_cache

        cache = resolve_cache(cache)
    track_faults = (
        retry is not None or faults is not None or max_failures is not None
    )
    runner = FusedExecutor(
        executor, cache=cache, retry=retry, faults=faults,
        max_failures=max_failures,
    )
    start = time.perf_counter()
    outcomes = runner.run_plan(fused_plan)
    elapsed = time.perf_counter() - start
    results = [
        ShardResult(shard=shard, value=value, seconds=seconds)
        for shard, (value, seconds) in (
            (shard, outcome)
            for shard, outcome in zip(expanded.shards, outcomes)
            if outcome is not None
        )
    ]
    fault_report = None
    if track_faults:
        fault_report = build_fault_report(
            retry, faults, runner.shard_pairs,
            degraded_groups=runner.degraded_groups,
            max_failures=max_failures,
        )
        # Fused-computed shards never appear in shard_pairs; count them
        # into the totals so the report covers the whole plan.
        fused_ok = sum(
            1
            for shard, outcome in zip(expanded.shards, outcomes)
            if outcome is not None
        ) - sum(
            1
            for _, pair_outcome in runner.shard_pairs
            if pair_outcome.error is None
        )
        fault_report["total"] = len(expanded.shards)
        fault_report["completed"] += fused_ok
    return PlanResult(
        spec=expanded.spec,
        cells=expanded.cells,
        results=results,
        jobs=runner.jobs,
        elapsed_seconds=elapsed,
        cache_stats=runner.cache_stats,
        fault_report=fault_report,
    )


# ----------------------------------------------------------------------
# Aggregate-family helpers shared by the fused implementations


def hetero_batch(
    shards: Sequence[Shard], *, start: str = "worst"
) -> HeterogeneousAggregateBatch:
    """One heterogeneous engine row per shard.

    Each shard's params must carry ``vector`` (weight vector) and ``n``
    (population size); the start workload (shard param ``start``, else
    the keyword default) is materialised with the *shard's own* seed,
    so random starts match the per-shard path's distribution exactly.
    The engine stream pools all shard seeds (:func:`fused_rng`).
    """
    from .runner import initial_counts

    tables = [WeightTable(shard.params["vector"]) for shard in shards]
    darks = [
        initial_counts(
            shard.params.get("start", start),
            int(shard.params["n"]),
            table,
            np.random.default_rng(shard.seed),
        )
        for shard, table in zip(shards, tables)
    ]
    return HeterogeneousAggregateBatch(
        tables, darks, rng=fused_rng(shards)
    )


def run_recorded(
    engine: HeterogeneousAggregateBatch,
    steps: np.ndarray,
    intervals: np.ndarray,
) -> list[dict]:
    """Advance each row by its own ``steps[r]`` further time-steps,
    snapshotting its counts every ``intervals[r]`` of them.

    ``steps`` counts from each row's *current* clock, so the helper
    also works on a pre-advanced engine.  Mirrors
    :class:`~repro.experiments.recorder.CountRecorder` applied per row:
    a snapshot at the start, one at every whole interval, and an
    unconditional one at the final time (no duplicate when the
    interval divides it).  Returns one dict per row with ``times``
    (list of ints, absolute row clocks) and ``dark``/``light``
    ``(T_r, k_max)`` arrays.
    """
    rows = engine.rows
    steps = np.asarray(steps, dtype=np.int64)
    if (steps < 0).any():
        raise ValueError("steps must be non-negative")
    intervals = np.asarray(intervals, dtype=np.int64)
    if (intervals < 1).any():
        raise ValueError("intervals must be >= 1")
    origin = engine.times()
    horizons = origin + steps
    dark = engine.dark_counts()
    light = engine.light_counts()
    series = [
        {
            "times": [int(origin[r])],
            "dark": [dark[r]],
            "light": [light[r]],
        }
        for r in range(rows)
    ]
    multiple = np.ones(rows, dtype=np.int64)
    while True:
        times = engine.times()
        active = times < horizons
        if not active.any():
            break
        target = np.minimum(origin + multiple * intervals, horizons)
        target = np.where(active, np.maximum(target, times), times)
        engine.run_to(target)
        times = engine.times()
        dark = engine.dark_counts()
        light = engine.light_counts()
        for r in np.flatnonzero(active):
            series[r]["times"].append(int(times[r]))
            series[r]["dark"].append(dark[r])
            series[r]["light"].append(light[r])
        reached = active & (times == origin + multiple * intervals)
        multiple[reached] += 1
    for row in series:
        row["dark"] = np.asarray(row["dark"])
        row["light"] = np.asarray(row["light"])
    return series


# ----------------------------------------------------------------------
# The generic replicated-sweep measurement (benchmark/e17 workload)


def measure_sweep_final_counts(
    params: dict, rng: np.random.Generator
) -> dict:
    """One replication of one sweep cell: final colour counts after
    ``rounds * n`` steps of the aggregate Diversification dynamics."""
    from .runner import run_aggregate

    weights = WeightTable(params["vector"])
    n = int(params["n"])
    steps = int(params["rounds"]) * n
    record = run_aggregate(
        weights, n, steps,
        start=params.get("start", "worst"),
        seed=rng,
        record_interval=max(1, steps),
    )
    return {"counts": [int(c) for c in record.final_colour_counts]}


def _fused_sweep_final_counts(
    spec: ScenarioSpec, shards: list[Shard]
) -> list[dict]:
    """All sweep rows (cells × replications) in one heterogeneous
    engine: per-row weights, populations and horizons."""
    engine = hetero_batch(shards)
    steps = np.array(
        [
            int(shard.params["rounds"]) * int(shard.params["n"])
            for shard in shards
        ],
        dtype=np.int64,
    )
    engine.run(steps)
    counts = engine.colour_counts()
    ks = engine.ks()
    return [
        {"counts": [int(c) for c in counts[r, : ks[r]]]}
        for r in range(len(shards))
    ]


register_fused(
    measure_sweep_final_counts,
    FusedMeasurement(
        family="aggregate",
        group_key=lambda params: "aggregate",
        run_group=_fused_sweep_final_counts,
    ),
)


def spec_fused_sweep(
    weight_vectors=((1.0, 1.0, 1.0), (1.0, 2.0, 3.0), (1.0, 2.0, 3.0, 4.0),
                    (1.0, 3.0, 9.0)),
    ns=(400, 450, 500, 550, 600, 640),
    *,
    rounds: int = 30,
    replications: int = 50,
    base_seed: int = 1717,
    start: str = "worst",
) -> ScenarioSpec:
    """A heterogeneous (weight skew × k × n) replicated sweep.

    The default grid is the E17 acceptance workload: 4 weight vectors ×
    6 population sizes = 24 cells × R replications, every cell with its
    own weights, colour count and horizon — the shape of the paper's
    phase-diagram tables.  Fused execution packs all ``24 R`` rows into
    one :class:`~repro.engine.hetero.HeterogeneousAggregateBatch`.
    """
    return ScenarioSpec(
        name="e17",
        measure=measure_sweep_final_counts,
        grid={
            "vector": tuple(tuple(v) for v in weight_vectors),
            "n": tuple(int(n) for n in ns),
        },
        fixed={"rounds": int(rounds), "start": start},
        replications=int(replications),
        base_seed=base_seed,
        seed_scope="stream",
    )
