"""Content-addressed shard result cache for the declarative pipeline.

Every sweep used to recompute all of its shards from scratch, even when
a grid cell with identical (parameters, seed, measurement, code
version) had already been computed by a previous run.  This module
generalises the spec-level resume fingerprint of
:mod:`repro.experiments.checkpoint` to *per-shard* keys: a
:class:`ShardCache` is an on-disk store addressed by
:func:`shard_key`, a stable SHA-256 of

* the **measurement identity** — ``module:qualname`` of the
  measurement callable plus a hash of its defining module's source;
* the **code version** — a fingerprint over every ``*.py`` file of the
  installed ``repro`` package (:func:`package_fingerprint`), so any
  library change invalidates rather than silently replaying;
* the **backend selection** — resolved backend name and its dtype
  table (:func:`backend_fingerprint`), so a dtype-width change can
  never replay stale bits;
* the shard's **parameters** (key-order independent: the JSON document
  is dumped with sorted keys) and its **resolved seed**
  (``SeedSequence`` entropy + spawn key);
* the **execution mode** — ``"shard"`` for the bit-identical per-shard
  paths (serial and process pool share one key space: they compute
  identical values) and ``"fused:<family>"`` for mega-batch values,
  which are only distribution-equivalent to the per-shard path and
  therefore live in their own key space.

Cached values round-trip through JSON exactly like resumed checkpoint
shards (``repro-plan-ckpt/v1`` precedent), so a warm run's tables are
byte-identical to a cold run's — asserted end to end by
``benchmarks/bench_e19_cache.py`` and the warm-vs-cold CI job.

Seed scopes and overlap.  Whether an *overlapping* sweep hits depends
on the spec's seed scope: ``"cell"`` and ``"direct"`` scopes derive
each shard's seed from its cell parameters, so shared cells keep their
keys when the grid grows; ``"stream"`` scope ties seeds to the shard
index, so only an unchanged plan prefix can hit.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import inspect
import json
import os
import pathlib
import sys
from dataclasses import dataclass

import numpy as np

from ..engine.backend import resolve_backend
from .export import _plain_tree, spec_to_payload
from .pipeline import ScenarioSpec, Shard

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "ShardCache",
    "backend_fingerprint",
    "lookup_shards",
    "measurement_fingerprint",
    "package_fingerprint",
    "resolve_cache",
    "shard_key",
    "spec_fingerprint",
]

CACHE_FORMAT = "repro-shard-cache/v1"

#: Default cache directory of the CLI's ``--cache`` flag.
DEFAULT_CACHE_DIR = ".repro-cache"


# ----------------------------------------------------------------------
# Fingerprints: the invalidation components of a shard key


@functools.lru_cache(maxsize=None)
def package_fingerprint() -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package.

    The cache's code-version component: editing *any* library module —
    an engine kernel, a table builder, a seeding helper — changes this
    fingerprint and therefore every shard key, so stale values are
    recomputed, never replayed.  Hashed once per process.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _module_source_hash(module_name: str) -> str | None:
    """SHA-256 of a module's source text, or None when unavailable
    (interactive definitions, frozen modules)."""
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except Exception:
            return None
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return None
    return hashlib.sha256(source.encode()).hexdigest()


def measurement_fingerprint(measure) -> dict:
    """Identity of a measurement callable: its ``module:qualname``
    reference plus a hash of its defining module's source, so editing
    the measurement (or a helper beside it) invalidates its entries
    even when the measurement lives outside the ``repro`` package."""
    return {
        "ref": f"{measure.__module__}:{measure.__qualname__}",
        "source": _module_source_hash(measure.__module__),
    }


def _dtype_label(dtype) -> str:
    """Canonical name of a backend dtype object (``'int64'``, ...)."""
    try:
        return str(np.dtype(dtype))
    except TypeError:
        return str(dtype)


def backend_fingerprint(backend=None) -> dict:
    """The resolved backend's name and dtype table.

    Part of every shard key: values computed under one backend or
    dtype-width configuration are never replayed under another.
    """
    resolved = resolve_backend(backend)
    dtypes = resolved.dtypes
    return {
        "name": resolved.name,
        "dtypes": {
            "int64": _dtype_label(dtypes.int64),
            "float64": _dtype_label(dtypes.float64),
            "uint64": _dtype_label(dtypes.uint64),
            "bool": _dtype_label(dtypes.bool_),
        },
    }


def spec_fingerprint(spec: ScenarioSpec) -> str:
    """Stable hash of the spec's serialised form (grid, fixed params,
    replications, seeding rule) — the checkpoint resume-compatibility
    key, canonical home since the per-shard generalisation."""
    doc = json.dumps(spec_to_payload(spec), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


def _seed_payload(seed: np.random.SeedSequence) -> dict:
    """JSON form of a resolved shard seed (same fields the plan
    artifacts record, plus the pool size for completeness)."""
    return {
        "entropy": _plain_tree(seed.entropy),
        "spawn_key": [int(key) for key in seed.spawn_key],
        "pool_size": int(seed.pool_size),
    }


def shard_key(
    spec: ScenarioSpec,
    shard: Shard,
    *,
    mode: str = "shard",
    backend=None,
    code_version: str | None = None,
) -> str:
    """Content address of one shard's measurement value.

    The key is a SHA-256 over a sorted-keys JSON document, so it is
    independent of dict insertion order and of Python hash
    randomisation (``PYTHONHASHSEED``), and it changes whenever the
    measurement source, the library code version, the backend dtype
    table, the shard parameters, the resolved seed or the execution
    mode change.  ``code_version`` overrides the package fingerprint
    (tests use this to model a library edit).
    """
    doc = {
        "format": CACHE_FORMAT,
        "mode": mode,
        "measurement": measurement_fingerprint(spec.measure),
        "code": (
            code_version if code_version is not None
            else package_fingerprint()
        ),
        "backend": backend_fingerprint(backend),
        "params": _plain_tree(dict(shard.params)),
        "seed": _seed_payload(shard.seed),
    }
    text = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ShardCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ShardCache:
    """Content-addressed on-disk store of shard measurement values.

    Entries live at ``<directory>/<key[:2]>/<key>.json`` (two-level
    fan-out keeps directory listings manageable for big sweeps); each
    file is a self-describing ``repro-shard-cache/v1`` document holding
    the measurement value and the compute wall-clock.  Writes are
    atomic (temp file + rename), so concurrent runs sharing a cache
    directory can only ever observe complete entries; unreadable,
    foreign-format or key-mismatched files are treated as misses and
    overwritten on the next store.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardCache({str(self.directory)!r})"

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of a key's entry."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored ``{"value", "seconds"}`` of ``key``, or None."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if doc.get("format") != CACHE_FORMAT or doc.get("key") != key:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return {
            "value": doc["value"],
            "seconds": float(doc.get("seconds", 0.0)),
        }

    def put(
        self, key: str, value: dict, seconds: float, *,
        experiment: str | None = None,
    ) -> pathlib.Path:
        """Store a freshly computed value under ``key`` (atomic)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "experiment": experiment,
            "seconds": float(seconds),
            "value": _plain_tree(value),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc) + "\n")
        os.replace(tmp, path)
        self.stats.stores += 1
        return path


def resolve_cache(
    cache: "ShardCache | str | os.PathLike | None",
) -> ShardCache | None:
    """Pass a :class:`ShardCache` through; wrap a path; None stays None."""
    if cache is None or isinstance(cache, ShardCache):
        return cache
    return ShardCache(cache)


def lookup_shards(
    store: ShardCache,
    spec: ScenarioSpec,
    shards,
    *,
    mode: str = "shard",
) -> tuple[dict, dict, list]:
    """Partition shards into cache hits and misses.

    Returns ``(keys, hits, misses)``: ``keys`` maps each shard index to
    its content address, ``hits`` maps hit indices to their stored
    ``{"value", "seconds"}`` entries, and ``misses`` lists the shards
    to compute, in the given order.
    """
    keys: dict[int, str] = {}
    hits: dict[int, dict] = {}
    misses: list = []
    for shard in shards:
        key = shard_key(spec, shard, mode=mode)
        keys[shard.index] = key
        entry = store.get(key)
        if entry is None:
            misses.append(shard)
        else:
            hits[shard.index] = entry
    return keys, hits, misses
