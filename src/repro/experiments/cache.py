"""Content-addressed shard result cache for the declarative pipeline.

Every sweep used to recompute all of its shards from scratch, even when
a grid cell with identical (parameters, seed, measurement, code
version) had already been computed by a previous run.  This module
generalises the spec-level resume fingerprint of
:mod:`repro.experiments.checkpoint` to *per-shard* keys: a
:class:`ShardCache` is an on-disk store addressed by
:func:`shard_key`, a stable SHA-256 of

* the **measurement identity** — ``module:qualname`` of the
  measurement callable plus a hash of its defining module's source;
* the **code version** — a fingerprint over every ``*.py`` file of the
  installed ``repro`` package (:func:`package_fingerprint`), so any
  library change invalidates rather than silently replaying;
* the **backend selection** — resolved backend name and its dtype
  table (:func:`backend_fingerprint`), so a dtype-width change can
  never replay stale bits;
* the shard's **parameters** (key-order independent: the JSON document
  is dumped with sorted keys) and its **resolved seed**
  (``SeedSequence`` entropy + spawn key);
* the **execution mode** — ``"shard"`` for the bit-identical per-shard
  paths (serial and process pool share one key space: they compute
  identical values) and ``"fused:<family>"`` for mega-batch values,
  which are only distribution-equivalent to the per-shard path and
  therefore live in their own key space.

Cached values round-trip through JSON exactly like resumed checkpoint
shards (``repro-plan-ckpt/v1`` precedent), so a warm run's tables are
byte-identical to a cold run's — asserted end to end by
``benchmarks/bench_e19_cache.py`` and the warm-vs-cold CI job.

Seed scopes and overlap.  Whether an *overlapping* sweep hits depends
on the spec's seed scope: ``"cell"`` and ``"direct"`` scopes derive
each shard's seed from its cell parameters, so shared cells keep their
keys when the grid grows; ``"stream"`` scope ties seeds to the shard
index, so only an unchanged plan prefix can hit.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import inspect
import json
import os
import pathlib
import sys
import warnings
from dataclasses import dataclass

import numpy as np

from ..engine.backend import resolve_backend
from .export import _plain_tree, spec_to_payload
from .pipeline import ScenarioSpec, Shard

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "ShardCache",
    "backend_fingerprint",
    "lookup_shards",
    "measurement_fingerprint",
    "package_fingerprint",
    "resolve_cache",
    "shard_key",
    "spec_fingerprint",
    "verify_cache",
]

CACHE_FORMAT = "repro-shard-cache/v1"

#: Default cache directory of the CLI's ``--cache`` flag.
DEFAULT_CACHE_DIR = ".repro-cache"


# ----------------------------------------------------------------------
# Fingerprints: the invalidation components of a shard key


@functools.lru_cache(maxsize=None)
def package_fingerprint() -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package.

    The cache's code-version component: editing *any* library module —
    an engine kernel, a table builder, a seeding helper — changes this
    fingerprint and therefore every shard key, so stale values are
    recomputed, never replayed.  Hashed once per process.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _module_source_hash(module_name: str) -> str | None:
    """SHA-256 of a module's source text, or None when unavailable
    (interactive definitions, frozen modules)."""
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except Exception:
            return None
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return None
    return hashlib.sha256(source.encode()).hexdigest()


def measurement_fingerprint(measure) -> dict:
    """Identity of a measurement callable: its ``module:qualname``
    reference plus a hash of its defining module's source, so editing
    the measurement (or a helper beside it) invalidates its entries
    even when the measurement lives outside the ``repro`` package."""
    return {
        "ref": f"{measure.__module__}:{measure.__qualname__}",
        "source": _module_source_hash(measure.__module__),
    }


def _dtype_label(dtype) -> str:
    """Canonical name of a backend dtype object (``'int64'``, ...)."""
    try:
        return str(np.dtype(dtype))
    except TypeError:
        return str(dtype)


def backend_fingerprint(backend=None) -> dict:
    """The resolved backend's name and dtype table.

    Part of every shard key: values computed under one backend or
    dtype-width configuration are never replayed under another.
    """
    resolved = resolve_backend(backend)
    dtypes = resolved.dtypes
    return {
        "name": resolved.name,
        "dtypes": {
            "int64": _dtype_label(dtypes.int64),
            "float64": _dtype_label(dtypes.float64),
            "uint64": _dtype_label(dtypes.uint64),
            "bool": _dtype_label(dtypes.bool_),
        },
    }


def spec_fingerprint(spec: ScenarioSpec) -> str:
    """Stable hash of the spec's serialised form (grid, fixed params,
    replications, seeding rule) — the checkpoint resume-compatibility
    key, canonical home since the per-shard generalisation."""
    doc = json.dumps(spec_to_payload(spec), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()


def _seed_payload(seed: np.random.SeedSequence) -> dict:
    """JSON form of a resolved shard seed (same fields the plan
    artifacts record, plus the pool size for completeness)."""
    return {
        "entropy": _plain_tree(seed.entropy),
        "spawn_key": [int(key) for key in seed.spawn_key],
        "pool_size": int(seed.pool_size),
    }


def shard_key(
    spec: ScenarioSpec,
    shard: Shard,
    *,
    mode: str = "shard",
    backend=None,
    code_version: str | None = None,
) -> str:
    """Content address of one shard's measurement value.

    The key is a SHA-256 over a sorted-keys JSON document, so it is
    independent of dict insertion order and of Python hash
    randomisation (``PYTHONHASHSEED``), and it changes whenever the
    measurement source, the library code version, the backend dtype
    table, the shard parameters, the resolved seed or the execution
    mode change.  ``code_version`` overrides the package fingerprint
    (tests use this to model a library edit).
    """
    doc = {
        "format": CACHE_FORMAT,
        "mode": mode,
        "measurement": measurement_fingerprint(spec.measure),
        "code": (
            code_version if code_version is not None
            else package_fingerprint()
        ),
        "backend": backend_fingerprint(backend),
        "params": _plain_tree(dict(shard.params)),
        "seed": _seed_payload(shard.seed),
    }
    text = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ShardCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0


def _entry_problem(doc, key: str | None) -> str | None:
    """Why a parsed cache document is unusable, or None if it is fine.
    ``key`` is the expected content address (None during a directory
    scan, where the filename supplies it)."""
    if not isinstance(doc, dict):
        return f"not a JSON object ({type(doc).__name__})"
    if doc.get("format") != CACHE_FORMAT:
        return f"foreign format {doc.get('format')!r}"
    if key is not None and doc.get("key") != key:
        return f"key mismatch (stored {doc.get('key')!r})"
    if not isinstance(doc.get("value"), dict):
        return "missing or non-object 'value'"
    return None


class ShardCache:
    """Content-addressed on-disk store of shard measurement values.

    Entries live at ``<directory>/<key[:2]>/<key>.json`` (two-level
    fan-out keeps directory listings manageable for big sweeps); each
    file is a self-describing ``repro-shard-cache/v1`` document holding
    the measurement value and the compute wall-clock.  Writes are
    atomic (temp file + rename), so this library's own runs can only
    ever observe complete entries — but a crash between an external
    writer's truncate and write, filesystem damage, or the fault
    harness's ``tear-cache`` injection can still leave a torn file
    behind.  :meth:`get` treats any such entry (unparseable JSON,
    foreign format, key mismatch, missing value) as a miss and moves
    the bad file to ``<directory>/quarantine/`` with a warning, so one
    torn write can never poison every warm run that hits it; the next
    store rewrites the entry in place.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardCache({str(self.directory)!r})"

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of a key's entry."""
        return self.directory / key[:2] / f"{key}.json"

    def quarantine(self, path: pathlib.Path, reason: str) -> pathlib.Path:
        """Move a bad entry to ``<directory>/quarantine/`` (collision-
        safe) and warn, so corruption is preserved for diagnosis
        instead of crashing or silently replaying."""
        qdir = self.directory / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / f"{path.name}.{serial}"
        os.replace(path, target)
        self.stats.quarantined += 1
        warnings.warn(
            f"quarantined corrupt cache entry {path.name} -> "
            f"{target.relative_to(self.directory)} ({reason}); "
            "treating as a miss",
            RuntimeWarning,
            stacklevel=3,
        )
        return target

    def get(self, key: str) -> dict | None:
        """The stored ``{"value", "seconds"}`` of ``key``, or None.

        A present-but-corrupt entry counts as a miss and is quarantined
        (see the class docstring); a missing file is a plain miss.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            self.quarantine(path, f"invalid JSON: {err}")
            self.stats.misses += 1
            return None
        problem = _entry_problem(doc, key)
        if problem is not None:
            self.quarantine(path, problem)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return {
            "value": doc["value"],
            "seconds": float(doc.get("seconds", 0.0)),
        }

    def put(
        self, key: str, value: dict, seconds: float, *,
        experiment: str | None = None,
    ) -> pathlib.Path:
        """Store a freshly computed value under ``key`` (atomic)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "experiment": experiment,
            "seconds": float(seconds),
            "value": _plain_tree(value),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc) + "\n")
        os.replace(tmp, path)
        self.stats.stores += 1
        return path


def resolve_cache(
    cache: "ShardCache | str | os.PathLike | None",
) -> ShardCache | None:
    """Pass a :class:`ShardCache` through; wrap a path; None stays None."""
    if cache is None or isinstance(cache, ShardCache):
        return cache
    return ShardCache(cache)


def lookup_shards(
    store: ShardCache,
    spec: ScenarioSpec,
    shards,
    *,
    mode: str = "shard",
) -> tuple[dict, dict, list]:
    """Partition shards into cache hits and misses.

    Returns ``(keys, hits, misses)``: ``keys`` maps each shard index to
    its content address, ``hits`` maps hit indices to their stored
    ``{"value", "seconds"}`` entries, and ``misses`` lists the shards
    to compute, in the given order.
    """
    keys: dict[int, str] = {}
    hits: dict[int, dict] = {}
    misses: list = []
    for shard in shards:
        key = shard_key(spec, shard, mode=mode)
        keys[shard.index] = key
        entry = store.get(key)
        if entry is None:
            misses.append(shard)
        else:
            hits[shard.index] = entry
    return keys, hits, misses


def verify_cache(
    directory: str | os.PathLike, *, quarantine: bool = False
) -> dict:
    """Scan a cache directory and report bad entries.

    Walks every ``<2-hex>/<key>.json`` entry, validating JSON, format,
    stored-key-vs-filename agreement and the value payload.  Returns
    ``{"dir", "scanned", "ok", "bad": [{"path", "reason"}, ...],
    "quarantined"}``.  With ``quarantine=True`` each bad entry is moved
    to ``<directory>/quarantine/`` (what :meth:`ShardCache.get` would
    do lazily on the next hit); the default only reports.  Files
    already under ``quarantine/`` and stray temp files are skipped.
    """
    store = ShardCache(directory)
    root = store.directory
    report = {
        "dir": str(root),
        "scanned": 0,
        "ok": 0,
        "bad": [],
        "quarantined": 0,
    }
    if not root.is_dir():
        return report
    for path in sorted(root.glob("??/*.json")):
        key = path.stem
        if path.parent.name != key[:2] or len(key) != 64:
            continue
        report["scanned"] += 1
        reason = None
        try:
            doc = json.loads(path.read_text())
        except OSError as err:  # pragma: no cover - racing deletion
            reason = f"unreadable: {err}"
        except json.JSONDecodeError as err:
            reason = f"invalid JSON: {err}"
        else:
            reason = _entry_problem(doc, key)
        if reason is None:
            report["ok"] += 1
            continue
        entry = {"path": str(path.relative_to(root)), "reason": reason}
        if quarantine:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                target = store.quarantine(path, reason)
            entry["quarantined_to"] = str(target.relative_to(root))
            report["quarantined"] += 1
        report["bad"].append(entry)
    return report
