"""Experiment E11: Diversification beyond the complete graph (Sec 3).

The paper's analysis is for the complete graph; extending it to other
topologies is explicitly future work.  This experiment runs the same
protocol on sparse graphs and reports how the diversity error and
sustainability behave — the expected shape is graceful degradation:
expander-like graphs behave like the complete graph, the cycle is
slower and noisier.

The topology sweep is a pipeline grid: each graph is one shard, built
inside the shard from its name (graphs are parameters, not pickled
objects).
"""

from __future__ import annotations

import numpy as np

from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..topology import CompleteGraph, CycleGraph, TorusGrid, random_regular
from .pipeline import ScenarioSpec, execute
from .runner import run_agent
from .table import ExperimentTable

E11_PROFILES = {"full": {}, "quick": {"n": 144, "rounds": 2000}}

# Graph builders keyed by table name, in table order.
_TOPOLOGY_BUILDERS = {
    "complete": lambda n, seed: CompleteGraph(n),
    "random-regular-8": lambda n, seed: random_regular(n, 8, seed=seed),
    "torus": lambda n, seed: TorusGrid(
        int(round(np.sqrt(n))), int(round(np.sqrt(n)))
    ),
    "cycle": lambda n, seed: CycleGraph(n),
}


def _measure_topology(params: dict, rng: np.random.Generator) -> dict:
    """E11 shard: one run of Diversification on one graph."""
    n = params["n"]
    weights = WeightTable(params["vector"])
    topology = _TOPOLOGY_BUILDERS[params["topology"]](n, params["seed"])
    tracker = MinCountTracker()
    record = run_agent(
        Diversification(weights), weights, n, params["rounds"] * n,
        start="worst", seed=rng, topology=topology,
        observers=[tracker], engine=params["engine"],
    )
    tail = max(1, len(record.times) // 4)
    counts = record.colour_counts[-tail:, : weights.k].astype(float)
    shares = counts / counts.sum(axis=1, keepdims=True)
    fair = weights.fair_shares()
    return {
        "degree": int(topology.degree(0)),
        "error": float(np.abs(shares - fair).max()),
        "min_seen": int(tracker.min_colour_counts.min()),
    }


def _build_topology(result) -> ExperimentTable:
    """Format the per-graph degradation rows."""
    table = ExperimentTable(
        "E11",
        "Topology extension (future work, Sec 3): same protocol on "
        "sparse graphs",
        ["topology", "degree", "tail max |share − w_i/w|",
         "min colour count", "all colours alive"],
    )
    for params, values in result.by_cell():
        (value,) = values
        table.add_row(
            params["topology"], value["degree"], value["error"],
            value["min_seen"], value["min_seen"] >= 1,
        )
    table.add_note(
        "expected shape: complete ≈ random-regular < torus < cycle in "
        "error; sustainability holds everywhere (the invariant is "
        "topology-independent)"
    )
    return table


def spec_topology(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    rounds: int = 3000,
    seed: int = 1618,
    engine: str = "auto",
) -> ScenarioSpec:
    """E11 as a scenario: one shard per topology, shared run seed."""
    side = int(round(np.sqrt(n)))
    if side * side != n:
        raise ValueError(f"n={n} must be a perfect square for the torus")
    return ScenarioSpec(
        name="e11",
        measure=_measure_topology,
        grid={"topology": tuple(_TOPOLOGY_BUILDERS)},
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "rounds": rounds,
            "seed": seed,
            "engine": engine,
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_topology,
    )


def experiment_topology(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    rounds: int = 3000,
    seed: int = 1618,
    engine: str = "auto",
) -> ExperimentTable:
    """E11: diversity error per topology at a fixed horizon.

    ``n`` must be a perfect square for the torus entry.  All four
    graphs (complete + the CSR-adjacency sparse graphs) are supported
    by the vectorised agent-level engine, so ``engine="auto"`` routes
    every run through :class:`~repro.engine.ArraySimulation`; pass
    ``engine="scalar"`` to force the per-step reference engine.
    """
    return execute(
        spec_topology(
            n, weight_vector, rounds=rounds, seed=seed, engine=engine
        )
    ).table()
