"""Experiment E11: Diversification beyond the complete graph (Sec 3).

The paper's analysis is for the complete graph; extending it to other
topologies is explicitly future work.  This experiment runs the same
protocol on sparse graphs and reports how the diversity error and
sustainability behave — the expected shape is graceful degradation:
expander-like graphs behave like the complete graph, the cycle is
slower and noisier.
"""

from __future__ import annotations

import numpy as np

from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..topology import CompleteGraph, CycleGraph, TorusGrid, random_regular
from .runner import run_agent
from .table import ExperimentTable


def experiment_topology(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    rounds: int = 3000,
    seed: int = 1618,
    engine: str = "auto",
) -> ExperimentTable:
    """E11: diversity error per topology at a fixed horizon.

    ``n`` must be a perfect square for the torus entry.  All four
    graphs (complete + the CSR-adjacency sparse graphs) are supported
    by the vectorised agent-level engine, so ``engine="auto"`` routes
    every run through :class:`~repro.engine.ArraySimulation`; pass
    ``engine="scalar"`` to force the per-step reference engine.
    """
    weights = WeightTable(weight_vector)
    steps = rounds * n
    side = int(round(np.sqrt(n)))
    if side * side != n:
        raise ValueError(f"n={n} must be a perfect square for the torus")
    topologies = (
        ("complete", CompleteGraph(n)),
        ("random-regular-8", random_regular(n, 8, seed=seed)),
        ("torus", TorusGrid(side, side)),
        ("cycle", CycleGraph(n)),
    )
    fair = weights.fair_shares()
    table = ExperimentTable(
        "E11",
        "Topology extension (future work, Sec 3): same protocol on "
        "sparse graphs",
        ["topology", "degree", "tail max |share − w_i/w|",
         "min colour count", "all colours alive"],
    )
    for name, topology in topologies:
        local = weights.copy()
        tracker = MinCountTracker()
        record = run_agent(
            Diversification(local), local, n, steps,
            start="worst", seed=seed, topology=topology,
            observers=[tracker], engine=engine,
        )
        tail = max(1, len(record.times) // 4)
        counts = record.colour_counts[-tail:, : local.k].astype(float)
        shares = counts / counts.sum(axis=1, keepdims=True)
        error = float(np.abs(shares - fair).max())
        min_seen = int(tracker.min_colour_counts.min())
        table.add_row(
            name, topology.degree(0), error, min_seen, min_seen >= 1
        )
    table.add_note(
        "expected shape: complete ≈ random-regular < torus < cycle in "
        "error; sustainability holds everywhere (the invariant is "
        "topology-independent)"
    )
    return table
