"""Snapshot recording of configuration time series.

The recorder is engine-agnostic: anything exposing ``time``,
``colour_counts()``, ``dark_counts()`` and ``light_counts()`` can be
recorded.  Colour sets may grow mid-run (adversarial colour addition);
earlier snapshots are zero-padded when the record is materialised.
"""

from __future__ import annotations

import numpy as np


class CountRecorder:
    """Records (time, C, A, a) snapshots every ``interval`` steps."""

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = int(interval)
        self._times: list[int] = []
        self._colour: list[np.ndarray] = []
        self._dark: list[np.ndarray] = []
        self._light: list[np.ndarray] = []
        self._next: int | None = None

    def record_from(self, engine) -> None:
        """Append a snapshot of the engine's current configuration."""
        self._times.append(int(engine.time))
        self._colour.append(engine.colour_counts().copy())
        self._dark.append(engine.dark_counts().copy())
        self._light.append(engine.light_counts().copy())
        self._next = int(engine.time) + self.interval

    def is_due(self, time: int) -> bool:
        """Whether a snapshot is due at (or before) ``time``."""
        return self._next is None or time >= self._next

    def next_time_after(self, time: int) -> int:
        """The next snapshot time strictly after ``time``."""
        if self._next is None or self._next <= time:
            return time + self.interval
        return self._next

    def last_time(self) -> int | None:
        """Time of the latest snapshot, or None before the first.

        The segmented runner uses this to force a horizon snapshot, so
        a record always ends with the state at the requested final
        time-step even when the interval does not divide the horizon.
        """
        return self._times[-1] if self._times else None

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Recorded series and cursor as plain arrays (pickle-free).

        Snapshots taken before an adversarial colour addition are
        narrower than later ones; the per-snapshot widths are stored
        alongside the zero-padded matrices so :meth:`load_state`
        reconstructs the ragged rows exactly.
        """
        widths = np.asarray(
            [row.shape[0] for row in self._colour], dtype=np.int64
        )
        return {
            "interval": self.interval,
            "times": self.times(),
            "widths": widths,
            "colour": self.colour_counts(),
            "dark": self.dark_counts(),
            "light": self.light_counts(),
            "next": -1 if self._next is None else int(self._next),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        interval = int(state["interval"])
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        times = np.asarray(state["times"], dtype=np.int64)
        widths = np.asarray(state["widths"], dtype=np.int64)
        colour = np.asarray(state["colour"], dtype=np.int64)
        dark = np.asarray(state["dark"], dtype=np.int64)
        light = np.asarray(state["light"], dtype=np.int64)
        if not (
            times.shape[0] == widths.shape[0] == colour.shape[0]
            == dark.shape[0] == light.shape[0]
        ):
            raise ValueError("recorder series disagree on length")
        self._times = [int(t) for t in times]
        self._colour = [
            colour[i, : widths[i]].copy() for i in range(len(times))
        ]
        self._dark = [
            dark[i, : widths[i]].copy() for i in range(len(times))
        ]
        self._light = [
            light[i, : widths[i]].copy() for i in range(len(times))
        ]
        nxt = int(state["next"])
        self._next = None if nxt < 0 else nxt

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def times(self) -> np.ndarray:
        """Recorded time-steps, shape ``(T,)``."""
        return np.asarray(self._times, dtype=np.int64)

    def colour_counts(self) -> np.ndarray:
        """Recorded ``C_i`` series, shape ``(T, k_max)`` zero-padded."""
        return _pad_stack(self._colour)

    def dark_counts(self) -> np.ndarray:
        """Recorded ``A_i`` series, shape ``(T, k_max)`` zero-padded."""
        return _pad_stack(self._dark)

    def light_counts(self) -> np.ndarray:
        """Recorded ``a_i`` series, shape ``(T, k_max)`` zero-padded."""
        return _pad_stack(self._light)


def _pad_stack(rows: list[np.ndarray]) -> np.ndarray:
    if not rows:
        return np.zeros((0, 0), dtype=np.int64)
    width = max(row.shape[0] for row in rows)
    out = np.zeros((len(rows), width), dtype=np.int64)
    for index, row in enumerate(rows):
        out[index, : row.shape[0]] = row
    return out
