"""Declarative experiment pipeline: scenario grids, sharded plans and
pluggable executors.

A :class:`ScenarioSpec` describes an experiment as data — a parameter
grid (the sweep axes), fixed parameters, a replication count, a seeding
rule and a pure measurement function — instead of a hand-rolled nested
loop.  :func:`plan` expands the spec into independent :class:`Shard`\\ s
(one per grid cell and replication) with deterministic per-shard seeds,
and :func:`execute` runs the shards through a serial or multiprocess
executor and merges the results *by shard index*, so serial and
parallel runs of the same spec and base seed are bit-identical.

Measurement functions must be module-level callables (picklable by
reference for the process pool) with signature
``measure(params: dict, rng: numpy.random.Generator) -> dict`` and must
return JSON-able dicts; anything an experiment needs that is not a
plain parameter (protocol objects, topologies) is constructed inside
the measurement from the shard's parameters.

Seed scopes
-----------

The per-shard seeds mirror the three seeding idioms of the legacy
experiment loops, so migrated experiments keep their exact tables:

``"stream"``
    All shards draw consecutive children of ``base_seed`` in plan
    order — reproduces ``rng = make_rng(base); spawn(rng, R)`` called
    once per cell on a shared generator.
``"cell"``
    Each cell's replications draw children of ``cell_seed(params)`` —
    reproduces ``spawn(make_rng(base + n), R)`` per sweep point.
``"direct"``
    Single-replication cells seeded with ``cell_seed(params)`` itself —
    reproduces passing a raw integer seed straight to a run helper.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..engine.rng import spawn_sequences
from .faults import (
    NO_RETRY,
    FaultPlan,
    RetryPolicy,
    ShardOutcome,
    WorkerFailure,
    run_attempt,
    run_pool_shards,
    run_serial_shards,
)
from .table import ExperimentTable

SEED_SCOPES = ("stream", "cell", "direct")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: a parameter grid plus a measurement.

    Attributes:
        name: Registry id of the experiment (``"e1"``, ``"e9b"``, ...).
        measure: Module-level measurement ``(params, rng) -> dict``.
        grid: Ordered sweep axes; cells are the cartesian product of
            the axis values (axis order = nesting order of the legacy
            loops, outermost first).  An empty grid means one cell.
        fixed: Parameters shared by every cell.
        replications: Independent repetitions per cell.
        base_seed: Root seed of the plan (``"stream"`` scope) and the
            value recorded in artifacts.
        seed_scope: One of :data:`SEED_SCOPES`; see the module docs.
        cell_seed: Maps cell params to the cell's seed (``"cell"`` and
            ``"direct"`` scopes); defaults to ``base_seed`` for every
            cell when omitted.
        build: Aggregates a :class:`PlanResult` into the experiment's
            :class:`~repro.experiments.table.ExperimentTable`.
        context: Extra JSON-able values the builder needs that are not
            shard parameters (e.g. thresholds applied per table row).
    """

    name: str
    measure: Callable[[dict, np.random.Generator], dict]
    grid: Mapping[str, Sequence] = field(default_factory=dict)
    fixed: Mapping = field(default_factory=dict)
    replications: int = 1
    base_seed: int | None = 0
    seed_scope: str = "stream"
    cell_seed: Callable[[dict], int] | None = None
    build: Callable[["PlanResult"], ExperimentTable] | None = None
    context: Mapping = field(default_factory=dict)

    def __post_init__(self):
        if self.seed_scope not in SEED_SCOPES:
            raise ValueError(
                f"unknown seed_scope {self.seed_scope!r}; "
                f"choose from {SEED_SCOPES}"
            )
        if self.replications < 1:
            raise ValueError("need at least one replication")
        if self.seed_scope == "direct" and self.replications != 1:
            raise ValueError(
                "seed_scope='direct' seeds one run per cell; use "
                "'cell' or 'stream' for replicated cells"
            )

    def cell_params(self) -> list[dict]:
        """Expand the grid into per-cell parameter dicts, in plan order."""
        axes = list(self.grid)
        combos = itertools.product(
            *(tuple(self.grid[axis]) for axis in axes)
        )
        return [
            dict(self.fixed) | dict(zip(axes, combo)) for combo in combos
        ]


@dataclass(frozen=True)
class Shard:
    """One independent unit of work: a cell × replication with its seed."""

    index: int
    cell: int
    replication: int
    params: dict
    seed: np.random.SeedSequence


@dataclass(frozen=True)
class ExperimentPlan:
    """A spec expanded into shards with deterministic seeds."""

    spec: ScenarioSpec
    cells: list[dict]
    shards: list[Shard]


def plan(spec: ScenarioSpec) -> ExperimentPlan:
    """Expand ``spec`` into an executable plan.

    Shard seeds depend only on ``(spec, shard index)`` — never on which
    executor runs the shard or in what order — which is what makes
    serial and parallel execution bit-identical.
    """
    cells = spec.cell_params()
    shards: list[Shard] = []
    if spec.seed_scope == "stream":
        stream = spawn_sequences(
            spec.base_seed, len(cells) * spec.replications
        )
    for cell_index, params in enumerate(cells):
        if spec.seed_scope in ("cell", "direct"):
            cell_seed = (
                spec.cell_seed(params)
                if spec.cell_seed is not None
                else spec.base_seed
            )
        if spec.seed_scope == "cell":
            seeds = spawn_sequences(cell_seed, spec.replications)
        elif spec.seed_scope == "direct":
            seeds = [np.random.SeedSequence(cell_seed)]
        else:
            offset = cell_index * spec.replications
            seeds = stream[offset : offset + spec.replications]
        for replication, seed in enumerate(seeds):
            shards.append(
                Shard(
                    index=len(shards),
                    cell=cell_index,
                    replication=replication,
                    params=params,
                    seed=seed,
                )
            )
    return ExperimentPlan(spec=spec, cells=cells, shards=shards)


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard: its measurement value and wall-clock."""

    shard: Shard
    value: dict
    seconds: float


@dataclass
class PlanResult:
    """Merged outcome of an executed plan, in shard order."""

    spec: ScenarioSpec
    cells: list[dict]
    results: list[ShardResult]
    jobs: int
    elapsed_seconds: float
    #: Per-run hit/miss counters when a shard cache was consulted
    #: (``{"enabled", "hits", "misses", "dir"}``); None otherwise.
    cache_stats: dict | None = None
    #: Fault-tolerance record of the run (retry policy, per-shard
    #: attempts/errors, degraded fused groups, permanently failed
    #: shards and their requeue entries); None when the run used the
    #: legacy fail-fast contract with no policy or injection attached.
    fault_report: dict | None = None

    def failed_indices(self) -> list[int]:
        """Indices of permanently failed shards (empty on full runs)."""
        if self.fault_report is None:
            return []
        return list(self.fault_report.get("failed", []))

    def values(self) -> list[dict]:
        """Measurement values in shard order."""
        return [result.value for result in self.results]

    def by_cell(self) -> list[tuple[dict, list[dict]]]:
        """``(cell params, [values in replication order])`` per cell."""
        grouped: list[list[dict]] = [[] for _ in self.cells]
        for result in self.results:
            grouped[result.shard.cell].append(result.value)
        return [
            (dict(params), values)
            for params, values in zip(self.cells, grouped)
        ]

    def table(self) -> ExperimentTable:
        """Aggregate the results through the spec's table builder."""
        if self.spec.build is None:
            raise ValueError(
                f"spec {self.spec.name!r} has no table builder"
            )
        return self.spec.build(self)


class ShardError(RuntimeError):
    """A shard failed; names the experiment and the shard parameters.

    The worker's original formatted traceback is preserved in the
    message and on ``traceback_text`` (and the exception's
    ``__cause__`` carries it as a
    :class:`~repro.experiments.faults.WorkerFailure`), so a pool
    failure is debuggable without re-running serially.  ``attempts``
    records how many tries the retry policy spent on the shard.
    """

    def __init__(
        self, experiment: str, shard: Shard, detail: str, *,
        attempts: int = 1,
    ):
        self.experiment = experiment
        self.params = dict(shard.params)
        self.shard = shard
        self.attempts = int(attempts)
        self.traceback_text = detail
        suffix = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"experiment {experiment!r} shard {shard.index} "
            f"(cell {shard.cell}, replication {shard.replication}, "
            f"params {self.params!r}) failed{suffix}:\n{detail}"
        )
        self.__cause__ = WorkerFailure(detail)

    @classmethod
    def from_outcome(
        cls, experiment: str, shard: Shard, outcome: ShardOutcome
    ) -> "ShardError":
        return cls(
            experiment, shard, outcome.error, attempts=outcome.attempts
        )


def _run_shard(measure, task) -> tuple[dict | None, str | None, float]:
    """Single-attempt worker body (kept as the executors' unit of
    work; retries re-enter it with the same ``(params, seed)``)."""
    params, seed = task[0], task[1]
    return run_attempt(measure, params, seed)


# Legacy ``multiprocessing.Pool`` initializer pair, kept for the slim
# task-payload contract (the measurement travels once per worker, each
# shard ships only ``(params, seed)`` — asserted in
# ``tests/unit/test_fusion.py``).  The supervised pool of
# :func:`repro.experiments.faults.run_pool_shards` keeps the same
# payload shape: the measurement is passed once at worker spawn.
_WORKER_MEASURE = None


def _init_worker(measure) -> None:
    global _WORKER_MEASURE
    _WORKER_MEASURE = measure


def _run_worker_shard(task):
    return _run_shard(_WORKER_MEASURE, task)


class SerialExecutor:
    """Run shards one after another in the calling process.

    With the default no-retry policy it stops at the first failed
    shard (like the legacy experiment loops); a
    :class:`~repro.experiments.faults.RetryPolicy` adds per-shard
    retries with backoff, and ``stop_on_failure=False`` (the
    ``max_failures`` path) keeps going past permanently failed shards.
    """

    jobs = 1

    def run_shards(
        self,
        measure,
        tasks: Sequence,
        policy: RetryPolicy | None = None,
        *,
        stop_on_failure: bool = True,
    ) -> list[ShardOutcome | None]:
        return run_serial_shards(
            measure, tasks, policy or NO_RETRY,
            stop_on_failure=stop_on_failure,
        )


class ProcessExecutor:
    """Run shards across ``jobs`` supervised worker processes.

    Dispatch is asynchronous (one in-flight task per worker) through
    :func:`repro.experiments.faults.run_pool_shards`: dead workers are
    detected and their in-flight shards requeued, hung shards are
    killed at the policy deadline, and failed attempts retry from the
    same ``(params, seed)`` task so results stay bit-identical to a
    clean run.  Outcomes are merged by task position, so the merge is
    order-independent of the completion schedule; with the default
    policy no new shards run once a failure is seen (in-flight work is
    abandoned), matching the serial executor.  The measurement
    callable travels once per worker, not once per shard: each shard
    ships only its slim ``(params, seed[, faults])`` task.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2")
        self.jobs = int(jobs)

    def run_shards(
        self,
        measure,
        tasks: Sequence,
        policy: RetryPolicy | None = None,
        *,
        stop_on_failure: bool = True,
    ) -> list[ShardOutcome | None]:
        return run_pool_shards(
            measure, tasks, self.jobs, policy or NO_RETRY,
            stop_on_failure=stop_on_failure,
        )


def make_executor(jobs: int | None):
    """``jobs`` <= 1 (or None) → serial; otherwise a process pool."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)


def shard_tasks(shards: Sequence[Shard], faults: FaultPlan | None) -> list:
    """Slim executor tasks: ``(params, seed)`` plus the shard's
    injected worker faults when a :class:`FaultPlan` is attached."""
    if faults is None:
        return [(shard.params, shard.seed) for shard in shards]
    return [
        (shard.params, shard.seed, faults.worker_faults(shard.index))
        for shard in shards
    ]


def requeue_entry(shard: Shard, outcome: ShardOutcome) -> dict:
    """Self-contained description of a failed shard, enough to requeue
    it in a later run (params + resolved seed, the same fields plan
    artifacts record)."""
    return {
        "index": shard.index,
        "cell": shard.cell,
        "replication": shard.replication,
        "params": dict(shard.params),
        "seed": {
            "entropy": shard.seed.entropy,
            "spawn_key": [int(key) for key in shard.seed.spawn_key],
        },
        "attempts": outcome.attempts,
        "error": outcome.error,
    }


def build_fault_report(
    policy: RetryPolicy | None,
    faults: FaultPlan | None,
    pairs: Sequence[tuple[Shard, ShardOutcome | None]],
    *,
    degraded_groups: Sequence[dict] = (),
    max_failures: int | None = None,
) -> dict:
    """The ``PlanResult.fault_report`` payload: retry policy, per-shard
    attempt records (only shards that retried or failed), degraded
    fused groups and requeue entries for the permanent failures."""
    shards_section: dict[str, dict] = {}
    failed: list[int] = []
    requeue: list[dict] = []
    completed = 0
    for shard, outcome in pairs:
        if outcome is None:
            continue
        if outcome.error is None:
            completed += 1
        else:
            failed.append(shard.index)
            requeue.append(requeue_entry(shard, outcome))
        if outcome.attempts > 1 or outcome.error is not None:
            shards_section[str(shard.index)] = {
                "attempts": outcome.attempts,
                "ok": outcome.error is None,
                "seconds": outcome.seconds,
                "errors": list(outcome.attempt_errors)
                + ([outcome.error] if outcome.error else []),
            }
    return {
        "policy": policy.to_payload() if policy is not None else None,
        "injected": faults.spec_text if faults is not None else None,
        "max_failures": max_failures,
        "total": len(pairs),
        "completed": completed,
        "failed": failed,
        "shards": shards_section,
        "degraded_groups": list(degraded_groups),
        "requeue": requeue,
    }


def _merge_outcomes(
    spec,
    shards: Sequence[Shard],
    outcomes: Sequence[ShardOutcome | None],
    *,
    max_failures: int | None,
) -> tuple[list[ShardResult], list[tuple[Shard, ShardOutcome]]]:
    """Turn aligned outcomes into results, enforcing the failure
    budget: raises the lowest-index failure when no budget is set or
    the budget is exceeded; otherwise returns the healthy results and
    the tolerated failures."""
    results: list[ShardResult] = []
    failures: list[tuple[Shard, ShardOutcome]] = []
    for shard, outcome in zip(shards, outcomes):
        if outcome is None:
            continue
        if outcome.error is not None:
            failures.append((shard, outcome))
        else:
            results.append(
                ShardResult(
                    shard=shard,
                    value=outcome.value,
                    seconds=outcome.seconds,
                )
            )
    if failures and (
        max_failures is None or len(failures) > int(max_failures)
    ):
        shard, outcome = failures[0]
        raise ShardError.from_outcome(spec.name, shard, outcome)
    return results, failures


def _run_cached(spec, expanded, executor, store, *, retry, faults,
                max_failures):
    """Cache-aware shard execution: consult the store per shard, run
    only the misses through the executor and write them back.

    Hit shards replay their stored value (JSON round-tripped, exactly
    like resumed checkpoint shards) and report the *original* compute
    wall-clock as ``seconds``.  Every successful miss is stored even
    when another miss fails, so a failed sweep's progress still warms
    the cache.
    """
    from .cache import lookup_shards

    keys, hits, misses = lookup_shards(store, spec, expanded.shards)
    tasks = shard_tasks(misses, faults)
    outcomes = (
        executor.run_shards(
            spec.measure, tasks, retry,
            stop_on_failure=max_failures is None,
        )
        if misses
        else []
    )
    for shard, outcome in zip(misses, outcomes):
        if outcome is None or outcome.error is not None:
            continue
        if faults is not None:
            faults.cache_put(
                store, shard.index, keys[shard.index], outcome.value,
                outcome.seconds, experiment=spec.name,
            )
        else:
            store.put(
                keys[shard.index], outcome.value, outcome.seconds,
                experiment=spec.name,
            )
    miss_results, failures = _merge_outcomes(
        spec, misses, outcomes, max_failures=max_failures
    )
    fresh = {result.shard.index: result for result in miss_results}
    results = []
    for shard in expanded.shards:
        if shard.index in hits:
            entry = hits[shard.index]
            results.append(
                ShardResult(
                    shard=shard,
                    value=entry["value"],
                    seconds=float(entry["seconds"]),
                )
            )
        elif shard.index in fresh:
            results.append(fresh[shard.index])
    stats = {
        "enabled": True,
        "hits": len(hits),
        "misses": len(misses),
        "dir": str(store.directory),
    }
    return results, stats, list(zip(misses, outcomes)), failures


def execute(
    spec_or_plan: ScenarioSpec | ExperimentPlan,
    *,
    jobs: int | None = None,
    executor=None,
    fused: bool = False,
    cache=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    max_failures: int | None = None,
) -> PlanResult:
    """Run a spec (or a pre-expanded plan) and merge the shard results.

    With ``fused=True`` the plan routes through the mega-batch fusion
    layer (:mod:`repro.experiments.fusion`): shards whose measurement
    has a registered fused implementation advance together inside one
    vectorised engine (per-cell KS-equivalent to the per-shard path,
    not bit-identical — the rows share one draw stream), while the
    remaining fallback shards run per shard through ``jobs``/
    ``executor`` as usual.

    With ``cache`` set (a :class:`~repro.experiments.cache.ShardCache`
    or a directory path) every shard is looked up by its content
    address (:func:`~repro.experiments.cache.shard_key`) before
    computing; only the misses run, fresh values are written back, and
    the returned :class:`PlanResult` carries per-run hit/miss counts in
    ``cache_stats``.  Hit shards replay bit-identically on the
    serial/process paths; on the fused path each mega-batch group runs
    only its miss rows (cached and fresh values are scattered back in
    shard order).

    Fault tolerance.  ``retry`` applies a
    :class:`~repro.experiments.faults.RetryPolicy` per shard (retried
    shards re-run from the same ``(params, seed)``, so recovered runs
    are bit-identical to clean ones); ``faults`` injects a
    :class:`~repro.experiments.faults.FaultPlan` for drills and tests;
    ``max_failures=N`` tolerates up to N permanently failed shards —
    the healthy shards complete, the result carries the partial values
    plus a ``fault_report`` naming the failures (with requeue entries),
    and only a budget overrun raises.  When any of the three is given
    the returned ``PlanResult.fault_report`` records the run's retry/
    failure/degradation history.

    Raises :class:`ShardError` for the lowest-index failed shard, with
    the experiment name, the shard's parameters and the worker's
    original traceback in the message.  On the fused path a mega-batch
    group fails as one engine call, so its :class:`ShardError` names
    the *group's first shard* and lists every member shard's params;
    fallback shards run after the mega-batch jobs, so their failure
    order follows job order, not shard index.
    """
    if fused:
        from .fusion import execute_fused

        return execute_fused(
            spec_or_plan, jobs=jobs, executor=executor, cache=cache,
            retry=retry, faults=faults, max_failures=max_failures,
        )
    if isinstance(spec_or_plan, ScenarioSpec):
        expanded = plan(spec_or_plan)
    else:
        expanded = spec_or_plan
    spec = expanded.spec
    if executor is None:
        executor = make_executor(jobs)
    track_faults = (
        retry is not None or faults is not None or max_failures is not None
    )
    start = time.perf_counter()
    if cache is None:
        tasks = shard_tasks(expanded.shards, faults)
        outcomes = executor.run_shards(
            spec.measure, tasks, retry,
            stop_on_failure=max_failures is None,
        )
        results, failures = _merge_outcomes(
            spec, expanded.shards, outcomes, max_failures=max_failures
        )
        pairs = list(zip(expanded.shards, outcomes))
        cache_stats = None
    else:
        from .cache import resolve_cache

        results, cache_stats, pairs, failures = _run_cached(
            spec, expanded, executor, resolve_cache(cache),
            retry=retry, faults=faults, max_failures=max_failures,
        )
    elapsed = time.perf_counter() - start
    fault_report = (
        build_fault_report(
            retry, faults, pairs, max_failures=max_failures
        )
        if track_faults
        else None
    )
    return PlanResult(
        spec=spec,
        cells=expanded.cells,
        results=results,
        jobs=executor.jobs,
        elapsed_seconds=elapsed,
        cache_stats=cache_stats,
        fault_report=fault_report,
    )
