"""Declarative experiment pipeline: scenario grids, sharded plans and
pluggable executors.

A :class:`ScenarioSpec` describes an experiment as data — a parameter
grid (the sweep axes), fixed parameters, a replication count, a seeding
rule and a pure measurement function — instead of a hand-rolled nested
loop.  :func:`plan` expands the spec into independent :class:`Shard`\\ s
(one per grid cell and replication) with deterministic per-shard seeds,
and :func:`execute` runs the shards through a serial or multiprocess
executor and merges the results *by shard index*, so serial and
parallel runs of the same spec and base seed are bit-identical.

Measurement functions must be module-level callables (picklable by
reference for the process pool) with signature
``measure(params: dict, rng: numpy.random.Generator) -> dict`` and must
return JSON-able dicts; anything an experiment needs that is not a
plain parameter (protocol objects, topologies) is constructed inside
the measurement from the shard's parameters.

Seed scopes
-----------

The per-shard seeds mirror the three seeding idioms of the legacy
experiment loops, so migrated experiments keep their exact tables:

``"stream"``
    All shards draw consecutive children of ``base_seed`` in plan
    order — reproduces ``rng = make_rng(base); spawn(rng, R)`` called
    once per cell on a shared generator.
``"cell"``
    Each cell's replications draw children of ``cell_seed(params)`` —
    reproduces ``spawn(make_rng(base + n), R)`` per sweep point.
``"direct"``
    Single-replication cells seeded with ``cell_seed(params)`` itself —
    reproduces passing a raw integer seed straight to a run helper.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
import traceback
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..engine.rng import spawn_sequences
from .table import ExperimentTable

SEED_SCOPES = ("stream", "cell", "direct")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: a parameter grid plus a measurement.

    Attributes:
        name: Registry id of the experiment (``"e1"``, ``"e9b"``, ...).
        measure: Module-level measurement ``(params, rng) -> dict``.
        grid: Ordered sweep axes; cells are the cartesian product of
            the axis values (axis order = nesting order of the legacy
            loops, outermost first).  An empty grid means one cell.
        fixed: Parameters shared by every cell.
        replications: Independent repetitions per cell.
        base_seed: Root seed of the plan (``"stream"`` scope) and the
            value recorded in artifacts.
        seed_scope: One of :data:`SEED_SCOPES`; see the module docs.
        cell_seed: Maps cell params to the cell's seed (``"cell"`` and
            ``"direct"`` scopes); defaults to ``base_seed`` for every
            cell when omitted.
        build: Aggregates a :class:`PlanResult` into the experiment's
            :class:`~repro.experiments.table.ExperimentTable`.
        context: Extra JSON-able values the builder needs that are not
            shard parameters (e.g. thresholds applied per table row).
    """

    name: str
    measure: Callable[[dict, np.random.Generator], dict]
    grid: Mapping[str, Sequence] = field(default_factory=dict)
    fixed: Mapping = field(default_factory=dict)
    replications: int = 1
    base_seed: int | None = 0
    seed_scope: str = "stream"
    cell_seed: Callable[[dict], int] | None = None
    build: Callable[["PlanResult"], ExperimentTable] | None = None
    context: Mapping = field(default_factory=dict)

    def __post_init__(self):
        if self.seed_scope not in SEED_SCOPES:
            raise ValueError(
                f"unknown seed_scope {self.seed_scope!r}; "
                f"choose from {SEED_SCOPES}"
            )
        if self.replications < 1:
            raise ValueError("need at least one replication")
        if self.seed_scope == "direct" and self.replications != 1:
            raise ValueError(
                "seed_scope='direct' seeds one run per cell; use "
                "'cell' or 'stream' for replicated cells"
            )

    def cell_params(self) -> list[dict]:
        """Expand the grid into per-cell parameter dicts, in plan order."""
        axes = list(self.grid)
        combos = itertools.product(
            *(tuple(self.grid[axis]) for axis in axes)
        )
        return [
            dict(self.fixed) | dict(zip(axes, combo)) for combo in combos
        ]


@dataclass(frozen=True)
class Shard:
    """One independent unit of work: a cell × replication with its seed."""

    index: int
    cell: int
    replication: int
    params: dict
    seed: np.random.SeedSequence


@dataclass(frozen=True)
class ExperimentPlan:
    """A spec expanded into shards with deterministic seeds."""

    spec: ScenarioSpec
    cells: list[dict]
    shards: list[Shard]


def plan(spec: ScenarioSpec) -> ExperimentPlan:
    """Expand ``spec`` into an executable plan.

    Shard seeds depend only on ``(spec, shard index)`` — never on which
    executor runs the shard or in what order — which is what makes
    serial and parallel execution bit-identical.
    """
    cells = spec.cell_params()
    shards: list[Shard] = []
    if spec.seed_scope == "stream":
        stream = spawn_sequences(
            spec.base_seed, len(cells) * spec.replications
        )
    for cell_index, params in enumerate(cells):
        if spec.seed_scope in ("cell", "direct"):
            cell_seed = (
                spec.cell_seed(params)
                if spec.cell_seed is not None
                else spec.base_seed
            )
        if spec.seed_scope == "cell":
            seeds = spawn_sequences(cell_seed, spec.replications)
        elif spec.seed_scope == "direct":
            seeds = [np.random.SeedSequence(cell_seed)]
        else:
            offset = cell_index * spec.replications
            seeds = stream[offset : offset + spec.replications]
        for replication, seed in enumerate(seeds):
            shards.append(
                Shard(
                    index=len(shards),
                    cell=cell_index,
                    replication=replication,
                    params=params,
                    seed=seed,
                )
            )
    return ExperimentPlan(spec=spec, cells=cells, shards=shards)


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard: its measurement value and wall-clock."""

    shard: Shard
    value: dict
    seconds: float


@dataclass
class PlanResult:
    """Merged outcome of an executed plan, in shard order."""

    spec: ScenarioSpec
    cells: list[dict]
    results: list[ShardResult]
    jobs: int
    elapsed_seconds: float
    #: Per-run hit/miss counters when a shard cache was consulted
    #: (``{"enabled", "hits", "misses", "dir"}``); None otherwise.
    cache_stats: dict | None = None

    def values(self) -> list[dict]:
        """Measurement values in shard order."""
        return [result.value for result in self.results]

    def by_cell(self) -> list[tuple[dict, list[dict]]]:
        """``(cell params, [values in replication order])`` per cell."""
        grouped: list[list[dict]] = [[] for _ in self.cells]
        for result in self.results:
            grouped[result.shard.cell].append(result.value)
        return [
            (dict(params), values)
            for params, values in zip(self.cells, grouped)
        ]

    def table(self) -> ExperimentTable:
        """Aggregate the results through the spec's table builder."""
        if self.spec.build is None:
            raise ValueError(
                f"spec {self.spec.name!r} has no table builder"
            )
        return self.spec.build(self)


class ShardError(RuntimeError):
    """A shard failed; names the experiment and the shard parameters."""

    def __init__(self, experiment: str, shard: Shard, detail: str):
        self.experiment = experiment
        self.params = dict(shard.params)
        self.shard = shard
        super().__init__(
            f"experiment {experiment!r} shard {shard.index} "
            f"(cell {shard.cell}, replication {shard.replication}, "
            f"params {self.params!r}) failed:\n{detail}"
        )


def _run_shard(measure, task) -> tuple[dict | None, str | None, float]:
    """Worker body: run one measurement, never raise across the pool."""
    params, seed = task
    start = time.perf_counter()
    try:
        value = measure(dict(params), np.random.default_rng(seed))
        return value, None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


# The pool workers receive the measurement once, through the pool
# initializer, instead of once per shard: ``Pool.imap`` pickles its
# function argument with *every* task, so keeping the measurement out
# of the per-shard tuple shrinks each shard's payload to
# ``(params, seed)`` (asserted in ``tests/unit/test_fusion.py``).
_WORKER_MEASURE = None


def _init_worker(measure) -> None:
    global _WORKER_MEASURE
    _WORKER_MEASURE = measure


def _run_worker_shard(task):
    return _run_shard(_WORKER_MEASURE, task)


class SerialExecutor:
    """Run shards one after another in the calling process.

    Stops at the first failed shard (like the legacy experiment loops)
    instead of finishing the remaining — possibly minutes-long — work
    before the failure surfaces.
    """

    jobs = 1

    def run_shards(self, measure, tasks: Sequence) -> list:
        outcomes = []
        for task in tasks:
            outcome = _run_shard(measure, task)
            outcomes.append(outcome)
            if outcome[1] is not None:
                break
        return outcomes


class ProcessExecutor:
    """Run shards across a ``multiprocessing`` pool of ``jobs`` workers.

    ``Pool.imap`` yields outputs in task order, so the merge is
    order-independent of the actual completion schedule; like the
    serial executor, no new shards are consumed once a failure is seen
    (the pool is torn down, abandoning in-flight work).  The
    measurement callable travels once per worker (pool initializer),
    not once per shard: each shard ships only its ``(params, seed)``
    pair.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2")
        self.jobs = int(jobs)

    def run_shards(self, measure, tasks: Sequence) -> list:
        outcomes = []
        with multiprocessing.Pool(
            self.jobs, initializer=_init_worker, initargs=(measure,)
        ) as pool:
            for outcome in pool.imap(_run_worker_shard, tasks, chunksize=1):
                outcomes.append(outcome)
                if outcome[1] is not None:
                    break
        return outcomes


def make_executor(jobs: int | None):
    """``jobs`` <= 1 (or None) → serial; otherwise a process pool."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)


def _run_cached(spec, expanded, executor, store):
    """Cache-aware shard execution: consult the store per shard, run
    only the misses through the executor and write them back.

    Hit shards replay their stored value (JSON round-tripped, exactly
    like resumed checkpoint shards) and report the *original* compute
    wall-clock as ``seconds``.  On a failed miss, the misses completed
    before it are stored before the :class:`ShardError` propagates, so
    a failed sweep's progress still warms the cache.
    """
    from .cache import lookup_shards

    keys, hits, misses = lookup_shards(store, spec, expanded.shards)
    tasks = [(shard.params, shard.seed) for shard in misses]
    outcomes = executor.run_shards(spec.measure, tasks) if misses else []
    fresh: dict[int, tuple[dict, float]] = {}
    failure: ShardError | None = None
    for shard, (value, error, seconds) in zip(misses, outcomes):
        if error is not None:
            failure = ShardError(spec.name, shard, error)
            break
        store.put(keys[shard.index], value, seconds, experiment=spec.name)
        fresh[shard.index] = (value, seconds)
    if failure is not None:
        raise failure
    results = []
    for shard in expanded.shards:
        if shard.index in hits:
            entry = hits[shard.index]
            value, seconds = entry["value"], float(entry["seconds"])
        else:
            value, seconds = fresh[shard.index]
        results.append(ShardResult(shard=shard, value=value, seconds=seconds))
    stats = {
        "enabled": True,
        "hits": len(hits),
        "misses": len(misses),
        "dir": str(store.directory),
    }
    return results, stats


def execute(
    spec_or_plan: ScenarioSpec | ExperimentPlan,
    *,
    jobs: int | None = None,
    executor=None,
    fused: bool = False,
    cache=None,
) -> PlanResult:
    """Run a spec (or a pre-expanded plan) and merge the shard results.

    With ``fused=True`` the plan routes through the mega-batch fusion
    layer (:mod:`repro.experiments.fusion`): shards whose measurement
    has a registered fused implementation advance together inside one
    vectorised engine (per-cell KS-equivalent to the per-shard path,
    not bit-identical — the rows share one draw stream), while the
    remaining fallback shards run per shard through ``jobs``/
    ``executor`` as usual.

    With ``cache`` set (a :class:`~repro.experiments.cache.ShardCache`
    or a directory path) every shard is looked up by its content
    address (:func:`~repro.experiments.cache.shard_key`) before
    computing; only the misses run, fresh values are written back, and
    the returned :class:`PlanResult` carries per-run hit/miss counts in
    ``cache_stats``.  Hit shards replay bit-identically on the
    serial/process paths; on the fused path each mega-batch group runs
    only its miss rows (cached and fresh values are scattered back in
    shard order).

    Raises :class:`ShardError` for the lowest-index failed shard, with
    the experiment name and the shard's parameters in the message.  On
    the fused path a mega-batch group fails as one engine call, so its
    :class:`ShardError` names the *group's first shard* and lists every
    member shard's params; fallback shards run after the mega-batch
    jobs, so their failure order follows job order, not shard index.
    """
    if fused:
        from .fusion import execute_fused

        return execute_fused(
            spec_or_plan, jobs=jobs, executor=executor, cache=cache
        )
    if isinstance(spec_or_plan, ScenarioSpec):
        expanded = plan(spec_or_plan)
    else:
        expanded = spec_or_plan
    spec = expanded.spec
    if executor is None:
        executor = make_executor(jobs)
    start = time.perf_counter()
    if cache is None:
        tasks = [(shard.params, shard.seed) for shard in expanded.shards]
        outcomes = executor.run_shards(spec.measure, tasks)
        results = []
        for shard, (value, error, seconds) in zip(
            expanded.shards, outcomes
        ):
            if error is not None:
                raise ShardError(spec.name, shard, error)
            results.append(
                ShardResult(shard=shard, value=value, seconds=seconds)
            )
        cache_stats = None
    else:
        from .cache import resolve_cache

        results, cache_stats = _run_cached(
            spec, expanded, executor, resolve_cache(cache)
        )
    elapsed = time.perf_counter() - start
    return PlanResult(
        spec=spec,
        cells=expanded.cells,
        results=results,
        jobs=executor.jobs,
        elapsed_seconds=elapsed,
        cache_stats=cache_stats,
    )
