"""Export of experiment tables and run records to CSV / JSON.

Downstream users typically want the raw rows for their own plotting
pipelines; these helpers serialise :class:`ExperimentTable` and
:class:`~repro.experiments.runner.RunRecord` without any third-party
dependency.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib

import numpy as np

from .runner import RunRecord
from .table import ExperimentTable


def _plain(value):
    """JSON/CSV-safe scalar."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def table_to_csv(table: ExperimentTable) -> str:
    """Render a table as CSV (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow([_plain(value) for value in row])
    return buffer.getvalue()


def table_to_json(table: ExperimentTable) -> str:
    """Render a table as a JSON document with metadata and notes."""
    payload = {
        "experiment": table.experiment,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[_plain(value) for value in row] for row in table.rows],
        "notes": list(table.notes),
    }
    return json.dumps(payload, indent=2)


def save_table(
    table: ExperimentTable,
    directory: str | pathlib.Path,
    *,
    formats: tuple[str, ...] = ("txt", "csv", "json"),
) -> list[pathlib.Path]:
    """Write the table in the requested formats; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = table.experiment.lower()
    written = []
    for fmt in formats:
        path = directory / f"{stem}.{fmt}"
        if fmt == "txt":
            path.write_text(table.render() + "\n")
        elif fmt == "csv":
            path.write_text(table_to_csv(table))
        elif fmt == "json":
            path.write_text(table_to_json(table))
        else:
            raise ValueError(f"unknown format {fmt!r}")
        written.append(path)
    return written


def record_to_csv(record: RunRecord) -> str:
    """Serialise a run record's time series as CSV.

    Columns: ``time, C_0..C_{k-1}, A_0..A_{k-1}, a_0..a_{k-1}``.
    """
    k = record.colour_counts.shape[1]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["time"]
        + [f"C_{i}" for i in range(k)]
        + [f"A_{i}" for i in range(k)]
        + [f"a_{i}" for i in range(k)]
    )
    for index, time in enumerate(record.times):
        writer.writerow(
            [int(time)]
            + [int(v) for v in record.colour_counts[index]]
            + [int(v) for v in record.dark_counts[index]]
            + [int(v) for v in record.light_counts[index]]
        )
    return buffer.getvalue()


def record_to_json(record: RunRecord) -> str:
    """Serialise a run record (metadata + series) as JSON."""
    payload = {
        "n": record.n,
        "k": record.weights.k,
        "weights": list(record.weights),
        "steps": record.steps,
        "times": [int(t) for t in record.times],
        "colour_counts": record.colour_counts.tolist(),
        "dark_counts": record.dark_counts.tolist(),
        "light_counts": record.light_counts.tolist(),
    }
    return json.dumps(payload)
