"""Export of experiment tables, run records and executed plans to
CSV / JSON.

Downstream users typically want the raw rows for their own plotting
pipelines; these helpers serialise :class:`ExperimentTable`,
:class:`~repro.experiments.runner.RunRecord` and
:class:`~repro.experiments.pipeline.PlanResult` without any
third-party dependency.  Executed plans persist as self-describing
JSON artifacts (spec + per-shard results + timings + the rendered
table) under a results directory, and :func:`plan_table` reloads an
artifact into the same table the run printed.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib

import numpy as np

from .pipeline import PlanResult
from .runner import RunRecord
from .table import ExperimentTable

PLAN_FORMAT = "repro-plan/v1"
CKPT_STORE_FORMAT = "repro-ckpt-store/v1"
REQUEUE_FORMAT = "repro-requeue/v1"


def _plain(value):
    """JSON/CSV-safe scalar."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _plain_tree(value):
    """Recursively JSON-safe copy of nested dicts/sequences/arrays."""
    if isinstance(value, dict):
        return {str(key): _plain_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain_tree(item) for item in value]
    if isinstance(value, np.ndarray):
        return _plain_tree(value.tolist())
    return _plain(value)


def _callable_ref(fn) -> str:
    """Stable ``module:qualname`` reference for a spec callable."""
    return f"{fn.__module__}:{fn.__qualname__}"


def table_to_csv(table: ExperimentTable) -> str:
    """Render a table as CSV (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow([_plain(value) for value in row])
    return buffer.getvalue()


def table_to_json(table: ExperimentTable) -> str:
    """Render a table as a JSON document with metadata and notes."""
    payload = {
        "experiment": table.experiment,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [[_plain(value) for value in row] for row in table.rows],
        "notes": list(table.notes),
    }
    return json.dumps(payload, indent=2)


def save_table(
    table: ExperimentTable,
    directory: str | pathlib.Path,
    *,
    formats: tuple[str, ...] = ("txt", "csv", "json"),
) -> list[pathlib.Path]:
    """Write the table in the requested formats; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = table.experiment.lower()
    written = []
    for fmt in formats:
        path = directory / f"{stem}.{fmt}"
        if fmt == "txt":
            path.write_text(table.render() + "\n")
        elif fmt == "csv":
            path.write_text(table_to_csv(table))
        elif fmt == "json":
            path.write_text(table_to_json(table))
        else:
            raise ValueError(f"unknown format {fmt!r}")
        written.append(path)
    return written


def spec_to_payload(spec) -> dict:
    """JSON description of a :class:`ScenarioSpec` (callables by ref)."""
    return {
        "name": spec.name,
        "measure": _callable_ref(spec.measure),
        "grid": {
            axis: _plain_tree(list(values))
            for axis, values in spec.grid.items()
        },
        "fixed": _plain_tree(dict(spec.fixed)),
        "replications": spec.replications,
        "base_seed": _plain(spec.base_seed),
        "seed_scope": spec.seed_scope,
        "context": _plain_tree(dict(spec.context)),
    }


def plan_to_json(
    result: PlanResult,
    table: ExperimentTable | None = None,
    *,
    profile: str | None = None,
) -> str:
    """Serialise an executed plan as a self-describing JSON artifact.

    The artifact records the spec (grid, fixed parameters, seeding
    rule), one entry per shard (parameters, wall-clock, measurement
    value) and, when given, the rendered table — enough to re-plot, to
    audit per-shard timings, or to reload the table without re-running.
    """
    payload = {
        "format": PLAN_FORMAT,
        "experiment": result.spec.name,
        "profile": profile,
        "spec": spec_to_payload(result.spec),
        "jobs": result.jobs,
        "elapsed_seconds": result.elapsed_seconds,
        # Per-run shard-cache hit/miss counters (None when the run did
        # not consult a cache) — the serving-traffic observability the
        # result cache is sized by.
        "cache": _plain_tree(result.cache_stats)
        if result.cache_stats is not None
        else None,
        # Retry/failure/degradation history (None when the run had no
        # fault-tolerance knobs engaged) — see
        # :func:`repro.experiments.pipeline.build_fault_report`.
        "faults": _plain_tree(result.fault_report)
        if result.fault_report is not None
        else None,
        "shards": [
            {
                "index": entry.shard.index,
                "cell": entry.shard.cell,
                "replication": entry.shard.replication,
                "params": _plain_tree(dict(entry.shard.params)),
                # The resolved SeedSequence, so 'cell'/'direct' scopes
                # (whose cell_seed closure is not serialisable) stay
                # reproducible from the artifact alone.
                "seed": {
                    "entropy": _plain(entry.shard.seed.entropy),
                    "spawn_key": [
                        int(key) for key in entry.shard.seed.spawn_key
                    ],
                },
                "seconds": entry.seconds,
                "value": _plain_tree(entry.value),
            }
            for entry in result.results
        ],
        "table": json.loads(table_to_json(table)) if table else None,
    }
    return json.dumps(payload, indent=2)


def save_plan(
    result: PlanResult,
    table: ExperimentTable | None,
    directory: str | pathlib.Path,
    *,
    profile: str | None = None,
) -> pathlib.Path:
    """Write a plan artifact to ``directory/<name>[-<profile>].json``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = result.spec.name + (f"-{profile}" if profile else "")
    path = directory / f"{stem}.json"
    path.write_text(plan_to_json(result, table, profile=profile) + "\n")
    return path


def save_requeue(
    result: PlanResult,
    directory: str | pathlib.Path,
    *,
    profile: str | None = None,
) -> pathlib.Path | None:
    """Write the failed shards of a partially-completed run to
    ``directory/<name>[-<profile>].requeue.json``, or None when the
    run had no permanent failures.

    Each entry is self-contained (params + resolved seed + the final
    error), so a later run — or the future distributed executor's
    requeue path — can re-execute exactly the missing shards and merge
    them bit-identically into the partial table.
    """
    report = result.fault_report
    if report is None or not report.get("requeue"):
        return None
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = result.spec.name + (f"-{profile}" if profile else "")
    path = directory / f"{stem}.requeue.json"
    doc = {
        "format": REQUEUE_FORMAT,
        "experiment": result.spec.name,
        "profile": profile,
        "spec": spec_to_payload(result.spec),
        "failed": _plain_tree(report.get("failed", [])),
        "shards": _plain_tree(report["requeue"]),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_plan(path: str | pathlib.Path) -> dict:
    """Reload a plan artifact written by :func:`save_plan`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != PLAN_FORMAT:
        raise ValueError(
            f"{path}: not a {PLAN_FORMAT} artifact "
            f"(format={payload.get('format')!r})"
        )
    return payload


def plan_table(payload: dict) -> ExperimentTable:
    """Rebuild the stored table of a reloaded plan artifact."""
    stored = payload.get("table")
    if stored is None:
        raise ValueError(
            f"artifact for {payload.get('experiment')!r} was saved "
            "without a rendered table"
        )
    return ExperimentTable(
        experiment=stored["experiment"],
        title=stored["title"],
        headers=list(stored["headers"]),
        rows=[list(row) for row in stored["rows"]],
        notes=list(stored["notes"]),
    )


# ----------------------------------------------------------------------
# Engine checkpoint persistence (JSON + NPZ, pickle-free)


def _strip_arrays(value, prefix: str, arrays: dict):
    """Replace every ndarray in a payload tree with an NPZ reference.

    Returns the JSON-able remainder; collected arrays land in
    ``arrays`` under their dotted tree path.
    """
    if isinstance(value, np.ndarray):
        arrays[prefix] = value
        return {"__npz__": prefix}
    if isinstance(value, dict):
        return {
            str(key): _strip_arrays(
                item, f"{prefix}.{key}" if prefix else str(key), arrays
            )
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [
            _strip_arrays(item, f"{prefix}.{index}", arrays)
            for index, item in enumerate(value)
        ]
    return _plain(value)


def _graft_arrays(value, arrays):
    """Inverse of :func:`_strip_arrays` over a loaded NPZ mapping."""
    if isinstance(value, dict):
        if set(value) == {"__npz__"}:
            return arrays[value["__npz__"]]
        return {key: _graft_arrays(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_graft_arrays(item, arrays) for item in value]
    return value


def save_checkpoint(
    payload: dict, path: str | pathlib.Path
) -> tuple[pathlib.Path, pathlib.Path]:
    """Persist an engine ``snapshot()`` payload as ``<path>.json`` +
    ``<path>.npz``.

    The JSON file holds the payload tree (scalars, nested dicts, the
    RNG state) with each array replaced by a reference into the NPZ
    file, which stores the arrays under their dotted tree paths.  No
    pickling on either side, so checkpoints are inspectable by hand
    and safe to load from untrusted disks.
    """
    path = pathlib.Path(path)
    if path.suffix in (".json", ".npz"):
        path = path.with_suffix("")
    arrays: dict[str, np.ndarray] = {}
    tree = _strip_arrays(payload, "", arrays)
    json_path = path.with_suffix(".json")
    npz_path = path.with_suffix(".npz")
    json_path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "format": CKPT_STORE_FORMAT,
        "payload": tree,
        "arrays": sorted(arrays),
    }
    json_path.write_text(json.dumps(doc, indent=2) + "\n")
    np.savez_compressed(npz_path, **arrays)
    return json_path, npz_path


def load_checkpoint(path: str | pathlib.Path) -> dict:
    """Reload a :func:`save_checkpoint` pair into a restore payload."""
    path = pathlib.Path(path)
    if path.suffix in (".json", ".npz"):
        path = path.with_suffix("")
    doc = json.loads(path.with_suffix(".json").read_text())
    if doc.get("format") != CKPT_STORE_FORMAT:
        raise ValueError(
            f"{path}: not a {CKPT_STORE_FORMAT} checkpoint "
            f"(format={doc.get('format')!r})"
        )
    with np.load(path.with_suffix(".npz"), allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    missing = set(doc.get("arrays", [])) - set(arrays)
    if missing:
        raise ValueError(
            f"{path}: NPZ file is missing arrays {sorted(missing)}"
        )
    return _graft_arrays(doc["payload"], arrays)


def record_to_csv(record: RunRecord) -> str:
    """Serialise a run record's time series as CSV.

    Columns: ``time, C_0..C_{k-1}, A_0..A_{k-1}, a_0..a_{k-1}``.
    """
    k = record.colour_counts.shape[1]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["time"]
        + [f"C_{i}" for i in range(k)]
        + [f"A_{i}" for i in range(k)]
        + [f"a_{i}" for i in range(k)]
    )
    for index, time in enumerate(record.times):
        writer.writerow(
            [int(time)]
            + [int(v) for v in record.colour_counts[index]]
            + [int(v) for v in record.dark_counts[index]]
            + [int(v) for v in record.light_counts[index]]
        )
    return buffer.getvalue()


def record_to_json(record: RunRecord) -> str:
    """Serialise a run record (metadata + series) as JSON."""
    payload = {
        "n": record.n,
        "k": record.weights.k,
        "weights": list(record.weights),
        "steps": record.steps,
        "times": [int(t) for t in record.times],
        "colour_counts": record.colour_counts.tolist(),
        "dark_counts": record.dark_counts.tolist(),
        "light_counts": record.light_counts.tolist(),
    }
    return json.dumps(payload)
