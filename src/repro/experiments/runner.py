"""High-level run helpers tying engines, workloads and recording
together.  These are the functions examples, benchmarks and the CLI
build on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..adversary.interventions import AddAgents, AddColour
from ..adversary.schedule import InterventionSchedule, run_with_interventions
from ..core.diversification import Diversification
from ..core.protocol import Protocol
from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from ..engine.array_engine import (
    ArraySimulation,
    has_kernel,
    supports_topology,
)
from ..engine.batched import BatchedAggregateSimulation
from ..engine.population import Population
from ..engine.rng import make_rng, spawn, spawn_sequences
from ..engine.simulator import Simulation
from ..topology.base import CompleteGraph
from .recorder import CountRecorder
from .workloads import (
    colours_from_counts,
    proportional_counts,
    random_counts,
    uniform_counts,
    worst_case_counts,
)

STARTS = ("worst", "uniform", "proportional", "random")
AGENT_ENGINES = ("auto", "scalar", "array")


def seed_streams(
    seed: int | np.random.Generator | None,
) -> tuple[np.random.Generator, np.random.Generator]:
    """Decorrelated ``(workload, engine)`` generators from one seed.

    A generator input passes through unchanged (one shared stream
    consumed sequentially — the documented seeding contract), but an
    integer or ``None`` seed is split into two independent child
    streams via :func:`~repro.engine.rng.spawn_sequences`.  Building
    ``default_rng(seed)`` twice instead would alias the streams: with
    ``start="random"`` the dynamics would replay the exact uniforms
    that drew the start configuration.
    """
    if isinstance(seed, np.random.Generator):
        return seed, seed
    workload, engine = spawn_sequences(seed, 2)
    return np.random.default_rng(workload), np.random.default_rng(engine)


def initial_counts(
    start: str,
    n: int,
    weights: WeightTable,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Dispatch a named workload to its per-colour counts."""
    if start == "worst":
        return worst_case_counts(n, weights.k)
    if start == "uniform":
        return uniform_counts(n, weights.k)
    if start == "proportional":
        return proportional_counts(n, weights)
    if start == "random":
        return random_counts(n, weights.k, rng)
    raise ValueError(f"unknown start {start!r}; choose from {STARTS}")


def initial_count_rows(
    start: str,
    n: int,
    weights: WeightTable,
    rng: np.random.Generator,
    replications: int,
) -> np.ndarray:
    """One ``(R, k)`` start matrix for fused replication engines.

    Matches the scalar per-replication loop's distribution:
    deterministic workloads yield identical rows, ``start="random"``
    is resampled per replication.
    """
    return np.stack(
        [
            initial_counts(start, n, weights, rng)
            for _ in range(replications)
        ]
    )


@dataclass
class RunRecord:
    """Recorded outcome of one simulation run."""

    n: int
    weights: WeightTable
    steps: int
    times: np.ndarray
    colour_counts: np.ndarray
    dark_counts: np.ndarray
    light_counts: np.ndarray
    extras: dict = field(default_factory=dict)

    @property
    def final_colour_counts(self) -> np.ndarray:
        """Counts at the final recorded snapshot."""
        return self.colour_counts[-1]


@dataclass
class BatchRunRecord:
    """Final configurations of R replications of one run.

    ``final_dark_counts`` and ``final_light_counts`` have shape
    ``(R, k)``; one row per replication.
    """

    n: int
    weights: WeightTable
    steps: int
    replications: int
    batched: bool
    final_dark_counts: np.ndarray
    final_light_counts: np.ndarray

    @property
    def final_colour_counts(self) -> np.ndarray:
        """``C_i = A_i + a_i`` per replication, shape ``(R, k)``."""
        return self.final_dark_counts + self.final_light_counts

    @property
    def mean_colour_counts(self) -> np.ndarray:
        """Mean final colour counts across replications, shape ``(k,)``."""
        return self.final_colour_counts.mean(axis=0)


def run_aggregate(
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    start: str = "worst",
    seed: int | np.random.Generator | None = None,
    record_interval: int | None = None,
    schedule: InterventionSchedule | None = None,
    lighten_probabilities=None,
    replications: int | None = None,
    batched: bool = True,
) -> RunRecord | BatchRunRecord:
    """Run the Diversification dynamics on the aggregate engine.

    All agents start dark (the paper's initial condition).  Snapshots
    are recorded every ``record_interval`` steps (default: ``steps/256``
    rounded up), and the record always ends with a snapshot at the
    requested horizon even when the interval does not divide ``steps``.

    With ``replications=R`` the run is repeated R times and a
    :class:`BatchRunRecord` of final configurations is returned instead
    of a time series.  When ``batched`` is set (the default) all R
    replications advance together inside one
    :class:`~repro.engine.batched.BatchedAggregateSimulation` —
    including under an intervention ``schedule``, which is applied
    batch-wide between event segments; ``batched=False`` loops over
    scalar engines with independent child seeds instead.
    """
    if replications is not None:
        return _run_aggregate_batch(
            weights, n, steps,
            replications=replications,
            start=start,
            seed=seed,
            schedule=schedule,
            lighten_probabilities=lighten_probabilities,
            batched=batched,
        )
    weights = weights.copy()  # keep the caller's table pristine
    workload_rng, engine_rng = seed_streams(seed)
    dark = initial_counts(start, n, weights, workload_rng)
    engine = AggregateSimulation(
        weights,
        dark_counts=dark,
        rng=engine_rng,
        lighten_probabilities=lighten_probabilities,
    )
    if record_interval is None:
        record_interval = max(1, steps // 256)
    recorder = CountRecorder(record_interval)
    run_with_interventions(engine, steps, schedule, recorder=recorder)
    return RunRecord(
        n=engine.n,
        weights=weights,
        steps=steps,
        times=recorder.times(),
        colour_counts=recorder.colour_counts(),
        dark_counts=recorder.dark_counts(),
        light_counts=recorder.light_counts(),
    )


def _run_aggregate_batch(
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    replications: int,
    start: str,
    seed: int | np.random.Generator | None,
    schedule: InterventionSchedule | None,
    lighten_probabilities,
    batched: bool,
) -> BatchRunRecord:
    """R replications of an aggregate run; batched when possible."""
    if replications < 1:
        raise ValueError("need at least one replication")
    if batched:
        table = weights.copy()
        rng = make_rng(seed)
        dark0 = initial_count_rows(start, n, table, rng, replications)
        engine = BatchedAggregateSimulation(
            table,
            dark0,
            replications=replications,
            rng=rng,
            lighten_probabilities=lighten_probabilities,
        )
        # Interventions apply batch-wide between event segments; a
        # colour addition widens both the count matrix and ``table``,
        # so the recorded weights always match the count columns.
        run_with_interventions(engine, steps, schedule)
        return BatchRunRecord(
            n=engine.n,
            weights=table,
            steps=steps,
            replications=replications,
            batched=True,
            final_dark_counts=engine.dark_counts(),
            final_light_counts=engine.light_counts(),
        )
    # Scalar loop: each replication gets its own engine and weight
    # table (independent child seeds); final rows are zero-padded to
    # the widest colour set when a schedule adds colours.
    children = spawn(make_rng(seed), replications)
    records = [
        run_aggregate(
            weights, n, steps,
            start=start,
            seed=child,
            record_interval=max(1, steps),
            schedule=schedule,
            lighten_probabilities=lighten_probabilities,
        )
        for child in children
    ]
    k_max = max(record.dark_counts.shape[1] for record in records)
    dark = np.zeros((replications, k_max), dtype=np.int64)
    light = np.zeros((replications, k_max), dtype=np.int64)
    for row, record in enumerate(records):
        dark[row, : record.dark_counts.shape[1]] = record.dark_counts[-1]
        light[row, : record.light_counts.shape[1]] = record.light_counts[-1]
    # Record the *widened* weight table when a ColourAddition schedule
    # grew the colour set, so ``weights.k`` always matches the padded
    # count columns (every replication applies the same deterministic
    # schedule, so the widest per-run table is the consistent one).
    widened = max(records, key=lambda record: record.weights.k).weights
    if widened.k != k_max:
        raise RuntimeError(
            f"replication weight tables ended at k={widened.k} but count "
            f"rows were padded to {k_max} colours"
        )
    return BatchRunRecord(
        n=records[0].n,
        weights=widened.copy(),
        steps=steps,
        replications=replications,
        batched=False,
        final_dark_counts=dark,
        final_light_counts=light,
    )


def use_array_engine(
    protocol: Protocol,
    *,
    topology=None,
    schedule: InterventionSchedule | None = None,
    engine: str = "auto",
) -> bool:
    """Resolve the agent-level engine choice for one run.

    ``engine="auto"`` picks the vectorised
    :class:`~repro.engine.array_engine.ArraySimulation` whenever the
    protocol has a kernel, the topology is complete or CSR-backed, and
    any intervention schedule is array-compatible (see
    :func:`array_schedule_supported`); anything else falls back to the
    scalar :class:`~repro.engine.Simulation`.  ``engine="array"``
    forces the vectorised path (raising on unsupported runs),
    ``engine="scalar"`` forces the fallback.
    """
    if engine not in AGENT_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {AGENT_ENGINES}"
        )
    if engine == "scalar":
        return False
    if engine == "array":
        if not array_schedule_supported(schedule, topology):
            raise ValueError(
                "population-growing interventions on an explicit "
                "topology require the scalar engine"
            )
        return True
    return (
        has_kernel(protocol)
        and supports_topology(topology)
        and array_schedule_supported(schedule, topology)
    )


def array_schedule_supported(
    schedule: InterventionSchedule | None, topology
) -> bool:
    """Whether the array engine can apply ``schedule`` on ``topology``.

    All interventions are supported on the complete graph (growth
    discards the draw buffer and re-anchors the stream, like the scalar
    engine).  On a CSR topology the adjacency cannot gain nodes, so
    only index-stable schedules (pure recolourings) qualify.
    """
    if schedule is None:
        return True
    if topology is None or isinstance(topology, CompleteGraph):
        return True
    return not any(
        isinstance(intervention, (AddAgents, AddColour))
        for _, intervention in schedule.entries()
    )


def run_agent(
    protocol: Protocol,
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    start: str = "worst",
    seed: int | np.random.Generator | None = None,
    record_interval: int | None = None,
    topology=None,
    observers=(),
    schedule: InterventionSchedule | None = None,
    engine: str = "auto",
) -> RunRecord:
    """Run any protocol on the agent-level engine with recording.

    ``engine`` selects between the scalar per-step
    :class:`~repro.engine.Simulation` and the vectorised
    :class:`~repro.engine.ArraySimulation` (see :func:`use_array_engine`
    for the ``"auto"`` routing rule).  Both engines simulate the same
    per-step model; their trajectories agree in distribution but not
    draw-for-draw.

    Under an intervention ``schedule`` the protocol is deep-copied
    first, so a schedule that widens the weight table (colour addition)
    never mutates the caller's protocol — reusing one protocol instance
    across runs no longer compounds colours.  The record then carries
    the run's own (possibly widened) table.
    """
    workload_rng, engine_rng = seed_streams(seed)
    counts = initial_counts(start, n, weights, workload_rng)
    colours = colours_from_counts(counts)
    run_weights = weights
    if schedule is not None:
        protocol = copy.deepcopy(protocol)
        run_weights = getattr(protocol, "weights", weights)
    if use_array_engine(
        protocol, topology=topology, schedule=schedule, engine=engine
    ):
        simulation = ArraySimulation(
            protocol,
            np.asarray(colours, dtype=np.int64),
            k=weights.k,
            topology=topology,
            rng=engine_rng,
            observers=list(observers),
        )
    else:
        population = Population.from_colours(
            colours, protocol, k=weights.k
        )
        simulation = Simulation(
            protocol,
            population,
            topology=topology,
            rng=engine_rng,
            observers=list(observers),
        )
    if record_interval is None:
        record_interval = max(1, steps // 256)
    recorder = CountRecorder(record_interval)
    run_with_interventions(simulation, steps, schedule, recorder=recorder)
    return RunRecord(
        n=simulation.population.n,
        weights=run_weights,
        steps=steps,
        times=recorder.times(),
        colour_counts=recorder.colour_counts(),
        dark_counts=recorder.dark_counts(),
        light_counts=recorder.light_counts(),
        extras={"simulation": simulation},
    )


def run_diversification_agent(
    weights: WeightTable,
    n: int,
    steps: int,
    **kwargs,
) -> RunRecord:
    """Agent-level run of the Diversification protocol itself."""
    weights = weights.copy()
    return run_agent(Diversification(weights), weights, n, steps, **kwargs)
