"""High-level run helpers tying engines, workloads and recording
together.  These are the functions examples, benchmarks and the CLI
build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adversary.schedule import InterventionSchedule, run_with_interventions
from ..core.diversification import Diversification
from ..core.protocol import Protocol
from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from ..engine.population import Population
from ..engine.simulator import Simulation
from .recorder import CountRecorder
from .workloads import (
    colours_from_counts,
    proportional_counts,
    random_counts,
    uniform_counts,
    worst_case_counts,
)

STARTS = ("worst", "uniform", "proportional", "random")


def initial_counts(
    start: str,
    n: int,
    weights: WeightTable,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Dispatch a named workload to its per-colour counts."""
    if start == "worst":
        return worst_case_counts(n, weights.k)
    if start == "uniform":
        return uniform_counts(n, weights.k)
    if start == "proportional":
        return proportional_counts(n, weights)
    if start == "random":
        return random_counts(n, weights.k, rng)
    raise ValueError(f"unknown start {start!r}; choose from {STARTS}")


@dataclass
class RunRecord:
    """Recorded outcome of one simulation run."""

    n: int
    weights: WeightTable
    steps: int
    times: np.ndarray
    colour_counts: np.ndarray
    dark_counts: np.ndarray
    light_counts: np.ndarray
    extras: dict = field(default_factory=dict)

    @property
    def final_colour_counts(self) -> np.ndarray:
        """Counts at the final recorded snapshot."""
        return self.colour_counts[-1]


def run_aggregate(
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    start: str = "worst",
    seed: int | np.random.Generator | None = None,
    record_interval: int | None = None,
    schedule: InterventionSchedule | None = None,
    lighten_probabilities=None,
) -> RunRecord:
    """Run the Diversification dynamics on the aggregate engine.

    All agents start dark (the paper's initial condition).  Snapshots
    are recorded every ``record_interval`` steps (default: ``steps/256``
    rounded up).
    """
    weights = weights.copy()  # keep the caller's table pristine
    dark = initial_counts(start, n, weights, seed)
    engine = AggregateSimulation(
        weights,
        dark_counts=dark,
        rng=seed,
        lighten_probabilities=lighten_probabilities,
    )
    if record_interval is None:
        record_interval = max(1, steps // 256)
    recorder = CountRecorder(record_interval)
    run_with_interventions(engine, steps, schedule, recorder=recorder)
    return RunRecord(
        n=engine.n,
        weights=weights,
        steps=steps,
        times=recorder.times(),
        colour_counts=recorder.colour_counts(),
        dark_counts=recorder.dark_counts(),
        light_counts=recorder.light_counts(),
    )


def run_agent(
    protocol: Protocol,
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    start: str = "worst",
    seed: int | np.random.Generator | None = None,
    record_interval: int | None = None,
    topology=None,
    observers=(),
    schedule: InterventionSchedule | None = None,
) -> RunRecord:
    """Run any protocol on the agent-level engine with recording."""
    counts = initial_counts(start, n, weights, seed)
    population = Population.from_colours(
        colours_from_counts(counts), protocol, k=weights.k
    )
    simulation = Simulation(
        protocol,
        population,
        topology=topology,
        rng=seed,
        observers=list(observers),
    )
    if record_interval is None:
        record_interval = max(1, steps // 256)
    recorder = CountRecorder(record_interval)
    run_with_interventions(simulation, steps, schedule, recorder=recorder)
    return RunRecord(
        n=population.n,
        weights=weights,
        steps=steps,
        times=recorder.times(),
        colour_counts=recorder.colour_counts(),
        dark_counts=recorder.dark_counts(),
        light_counts=recorder.light_counts(),
        extras={"simulation": simulation},
    )


def run_diversification_agent(
    weights: WeightTable,
    n: int,
    steps: int,
    **kwargs,
) -> RunRecord:
    """Agent-level run of the Diversification protocol itself."""
    weights = weights.copy()
    return run_agent(Diversification(weights), weights, n, steps, **kwargs)
