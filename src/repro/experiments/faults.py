"""Fault tolerance for the declarative pipeline: injection, retries,
timeouts and worker supervision.

The execution layer used to assume a perfect world: a worker crash
killed the whole sweep, a hung shard blocked ``Pool.imap`` forever and
a torn cache entry poisoned every later warm run.  This module is the
seam that makes every execution path survive partial failure:

* :class:`RetryPolicy` — per-shard retry/backoff/timeout semantics.
  Retried shards re-run from the same ``(params, seed)`` task, so a
  sweep that recovered from transient faults merges a table
  *byte-identical* to a fault-free run (property-tested on the serial,
  pool and fused paths).
* :func:`run_serial_shards` / :func:`run_pool_shards` — the shard
  execution loops.  The pool loop dispatches tasks to dedicated worker
  processes asynchronously (replacing ``Pool.imap``), detects dead
  workers and requeues their in-flight shards, and enforces a per-shard
  deadline by killing and replacing the worker of a hung shard.
* :class:`FaultPlan` — a deterministic fault-injection harness for
  drills and tests.  Faults are selected with a generator seeded from
  the plan's own :class:`~numpy.random.SeedSequence` machinery, so an
  injected-fault run is exactly reproducible from the spec's
  ``base_seed`` and the spec text (``repro run --inject-faults``).

Fault-spec grammar (``--inject-faults``)::

    SPEC    := entry[,entry ...]
    entry   := KIND ':' TARGET [':' OPT ...]
    KIND    := raise | hang | crash | corrupt | fuse-raise
             | tear-cache | tear-ckpt
    TARGET  := 'i' IDX['|'IDX ...]     explicit shard indices, e.g. i0|3
             | 'p' FLOAT               each shard independently with
                                       probability FLOAT (seeded)
    OPT     := 'attempts=' N           fire on attempts <= N (default 1,
                                       i.e. transient; large N = permanent)
             | 'seconds=' S            hang duration (default 3600)

``raise`` makes the shard raise :class:`InjectedFault`; ``hang`` sleeps
``seconds`` before computing (to be killed at the deadline); ``crash``
calls ``os._exit`` in the worker process; ``corrupt`` replaces the
measurement's return value with a non-mapping payload (caught by the
runner's value validation and retried); ``fuse-raise`` fails only the
*fused mega-batch group* containing the shard (exercising graceful
degradation); ``tear-cache`` / ``tear-ckpt`` tear the shard's cache
entry or the plan checkpoint file mid-write (exercising quarantine and
torn-checkpoint recovery).  Process-level faults (``hang``, ``crash``)
are simulated as raises when the shard runs in-process (serial path):
the orchestrator itself is never killed or blocked.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import queue
import time
import traceback
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "NO_RETRY",
    "RetryPolicy",
    "ShardOutcome",
    "WorkerFailure",
    "run_attempt",
    "run_pool_shards",
    "run_serial_shards",
]

#: Fault kinds applied inside the shard attempt (travel to workers).
WORKER_FAULT_KINDS = ("raise", "hang", "crash", "corrupt")
#: Fault kinds applied by the orchestrator (never shipped to workers).
FAULT_KINDS = WORKER_FAULT_KINDS + ("fuse-raise", "tear-cache", "tear-ckpt")

#: Entropy tag mixed into the fault-selection seed so the fault stream
#: never collides with the plan's own shard streams (which are plain
#: ``spawn_sequences(base_seed, ...)`` children).
_FAULT_STREAM_TAG = 0xFA017

#: Exit code of a worker killed by an injected ``crash`` fault.
CRASH_EXIT_CODE = 70

#: Supervisor poll interval (seconds) of the async-dispatch pool loop.
_TICK = 0.02


class InjectedFault(RuntimeError):
    """Raised by an injected ``raise``/``fuse-raise`` fault (and by the
    in-process simulation of process-level faults)."""


class WorkerFailure(RuntimeError):
    """Carrier of a worker-side failure, attached as the ``__cause__``
    of the :class:`~repro.experiments.pipeline.ShardError` so the
    original traceback survives the process boundary."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry semantics applied by every execution path.

    Attributes:
        max_attempts: Total tries per shard (1 = no retries).  A
            retried shard re-runs from the same ``(params, seed)``
            task, so its value is bit-identical to a first-try success.
        timeout_s: Per-attempt deadline in seconds.  Enforced
            preemptively on the process-pool path (the hung worker is
            killed and the shard requeued); the serial path cannot
            preempt an in-process measurement and treats it as
            advisory.
        backoff_s: Delay before the second attempt; subsequent delays
            multiply by ``backoff_factor``.
        backoff_factor: Exponential backoff multiplier.
    """

    max_attempts: int = 1
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, failed_attempts: int) -> float:
        """Backoff before the next try after ``failed_attempts``."""
        if failed_attempts < 1 or self.backoff_s == 0.0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (failed_attempts - 1)

    def to_payload(self) -> dict:
        """JSON form recorded in ``PlanResult.fault_report``."""
        return {
            "max_attempts": self.max_attempts,
            "timeout_s": self.timeout_s,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
        }


#: The default policy: one attempt, no deadline — the legacy contract.
NO_RETRY = RetryPolicy()


@dataclass
class ShardOutcome:
    """Outcome of one shard across all of its attempts.

    ``error`` is None on success; on failure it holds the *last*
    attempt's formatted traceback (every attempt's error is kept in
    ``attempt_errors``).  ``seconds`` is the successful attempt's
    wall-clock (or the last failed attempt's).
    """

    value: dict | None
    error: str | None
    seconds: float
    attempts: int = 1
    attempt_errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Fault injection


@dataclass(frozen=True)
class Fault:
    """One injected fault on one shard.

    ``attempts`` bounds the attempts the fault fires on (``attempt <=
    attempts``): 1 models a transient fault that a retry recovers from,
    a large value a permanent one.  ``seconds`` is the ``hang``
    duration.
    """

    kind: str
    attempts: int = 1
    seconds: float = 3600.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    def active(self, attempt: int) -> bool:
        return attempt <= self.attempts


def fault_selection_rng(base_seed) -> np.random.Generator:
    """The deterministic fault-selection stream of a plan.

    Derived through the same :class:`~numpy.random.SeedSequence`
    machinery as the plan's shard seeds, but tagged with a fault
    namespace so it never collides with (or perturbs) any shard's own
    stream — an injected-fault run stays reproducible from
    ``base_seed`` alone.
    """
    if base_seed is None:
        entropy = [_FAULT_STREAM_TAG]
    else:
        entropy = [int(base_seed), _FAULT_STREAM_TAG]
    return np.random.default_rng(np.random.SeedSequence(entropy=entropy))


class FaultPlan:
    """Deterministic mapping of shard index -> injected faults.

    Built from a compact spec string (see the module docstring for the
    grammar) against a concrete plan size; probabilistic targets are
    resolved once, with :func:`fault_selection_rng`, so the same
    ``(spec text, shard count, base_seed)`` always injects the same
    faults.
    """

    def __init__(
        self,
        faults: Mapping[int, Sequence[Fault]],
        *,
        spec_text: str | None = None,
    ):
        self.by_shard: dict[int, tuple[Fault, ...]] = {
            int(index): tuple(entry)
            for index, entry in faults.items()
            if entry
        }
        self.spec_text = spec_text
        #: One-shot tear faults already fired, keyed by (index, kind).
        self._fired: set[tuple[int, str]] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec_text or self.by_shard!r})"

    @classmethod
    def from_spec(
        cls, text: str, *, shards: int, base_seed=None
    ) -> "FaultPlan":
        """Parse a ``--inject-faults`` spec against a plan of
        ``shards`` shards."""
        if shards < 0:
            raise ValueError("shards must be non-negative")
        rng = fault_selection_rng(base_seed)
        by_shard: dict[int, list[Fault]] = {}
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"invalid fault entry {entry!r}: expected "
                    "KIND:TARGET[:OPT...]"
                )
            kind = parts[0].strip().lower()
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"invalid fault entry {entry!r}: unknown kind "
                    f"{kind!r} (choose from {', '.join(FAULT_KINDS)})"
                )
            indices = cls._parse_target(entry, parts[1].strip(), shards, rng)
            options = cls._parse_options(entry, parts[2:])
            fault = Fault(kind=kind, **options)
            for index in indices:
                by_shard.setdefault(index, []).append(fault)
        return cls(by_shard, spec_text=text)

    @staticmethod
    def _parse_target(entry, target, shards, rng) -> list[int]:
        # The probability draw happens for every 'p' entry in spec
        # order, so each entry consumes a fixed slice of the fault
        # stream regardless of which shards earlier entries selected.
        if target.startswith("i"):
            try:
                indices = sorted(
                    {int(part) for part in target[1:].split("|")}
                )
            except ValueError as error:
                raise ValueError(
                    f"invalid fault entry {entry!r}: bad index list "
                    f"{target!r}"
                ) from error
            out_of_range = [i for i in indices if not 0 <= i < shards]
            if out_of_range:
                raise ValueError(
                    f"invalid fault entry {entry!r}: shard indices "
                    f"{out_of_range} outside the plan's 0..{shards - 1}"
                )
            return indices
        if target.startswith("p"):
            try:
                probability = float(target[1:])
            except ValueError as error:
                raise ValueError(
                    f"invalid fault entry {entry!r}: bad probability "
                    f"{target!r}"
                ) from error
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"invalid fault entry {entry!r}: probability must "
                    "be in [0, 1]"
                )
            draws = rng.random(shards)
            return [int(i) for i in np.flatnonzero(draws < probability)]
        raise ValueError(
            f"invalid fault entry {entry!r}: target {target!r} must be "
            "iIDX[|IDX...] or pFLOAT"
        )

    @staticmethod
    def _parse_options(entry, parts) -> dict:
        options: dict = {}
        for part in parts:
            part = part.strip()
            name, _, value = part.partition("=")
            try:
                if name == "attempts":
                    options["attempts"] = int(value)
                elif name == "seconds":
                    options["seconds"] = float(value)
                else:
                    raise ValueError(f"unknown option {name!r}")
            except ValueError as error:
                raise ValueError(
                    f"invalid fault entry {entry!r}: {error}"
                ) from error
        return options

    def for_shard(self, index: int) -> tuple[Fault, ...]:
        """All faults injected on shard ``index``."""
        return self.by_shard.get(int(index), ())

    def worker_faults(self, index: int) -> tuple[Fault, ...]:
        """The shard's in-attempt faults (the ones shipped to workers)."""
        return tuple(
            fault
            for fault in self.for_shard(index)
            if fault.kind in WORKER_FAULT_KINDS
        )

    def group_fault(
        self, indices: Sequence[int], attempt: int
    ) -> str | None:
        """Description of the first fault that fails a fused mega-batch
        group containing ``indices`` on fused ``attempt``, or None.

        Both ``fuse-raise`` faults and ordinary worker faults poison
        the group: a mega-batch row cannot crash alone, so any injected
        member failure takes the whole engine call down — exactly the
        blast radius graceful degradation exists to contain.
        """
        for index in indices:
            for fault in self.for_shard(index):
                if fault.kind in ("tear-cache", "tear-ckpt"):
                    continue
                if fault.active(attempt):
                    return (
                        f"injected {fault.kind!r} fault on member shard "
                        f"{index} (fused attempt {attempt})"
                    )
        return None

    def cache_put(
        self, store, index: int, key: str, value, seconds: float, *,
        experiment: str | None = None,
    ):
        """``store.put`` with tear-cache injection: the first store of
        a selected shard writes a torn (truncated, non-atomic) entry
        instead, modelling a crash mid-write."""
        for fault in self.for_shard(index):
            if fault.kind != "tear-cache":
                continue
            if (index, fault.kind) in self._fired:
                continue
            self._fired.add((index, fault.kind))
            path = store.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            document = json.dumps(
                {"format": "repro-shard-cache/v1", "key": key,
                 "value": value}
            )
            path.write_text(document[: max(1, len(document) // 2)])
            return path
        return store.put(key, value, seconds, experiment=experiment)

    def tear_checkpoint(self, path, indices: Sequence[int]) -> bool:
        """Truncate the plan checkpoint after a flush covering a
        selected shard (one-shot per shard), modelling a torn write."""
        import pathlib

        for index in indices:
            for fault in self.for_shard(index):
                if fault.kind != "tear-ckpt":
                    continue
                if (index, fault.kind) in self._fired:
                    continue
                self._fired.add((index, fault.kind))
                target = pathlib.Path(path)
                text = target.read_text()
                target.write_text(text[: max(1, len(text) // 2)])
                return True
        return False


# ----------------------------------------------------------------------
# The shard attempt (shared by the serial loop and the pool workers)


class _Corrupted:
    """Sentinel returned by an injected ``corrupt`` fault: a non-mapping
    measurement value, caught by :func:`run_attempt`'s validation."""

    def __repr__(self) -> str:
        return "<injected corrupted value>"


def _apply_worker_faults(
    faults: Sequence[Fault], attempt: int, *, in_process: bool
) -> bool:
    """Fire the attempt's active faults; returns whether the value
    should be corrupted after the measurement runs."""
    corrupt = False
    for fault in faults:
        if not fault.active(attempt):
            continue
        if fault.kind == "raise":
            raise InjectedFault(
                f"injected transient fault (attempt {attempt})"
            )
        if fault.kind == "crash":
            if in_process:
                # Never _exit the orchestrator itself: process-level
                # faults need a worker process to kill.
                raise InjectedFault(
                    f"injected crash fault simulated as a raise "
                    f"(attempt {attempt}; in-process execution has no "
                    "worker to kill)"
                )
            os._exit(CRASH_EXIT_CODE)
        if fault.kind == "hang":
            if in_process:
                raise InjectedFault(
                    f"injected hang fault simulated as a raise "
                    f"(attempt {attempt}; in-process execution cannot "
                    "be preempted)"
                )
            time.sleep(fault.seconds)
        if fault.kind == "corrupt":
            corrupt = True
    return corrupt


def run_attempt(
    measure,
    params,
    seed,
    faults: Sequence[Fault] = (),
    attempt: int = 1,
    *,
    in_process: bool = True,
) -> tuple[dict | None, str | None, float]:
    """Run one attempt of one shard; never raises.

    Returns ``(value, error, seconds)`` where ``error`` is the
    formatted traceback on failure.  The measurement's return value
    must be a mapping — anything else (including an injected
    corruption) is a retryable failure, so a corrupted value can never
    silently reach a merged table.
    """
    start = time.perf_counter()
    try:
        corrupt = _apply_worker_faults(
            faults, attempt, in_process=in_process
        )
        value = measure(dict(params), np.random.default_rng(seed))
        if corrupt:
            value = _Corrupted()
        if not isinstance(value, Mapping):
            raise TypeError(
                f"measurement returned a non-mapping value "
                f"({type(value).__name__}: {value!r}); measurement "
                "values must be JSON-able dicts — possible corruption"
            )
        return dict(value), None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


def _normalise_task(task) -> tuple:
    """Accept ``(params, seed)`` or ``(params, seed, faults)``."""
    if len(task) == 2:
        params, seed = task
        return params, seed, ()
    params, seed, faults = task
    return params, seed, tuple(faults or ())


# ----------------------------------------------------------------------
# Serial execution loop


def run_serial_shards(
    measure,
    tasks: Sequence,
    policy: RetryPolicy = NO_RETRY,
    *,
    stop_on_failure: bool = True,
) -> list[ShardOutcome | None]:
    """Run shards in the calling process with per-shard retries.

    Returns one :class:`ShardOutcome` per task, aligned by position;
    with ``stop_on_failure`` the entries after the first permanently
    failed shard stay None (those shards never ran — the legacy
    fail-fast contract).
    """
    outcomes: list[ShardOutcome | None] = [None] * len(tasks)
    for slot, task in enumerate(tasks):
        params, seed, faults = _normalise_task(task)
        errors: list[str] = []
        value = error = None
        seconds = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                delay = policy.delay(attempt - 1)
                if delay > 0:
                    time.sleep(delay)
            value, error, seconds = run_attempt(
                measure, params, seed, faults, attempt, in_process=True
            )
            if error is None:
                break
            errors.append(error)
        outcomes[slot] = ShardOutcome(
            value=value,
            error=error,
            seconds=seconds,
            attempts=attempt,
            attempt_errors=tuple(errors),
        )
        if error is not None and stop_on_failure:
            break
    return outcomes


# ----------------------------------------------------------------------
# Async-dispatch process pool with worker supervision


def _worker_main(measure, task_queue, result_queue) -> None:
    """Worker body: run dispatched attempts until the None sentinel."""
    while True:
        message = task_queue.get()
        if message is None:
            return
        slot, attempt, params, seed, faults = message
        value, error, seconds = run_attempt(
            measure, params, seed, faults, attempt, in_process=False
        )
        result_queue.put((slot, attempt, value, error, seconds))


@dataclass
class _PoolWorker:
    """One supervised worker process with its dedicated task queue."""

    process: multiprocessing.Process
    task_queue: object
    #: (slot, attempt, deadline or None, started) of the in-flight
    #: attempt; None when idle.
    current: tuple | None = None
    retired: bool = False

    def submit(self, slot, attempt, task, deadline) -> None:
        params, seed, faults = task
        self.current = (slot, attempt, deadline, time.monotonic())
        self.task_queue.put((slot, attempt, params, seed, faults))

    def kill(self) -> None:
        self.retired = True
        self.current = None
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)


def _spawn_worker(ctx, measure, result_queue) -> _PoolWorker:
    task_queue = ctx.Queue()
    process = ctx.Process(
        target=_worker_main,
        args=(measure, task_queue, result_queue),
        daemon=True,
    )
    process.start()
    return _PoolWorker(process=process, task_queue=task_queue)


def run_pool_shards(
    measure,
    tasks: Sequence,
    jobs: int,
    policy: RetryPolicy = NO_RETRY,
    *,
    stop_on_failure: bool = True,
) -> list[ShardOutcome | None]:
    """Run shards across ``jobs`` supervised worker processes.

    An async-dispatch loop (replacing the former ``Pool.imap``) assigns
    one task at a time to each worker and watches the fleet:

    * a worker that **dies** mid-shard (segfault, OOM kill, injected
      crash) is detected by liveness polling, its in-flight shard is
      requeued as a failed attempt and a replacement worker is spawned
      — the sweep no longer hangs forever on a lost result;
    * a shard that exceeds ``policy.timeout_s`` has its worker
      **killed** at the deadline and is requeued the same way;
    * failed attempts retry up to ``policy.max_attempts`` with
      exponential backoff, from the same ``(params, seed)`` task, so
      recovered sweeps stay bit-identical to clean ones.

    Returns outcomes aligned by task position (None = never completed,
    only possible with ``stop_on_failure`` after an earlier permanent
    failure, which also abandons in-flight work like the old pool did).
    """
    count = len(tasks)
    if count == 0:
        return []
    normalised = [_normalise_task(task) for task in tasks]
    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()
    outcomes: list[ShardOutcome | None] = [None] * count
    errors: list[list[str]] = [[] for _ in range(count)]
    #: Min-heap of (ready_time, slot, attempt) awaiting dispatch.
    ready: list[tuple[float, int, int]] = [
        (0.0, slot, 1) for slot in range(count)
    ]
    heapq.heapify(ready)
    in_flight: set[tuple[int, int]] = set()
    workers: list[_PoolWorker] = []
    pending = count
    stop = False

    def attempt_failed(slot, attempt, error, seconds) -> None:
        nonlocal pending, stop
        in_flight.discard((slot, attempt))
        errors[slot].append(error)
        if attempt < policy.max_attempts:
            ready_time = time.monotonic() + policy.delay(attempt)
            heapq.heappush(ready, (ready_time, slot, attempt + 1))
            return
        outcomes[slot] = ShardOutcome(
            value=None,
            error=error,
            seconds=seconds,
            attempts=attempt,
            attempt_errors=tuple(errors[slot]),
        )
        pending -= 1
        if stop_on_failure:
            stop = True

    def handle_result(message) -> None:
        nonlocal pending
        slot, attempt, value, error, seconds = message
        if (slot, attempt) not in in_flight:
            return  # stale: the attempt was already failed (timeout)
        for worker in workers:
            if worker.current and worker.current[:2] == (slot, attempt):
                worker.current = None
                break
        if error is None:
            in_flight.discard((slot, attempt))
            outcomes[slot] = ShardOutcome(
                value=value,
                error=None,
                seconds=seconds,
                attempts=attempt,
                attempt_errors=tuple(errors[slot]),
            )
            pending -= 1
        else:
            attempt_failed(slot, attempt, error, seconds)

    def drain(block: bool) -> None:
        try:
            handle_result(result_queue.get(timeout=_TICK if block else 0))
        except queue.Empty:
            return
        while True:
            try:
                handle_result(result_queue.get_nowait())
            except queue.Empty:
                return

    try:
        while pending > 0 and not stop:
            now = time.monotonic()
            # Dispatch ready attempts to idle (or freshly spawned)
            # workers.
            while ready and ready[0][0] <= now:
                worker = next(
                    (
                        w
                        for w in workers
                        if not w.retired
                        and w.current is None
                        and w.process.is_alive()
                    ),
                    None,
                )
                if worker is None:
                    live = sum(1 for w in workers if not w.retired)
                    if live < min(jobs, pending):
                        worker = _spawn_worker(ctx, measure, result_queue)
                        workers.append(worker)
                    else:
                        break
                _, slot, attempt = heapq.heappop(ready)
                deadline = (
                    now + policy.timeout_s
                    if policy.timeout_s is not None
                    else None
                )
                in_flight.add((slot, attempt))
                worker.submit(slot, attempt, normalised[slot], deadline)
            drain(block=True)
            # Liveness + deadline sweep over the busy workers.
            now = time.monotonic()
            for worker in workers:
                if worker.retired:
                    continue
                if worker.current is None:
                    # A worker that died while idle (external kill)
                    # must be retired, or it would count against the
                    # fleet size and starve the dispatch loop.
                    if not worker.process.is_alive():
                        worker.retired = True
                    continue
                slot, attempt, deadline, started = worker.current
                if not worker.process.is_alive():
                    # The result may have raced with the exit: drain
                    # once more before declaring the shard lost.
                    drain(block=False)
                    if worker.current is None:
                        worker.retired = True
                        continue
                    worker.retired = True
                    worker.current = None
                    attempt_failed(
                        slot,
                        attempt,
                        f"worker process died (exit code "
                        f"{worker.process.exitcode}) while running the "
                        f"shard (attempt {attempt}); the shard was "
                        "requeued",
                        now - started,
                    )
                elif deadline is not None and now >= deadline:
                    worker.kill()
                    attempt_failed(
                        slot,
                        attempt,
                        f"shard attempt {attempt} exceeded the "
                        f"{policy.timeout_s:g}s deadline; its worker "
                        "was killed and the shard requeued",
                        now - started,
                    )
    finally:
        for worker in workers:
            if worker.retired:
                continue
            if worker.current is None and worker.process.is_alive():
                # Idle worker: let it exit cleanly via the sentinel.
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + 1.0
        for worker in workers:
            if worker.retired:
                continue
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        result_queue.cancel_join_thread()
    return outcomes
