"""Shard-level checkpoint/resume for the declarative pipeline.

:func:`execute_checkpointed` runs a :class:`ScenarioSpec` like
:func:`~repro.experiments.pipeline.execute`, but records every finished
shard's measurement in a ``repro-plan-ckpt/v1`` JSON file as it goes.
A later invocation pointed at the same file skips the recorded shards
and runs only the remainder — *bit-identically*, because shard seeds
depend only on ``(spec, shard index)``, never on which shards ran in
which process or session (see :func:`~repro.experiments.pipeline.plan`).

The checkpoint carries a fingerprint of the spec (grid, fixed params,
seeding rule); resuming with a modified spec is rejected rather than
silently mixing incompatible shards.  Fused mega-batch execution
(``fused=True`` / ``repro run --fused``) advances whole shard groups
inside one engine call, so there is no per-shard boundary to checkpoint
at — the two modes are mutually exclusive by construction and the CLI
rejects the flag combination.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import warnings

# Canonical home of the fingerprint moved to the cache module when the
# spec-level resume key was generalised to per-shard content addresses;
# re-exported here for back-compat.
from .cache import spec_fingerprint  # noqa: F401
from .faults import NO_RETRY, FaultPlan, RetryPolicy
from .pipeline import (
    ExperimentPlan,
    PlanResult,
    ScenarioSpec,
    ShardError,
    ShardResult,
    make_executor,
    plan,
    shard_tasks,
)

PLAN_CKPT_FORMAT = "repro-plan-ckpt/v1"


def load_plan_checkpoint(path: str | pathlib.Path) -> dict:
    """Reload and validate a ``repro-plan-ckpt/v1`` file."""
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("format") != PLAN_CKPT_FORMAT:
        raise ValueError(
            f"{path}: not a {PLAN_CKPT_FORMAT} checkpoint "
            f"(format={doc.get('format')!r})"
        )
    return doc


def _flush(path: pathlib.Path, doc: dict) -> None:
    """Atomically rewrite the checkpoint (write-temp + rename), so a
    crash mid-flush never leaves a truncated file behind.  The previous
    flush is kept next to it as ``<name>.bak`` — the "last intact
    flush" that resume falls back to if the main file is ever found
    torn (e.g. a crash between an external writer's truncate and
    write, or filesystem damage)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    if path.exists():
        os.replace(path, path.with_suffix(path.suffix + ".bak"))
    os.replace(tmp, path)


def _load_resume(path: pathlib.Path) -> dict | None:
    """Load a checkpoint for resume, tolerating a torn file.

    A file with invalid JSON (torn by a crash mid-write or injected by
    the fault harness) is renamed ``<name>.corrupt`` and the previous
    flush (``<name>.bak``) is tried in its place; if that is missing or
    equally unreadable, returns None — the caller restarts from
    scratch rather than crashing.  A *parseable* file with the wrong
    format or an incompatible fingerprint still raises: that is a
    caller mistake, not corruption.
    """
    try:
        return load_plan_checkpoint(path)
    except json.JSONDecodeError:
        pass
    corrupt = path.with_suffix(path.suffix + ".corrupt")
    os.replace(path, corrupt)
    backup = path.with_suffix(path.suffix + ".bak")
    if backup.exists():
        try:
            doc = json.loads(backup.read_text())
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and doc.get("format") == PLAN_CKPT_FORMAT:
            warnings.warn(
                f"{path}: torn checkpoint moved to {corrupt.name}; "
                f"resuming from the last intact flush ({backup.name})",
                RuntimeWarning,
                stacklevel=3,
            )
            return doc
    warnings.warn(
        f"{path}: torn checkpoint moved to {corrupt.name}; no intact "
        "flush to fall back to — restarting from scratch",
        RuntimeWarning,
        stacklevel=3,
    )
    return None


def execute_checkpointed(
    spec_or_plan: ScenarioSpec | ExperimentPlan,
    *,
    checkpoint: str | pathlib.Path,
    jobs: int | None = None,
    executor=None,
    every: int = 1,
    resume: bool = True,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> PlanResult:
    """Run a spec with per-shard checkpointing to ``checkpoint``.

    Completed shards are flushed to the JSON file every ``every``
    finished shards (each flush boundary is one executor call, so with
    a process pool prefer ``every >= jobs``).  With ``resume=True``
    (the default) an existing compatible checkpoint's shards are
    skipped; ``resume=False`` starts over and overwrites the file.  On
    a shard failure the completed work is flushed *before* the
    :class:`~repro.experiments.pipeline.ShardError` propagates, so the
    failed invocation's progress is never lost.

    A torn checkpoint (invalid JSON — crash mid-write, disk damage, or
    the fault harness's ``tear-ckpt`` injection) does not kill the
    resume: the bad file is renamed ``.corrupt`` and execution resumes
    from the previous flush (kept as ``.bak``), or restarts from
    scratch when none survives.  ``retry`` applies a
    :class:`~repro.experiments.faults.RetryPolicy` per shard and
    ``faults`` injects a :class:`~repro.experiments.faults.FaultPlan`,
    exactly as in :func:`~repro.experiments.pipeline.execute`.

    Returns the same :class:`~repro.experiments.pipeline.PlanResult`
    as an uninterrupted :func:`~repro.experiments.pipeline.execute`
    run — values bit-identical regardless of how many sessions the
    shards were spread over.  ``elapsed_seconds`` covers only this
    invocation; per-shard ``seconds`` of resumed shards come from the
    checkpoint.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    if isinstance(spec_or_plan, ScenarioSpec):
        expanded = plan(spec_or_plan)
    else:
        expanded = spec_or_plan
    spec = expanded.spec
    if executor is None:
        executor = make_executor(jobs)
    path = pathlib.Path(checkpoint)
    fingerprint = spec_fingerprint(spec)
    completed: dict[int, dict] = {}
    if resume and path.exists():
        doc = _load_resume(path)
        if doc is not None:
            if doc.get("fingerprint") != fingerprint:
                raise ValueError(
                    f"{path}: checkpoint was taken from a different "
                    f"{doc.get('experiment')!r} spec; refusing to resume "
                    "(pass resume=False to start over)"
                )
            if int(doc.get("total_shards", -1)) != len(expanded.shards):
                raise ValueError(
                    f"{path}: checkpoint covers "
                    f"{doc.get('total_shards')} shards but the plan has "
                    f"{len(expanded.shards)}"
                )
            completed = {
                int(index): entry
                for index, entry in doc["completed"].items()
            }
    doc = {
        "format": PLAN_CKPT_FORMAT,
        "experiment": spec.name,
        "fingerprint": fingerprint,
        "total_shards": len(expanded.shards),
        "completed": {
            str(index): entry for index, entry in sorted(completed.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    _flush(path, doc)
    remaining = [
        shard for shard in expanded.shards if shard.index not in completed
    ]
    start = time.perf_counter()
    failure: ShardError | None = None
    for chunk_start in range(0, len(remaining), every):
        chunk = remaining[chunk_start : chunk_start + every]
        tasks = shard_tasks(chunk, faults)
        outcomes = executor.run_shards(
            spec.measure, tasks, retry or NO_RETRY
        )
        for shard, outcome in zip(chunk, outcomes):
            if outcome is None:
                break
            if outcome.error is not None:
                failure = ShardError.from_outcome(spec.name, shard, outcome)
                break
            entry = {"value": outcome.value, "seconds": outcome.seconds}
            completed[shard.index] = entry
            doc["completed"][str(shard.index)] = entry
        _flush(path, doc)
        if faults is not None:
            faults.tear_checkpoint(
                path, [shard.index for shard in chunk]
            )
        if failure is not None:
            raise failure
    elapsed = time.perf_counter() - start
    results = [
        ShardResult(
            shard=shard,
            value=completed[shard.index]["value"],
            seconds=float(completed[shard.index]["seconds"]),
        )
        for shard in expanded.shards
    ]
    return PlanResult(
        spec=spec,
        cells=expanded.cells,
        results=results,
        jobs=executor.jobs,
        elapsed_seconds=elapsed,
    )
