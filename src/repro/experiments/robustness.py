"""Experiments E6 and E7: sustainability and adversarial robustness.

E6 stresses Def 1.1(3): from the worst-case start (singleton colours)
no colour may ever vanish; consensus baselines are shown to violate
this immediately.  E7 injects adversarial shocks — agent floods and
brand-new colours — and measures recovery (Sec 1: "when an adversary
adds agents or colours, the protocol quickly returns into a state of
diversity and fairness").
"""

from __future__ import annotations

import numpy as np

from ..adversary.interventions import AddAgents, AddColour
from ..adversary.schedule import InterventionSchedule
from ..baselines.uniform_partition import RandomRecolouring
from ..baselines.voter import VoterModel
from ..core.diversification import Diversification
from ..core.properties import diversity_bound
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..engine.population import Population
from ..engine.rng import make_rng, spawn
from ..engine.simulator import Simulation
from .runner import run_aggregate
from .table import ExperimentTable
from .workloads import colours_from_counts, worst_case_counts


def minimum_counts_under(
    protocol_factory,
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(min colour counts, min dark counts) over one agent-level run."""
    weights = weights.copy()
    protocol = protocol_factory(weights)
    population = Population.from_colours(
        colours_from_counts(worst_case_counts(n, weights.k)),
        protocol,
        k=weights.k,
    )
    tracker = MinCountTracker()
    Simulation(protocol, population, rng=seed, observers=[tracker]).run(steps)
    return tracker.min_colour_counts.copy(), tracker.min_dark_counts.copy()


def experiment_sustainability(
    n: int = 128,
    weight_vector=(1.0, 1.0, 2.0, 4.0),
    *,
    steps_per_agent: int = 600,
    seeds: int = 10,
    base_seed: int = 1234,
) -> ExperimentTable:
    """E6: colour survival from singleton starts (Def 1.1(3)).

    Expected shape: Diversification never loses a colour in any run
    (min dark count stays >= 1) — the structural invariant; the Voter
    model loses colours routinely from the same start.  Random
    recolouring also keeps lone supporters (change requires meeting
    one's own colour) but needs global knowledge of k and ignores
    weights — its failure is diversity, not sustainability.
    """
    weights = WeightTable(weight_vector)
    steps = steps_per_agent * n
    rng = make_rng(base_seed)
    contenders = [
        ("diversification", lambda w: Diversification(w)),
        ("voter", lambda w: VoterModel()),
        ("random-recolouring", lambda w: RandomRecolouring(w.k)),
    ]
    table = ExperimentTable(
        "E6",
        "Sustainability from singleton starts (Def 1.1(3))",
        ["protocol", "runs", "runs w/ all colours alive",
         "min colour count seen", "min dark count seen", "sustainable"],
    )
    for name, factory in contenders:
        survived = 0
        overall_min = np.inf
        overall_dark_min = np.inf
        for child in spawn(rng, seeds):
            mins, dark_mins = minimum_counts_under(
                factory, weights, n, steps, seed=child
            )
            overall_min = min(overall_min, int(mins.min()))
            overall_dark_min = min(overall_dark_min, int(dark_mins.min()))
            if mins.min() >= 1:
                survived += 1
        table.add_row(
            name, seeds, survived, int(overall_min),
            int(overall_dark_min), survived == seeds,
        )
    table.add_note(
        "the structural invariant: a lone dark agent of a colour never "
        "changes, so Diversification keeps min dark count >= 1 with "
        "probability 1"
    )
    return table


def recovery_time_after(
    times: np.ndarray,
    counts: np.ndarray,
    weights: WeightTable,
    shock_time: int,
    bound: float,
) -> int | None:
    """First recorded time after ``shock_time`` back inside the band."""
    fair = weights.fair_shares()
    k = len(fair)
    for index in range(len(times)):
        if times[index] <= shock_time:
            continue
        row = counts[index][:k]
        shares = row / row.sum()
        if np.abs(shares - fair).max() <= bound:
            return int(times[index])
    return None


def experiment_adversary(
    n: int = 1024,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    seed: int = 404,
    settle_factor: float = 8.0,
) -> ExperimentTable:
    """E7: recovery after adversarial agent floods and colour addition.

    Two shocks: (1) flood — colour 0 gains n/2 fresh dark agents;
    (2) a brand-new colour (weight 2) arrives with a single dark agent.
    Expected shape: the diversity error spikes at each shock and decays
    back inside the band; the new colour ends near its fair share.
    """
    weights = WeightTable(weight_vector)
    w = weights.total
    settle = int(settle_factor * w * w * n * np.log(n))
    shock1 = settle
    shock2 = settle + settle
    total = 3 * settle
    schedule = InterventionSchedule(
        [
            (shock1, AddAgents(colour=0, count=n // 2, dark=True)),
            (shock2, AddColour(weight=2.0, count=1, dark=True)),
        ]
    )
    record = run_aggregate(
        weights, n, total, start="worst", seed=seed,
        record_interval=max(1, total // 1024), schedule=schedule,
    )
    final_weights = record.weights  # includes the added colour
    table = ExperimentTable(
        "E7",
        "Adversarial robustness: agent flood and new colour (Sec 1)",
        ["event", "time", "population after", "k after",
         "recovery time", "recovery Δt / (n ln n)"],
    )
    bound = diversity_bound(record.n, 1.0)

    def _describe(label, shock_time, weights_at, k_at):
        recovery = recovery_time_after(
            record.times,
            record.colour_counts[:, :k_at],
            weights_at,
            shock_time,
            bound,
        )
        population_after = int(
            record.colour_counts[
                np.searchsorted(record.times, shock_time, side="right")
            ].sum()
        )
        delta = None if recovery is None else recovery - shock_time
        table.add_row(
            label, shock_time, population_after, k_at,
            "-" if recovery is None else recovery,
            "-" if delta is None else delta / (record.n * np.log(record.n)),
        )

    _describe("flood colour 0 (+n/2 dark)", shock1, weights, weights.k)
    _describe("new colour (w=2, 1 dark)", shock2, final_weights,
              final_weights.k)
    final_counts = record.final_colour_counts
    final_shares = final_counts / final_counts.sum()
    fair = final_weights.fair_shares()
    table.add_note(
        "final shares vs fair shares (incl. new colour): "
        + ", ".join(
            f"c{i}: {final_shares[i]:.3f}/{fair[i]:.3f}"
            for i in range(final_weights.k)
        )
    )
    table.add_note(
        f"diversity band used for recovery: ±{bound:.4f} on every share"
    )
    return table
