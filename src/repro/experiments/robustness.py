"""Experiments E6 and E7: sustainability and adversarial robustness.

E6 stresses Def 1.1(3): from the worst-case start (singleton colours)
no colour may ever vanish; consensus baselines are shown to violate
this immediately.  E7 injects adversarial shocks — agent floods and
brand-new colours — and measures recovery (Sec 1: "when an adversary
adds agents or colours, the protocol quickly returns into a state of
diversity and fairness").

E6's ``(protocol × seed)`` sweep runs through the declarative pipeline
with the ``"stream"`` seed scope (consecutive children of the base
seed, reproducing the legacy shared-generator spawn pattern); E7 is a
single recorded run and rides the pipeline as a one-shard plan.

Both experiments additionally replicate their adversarial runs through
the *fused batched* aggregate engine
(:func:`~repro.experiments.runner.run_aggregate` with
``replications=R`` and a ``schedule``): all R shocked replications
advance as one ``(R, 2k)`` count matrix, with the interventions applied
batch-wide between event segments.
"""

from __future__ import annotations

import numpy as np

from ..adversary.interventions import AddAgents, AddColour
from ..adversary.schedule import InterventionSchedule
from ..baselines.uniform_partition import RandomRecolouring
from ..baselines.voter import VoterModel
from ..core.diversification import Diversification
from ..core.properties import diversity_bound
from ..core.weights import WeightTable
from ..engine.observers import MinCountTracker
from ..engine.population import Population
from ..engine.simulator import Simulation
from .pipeline import ScenarioSpec, execute
from .runner import run_aggregate
from .table import ExperimentTable
from .workloads import colours_from_counts, worst_case_counts

E6_PROFILES = {
    "full": {},
    "quick": {
        "n": 96, "steps_per_agent": 400, "seeds": 5,
        "adv_replications": 4,
    },
}
E7_PROFILES = {
    "full": {},
    "quick": {"n": 512, "settle_factor": 6.0, "replications": 8},
}

# E6 contenders, in table order.  Keyed by name so shards can rebuild
# their protocol from plain parameters.
_E6_FACTORIES = {
    "diversification": lambda w: Diversification(w),
    "voter": lambda w: VoterModel(),
    "random-recolouring": lambda w: RandomRecolouring(w.k),
}


def minimum_counts_under(
    protocol_factory,
    weights: WeightTable,
    n: int,
    steps: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(min colour counts, min dark counts) over one agent-level run."""
    weights = weights.copy()
    protocol = protocol_factory(weights)
    population = Population.from_colours(
        colours_from_counts(worst_case_counts(n, weights.k)),
        protocol,
        k=weights.k,
    )
    tracker = MinCountTracker()
    Simulation(protocol, population, rng=seed, observers=[tracker]).run(steps)
    return tracker.min_colour_counts.copy(), tracker.min_dark_counts.copy()


def _measure_sustainability(params: dict, rng: np.random.Generator) -> dict:
    """E6 shard: one survival run of one contender, plus (for the
    weighted protocol) a fused batched adversarial survival check."""
    n = params["n"]
    steps = params["steps_per_agent"] * n
    mins, dark_mins = minimum_counts_under(
        _E6_FACTORIES[params["protocol"]],
        WeightTable(params["vector"]),
        n,
        steps,
        seed=rng,
    )
    adv_min_dark = None
    replications = params["adv_replications"]
    if replications and params["protocol"] == "diversification":
        # R shocked replications fused into one batched aggregate
        # engine: an agent flood, then a brand-new (dark) colour.
        schedule = InterventionSchedule(
            [
                (steps // 3, AddAgents(colour=0, count=n // 4, dark=True)),
                (2 * steps // 3, AddColour(weight=2.0, count=1, dark=True)),
            ]
        )
        batch = run_aggregate(
            WeightTable(params["vector"]), n, steps,
            start="worst", seed=rng,
            replications=replications, schedule=schedule, batched=True,
        )
        adv_min_dark = int(batch.final_dark_counts.min())
    return {
        "min_colour": int(mins.min()),
        "min_dark": int(dark_mins.min()),
        "adv_min_dark": adv_min_dark,
    }


def _build_sustainability(result) -> ExperimentTable:
    """Aggregate per-run minima into the survival table."""
    seeds = result.spec.replications
    table = ExperimentTable(
        "E6",
        "Sustainability from singleton starts (Def 1.1(3))",
        ["protocol", "runs", "runs w/ all colours alive",
         "min colour count seen", "min dark count seen",
         "survives adversary", "sustainable"],
    )
    for params, values in result.by_cell():
        survived = sum(1 for v in values if v["min_colour"] >= 1)
        overall_min = min(v["min_colour"] for v in values)
        overall_dark_min = min(v["min_dark"] for v in values)
        adversarial = [
            v["adv_min_dark"] for v in values
            if v.get("adv_min_dark") is not None
        ]
        table.add_row(
            params["protocol"], seeds, survived, int(overall_min),
            int(overall_dark_min),
            "-" if not adversarial else all(m >= 1 for m in adversarial),
            survived == seeds,
        )
    table.add_note(
        "the structural invariant: a lone dark agent of a colour never "
        "changes, so Diversification keeps min dark count >= 1 with "
        "probability 1"
    )
    table.add_note(
        "'survives adversary': fused batched replications under an "
        "agent-flood + new-dark-colour schedule keep every dark count "
        ">= 1 at the horizon ('-' for protocols without weights)"
    )
    return table


def spec_sustainability(
    n: int = 128,
    weight_vector=(1.0, 1.0, 2.0, 4.0),
    *,
    steps_per_agent: int = 600,
    seeds: int = 10,
    base_seed: int = 1234,
    adv_replications: int = 8,
) -> ScenarioSpec:
    """E6 as a scenario: contender grid × ``seeds`` replications.

    ``adv_replications`` sets the size of the fused batched adversarial
    survival check run per diversification shard (0 disables it).
    """
    return ScenarioSpec(
        name="e6",
        measure=_measure_sustainability,
        grid={"protocol": tuple(_E6_FACTORIES)},
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "steps_per_agent": steps_per_agent,
            "adv_replications": adv_replications,
        },
        replications=seeds,
        base_seed=base_seed,
        seed_scope="stream",
        build=_build_sustainability,
    )


def experiment_sustainability(
    n: int = 128,
    weight_vector=(1.0, 1.0, 2.0, 4.0),
    *,
    steps_per_agent: int = 600,
    seeds: int = 10,
    base_seed: int = 1234,
    adv_replications: int = 8,
) -> ExperimentTable:
    """E6: colour survival from singleton starts (Def 1.1(3)).

    Expected shape: Diversification never loses a colour in any run
    (min dark count stays >= 1) — the structural invariant; the Voter
    model loses colours routinely from the same start.  Random
    recolouring also keeps lone supporters (change requires meeting
    one's own colour) but needs global knowledge of k and ignores
    weights — its failure is diversity, not sustainability.  The
    diversification rows additionally verify survival under an
    adversarial schedule across ``adv_replications`` fused batched
    replications.
    """
    return execute(
        spec_sustainability(
            n, weight_vector, steps_per_agent=steps_per_agent,
            seeds=seeds, base_seed=base_seed,
            adv_replications=adv_replications,
        )
    ).table()


def recovery_time_after(
    times: np.ndarray,
    counts: np.ndarray,
    weights: WeightTable,
    shock_time: int,
    bound: float,
) -> int | None:
    """First recorded time after ``shock_time`` back inside the band."""
    fair = weights.fair_shares()
    k = len(fair)
    for index in range(len(times)):
        if times[index] <= shock_time:
            continue
        row = counts[index][:k]
        shares = row / row.sum()
        if np.abs(shares - fair).max() <= bound:
            return int(times[index])
    return None


def _measure_adversary(params: dict, rng: np.random.Generator) -> dict:
    """E7 shard: one recorded run with the flood and new-colour shocks,
    plus R shocked replications fused into the batched engine."""
    weights = WeightTable(params["vector"])
    w = weights.total
    n = params["n"]
    settle = int(params["settle_factor"] * w * w * n * np.log(n))
    shock1 = settle
    shock2 = settle + settle
    total = 3 * settle
    schedule = InterventionSchedule(
        [
            (shock1, AddAgents(colour=0, count=n // 2, dark=True)),
            (shock2, AddColour(weight=2.0, count=1, dark=True)),
        ]
    )
    record = run_aggregate(
        weights, n, total, start="worst", seed=rng,
        record_interval=max(1, total // 1024), schedule=schedule,
    )
    # The same shocked run, replicated: all R replications advance as
    # one (R, 2k) batched engine with the schedule applied batch-wide.
    replications = params["replications"]
    batch = run_aggregate(
        weights, n, total, start="worst", seed=rng,
        replications=replications, schedule=schedule, batched=True,
    )
    return {
        "times": [int(t) for t in record.times],
        "colour_counts": record.colour_counts.tolist(),
        "final_counts": [int(v) for v in record.final_colour_counts],
        "n": int(record.n),
        "weights_after": [float(v) for v in record.weights],
        "shock1": shock1,
        "shock2": shock2,
        "replications": replications,
        "replicated_final_counts": batch.final_colour_counts.tolist(),
        "replicated_min_dark": int(batch.final_dark_counts.min()),
    }


def _build_adversary(result) -> ExperimentTable:
    """Format the recovery rows for both shocks."""
    params = result.cells[0]
    (value,) = result.values()
    weights = WeightTable(params["vector"])
    final_weights = WeightTable(value["weights_after"])
    times = np.asarray(value["times"], dtype=np.int64)
    colour_counts = np.asarray(value["colour_counts"], dtype=np.int64)
    n_after = value["n"]
    table = ExperimentTable(
        "E7",
        "Adversarial robustness: agent flood and new colour (Sec 1)",
        ["event", "time", "population after", "k after",
         "recovery time", "recovery Δt / (n ln n)"],
    )
    bound = diversity_bound(n_after, 1.0)

    def _describe(label, shock_time, weights_at, k_at):
        recovery = recovery_time_after(
            times,
            colour_counts[:, :k_at],
            weights_at,
            shock_time,
            bound,
        )
        population_after = int(
            colour_counts[
                np.searchsorted(times, shock_time, side="right")
            ].sum()
        )
        delta = None if recovery is None else recovery - shock_time
        table.add_row(
            label, shock_time, population_after, k_at,
            "-" if recovery is None else recovery,
            "-" if delta is None else delta / (n_after * np.log(n_after)),
        )

    _describe(
        "flood colour 0 (+n/2 dark)", value["shock1"], weights, weights.k
    )
    _describe(
        "new colour (w=2, 1 dark)", value["shock2"], final_weights,
        final_weights.k,
    )
    final_counts = np.asarray(value["final_counts"], dtype=np.int64)
    final_shares = final_counts / final_counts.sum()
    fair = final_weights.fair_shares()
    table.add_note(
        "final shares vs fair shares (incl. new colour): "
        + ", ".join(
            f"c{i}: {final_shares[i]:.3f}/{fair[i]:.3f}"
            for i in range(final_weights.k)
        )
    )
    replicated = np.asarray(
        value["replicated_final_counts"], dtype=np.float64
    )
    mean_shares = (
        replicated / replicated.sum(axis=1, keepdims=True)
    ).mean(axis=0)
    table.add_note(
        f"fused batched replications (R={value['replications']}): "
        "mean final shares "
        + ", ".join(
            f"c{i}: {mean_shares[i]:.3f}/{fair[i]:.3f}"
            for i in range(final_weights.k)
        )
        + f"; min dark count {value['replicated_min_dark']} "
        f"(sustainable={value['replicated_min_dark'] >= 1})"
    )
    table.add_note(
        f"diversity band used for recovery: ±{bound:.4f} on every share"
    )
    return table


def spec_adversary(
    n: int = 1024,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    seed: int = 404,
    settle_factor: float = 8.0,
    replications: int = 24,
) -> ScenarioSpec:
    """E7 as a one-shard scenario (single recorded shocked run, plus
    ``replications`` fused batched repetitions of the same shocks)."""
    return ScenarioSpec(
        name="e7",
        measure=_measure_adversary,
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "settle_factor": settle_factor,
            "replications": replications,
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_adversary,
    )


def experiment_adversary(
    n: int = 1024,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    seed: int = 404,
    settle_factor: float = 8.0,
    replications: int = 24,
) -> ExperimentTable:
    """E7: recovery after adversarial agent floods and colour addition.

    Two shocks: (1) flood — colour 0 gains n/2 fresh dark agents;
    (2) a brand-new colour (weight 2) arrives with a single dark agent.
    Expected shape: the diversity error spikes at each shock and decays
    back inside the band; the new colour ends near its fair share, both
    in the recorded run and on average over ``replications`` fused
    batched repetitions of the same schedule.
    """
    return execute(
        spec_adversary(
            n, weight_vector, seed=seed, settle_factor=settle_factor,
            replications=replications,
        )
    ).table()
