"""Experiment E8: the equilibrium Markov chain of Sec 2.4.

Checks, numerically, every chain-level ingredient of the fairness
proof: the claimed stationary distribution solves ``πP = π``; the chain
mixes; simulated visit counts concentrate as Theorem A.2 predicts; and
the ``P±`` perturbed chains shift the stationary mass by ``O(err)``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.markov import (
    equilibrium_chain,
    mixing_time,
    perturbed_chain,
    simulate_chain,
    stationary_distribution,
    theoretical_stationary,
    total_variation,
)
from ..core.weights import WeightTable
from .table import ExperimentTable


def experiment_markov_chain(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    err_factor: float = 0.25,
    sim_steps: int = 200_000,
    seed: int = 17,
) -> ExperimentTable:
    """E8: stationarity, mixing and perturbation of the chain ``M``.

    Expected shape: ``πP = π`` holds to machine precision for the
    theoretical π of Eqs. (18)-(19); the mixing time scales like
    ``Θ(n log k / ·)`` (finite, small multiples of n); simulated visit
    fractions match π; perturbed stationary mass moves by ``O(err·n)``
    relative.
    """
    weights = WeightTable(weight_vector)
    k = weights.k
    P = equilibrium_chain(weights, n)
    pi_theory = theoretical_stationary(weights)
    pi_solved = stationary_distribution(P)
    residual = float(np.abs(pi_theory @ P - pi_theory).max())
    tv_solved = total_variation(pi_theory, pi_solved)
    tmix = mixing_time(P)

    visits = simulate_chain(P, start=0, steps=sim_steps, rng=seed)
    empirical = visits / visits.sum()
    tv_visits = total_variation(empirical, pi_theory)

    err = err_factor / ((1.0 + weights.total) * n)
    plus = perturbed_chain(weights, n, target_colour=0, err=err, sign=+1)
    minus = perturbed_chain(weights, n, target_colour=0, err=err, sign=-1)
    pi_plus = stationary_distribution(plus)
    pi_minus = stationary_distribution(minus)

    table = ExperimentTable(
        "E8",
        "Equilibrium chain M (Sec 2.4): stationarity, mixing, "
        "perturbation sandwich",
        ["check", "value", "reference", "ok"],
    )
    table.add_row("‖πP − π‖∞ (theoretical π)", residual, "≈ 0",
                  residual < 1e-12)
    table.add_row("TV(π_solved, π_theory)", tv_solved, "≈ 0",
                  tv_solved < 1e-9)
    table.add_row("mixing time (1/8)", tmix,
                  f"finite; O((1+w)n)={int(4 * (1 + weights.total) * n)}",
                  tmix <= 16 * (1 + weights.total) * n)
    # The visit-count noise scales like sqrt(T_mix / steps) (Thm A.2):
    # with few effective samples the tolerance must widen accordingly.
    visit_tolerance = max(0.05, 4.0 * float(np.sqrt(tmix / sim_steps)))
    table.add_row(
        "TV(empirical visits, π)", tv_visits,
        f"≤ {visit_tolerance:.3f} (Thm A.2 scale, {sim_steps} steps)",
        tv_visits < visit_tolerance,
    )
    sandwich = bool(
        pi_minus[0] <= pi_theory[0] + 1e-12
        and pi_theory[0] <= pi_plus[0] + 1e-12
    )
    table.add_row(
        "π−(D_0) ≤ π(D_0) ≤ π+(D_0)",
        f"{pi_minus[0]:.5f} ≤ {pi_theory[0]:.5f} ≤ {pi_plus[0]:.5f}",
        "sandwich (majorisation argument)",
        sandwich,
    )
    shift = max(
        total_variation(pi_plus, pi_theory),
        total_variation(pi_minus, pi_theory),
    )
    table.add_row(
        "TV(π±, π)", shift,
        f"O(err·n·k) = {err * n * k:.4f}", shift <= 8 * err * n * k,
    )
    table.add_note(
        "π(D_i)=w_i/(1+w), π(L_i)=(w_i/w)/(1+w) — the fairness targets"
    )
    return table
