"""Experiment E8: the equilibrium Markov chain of Sec 2.4.

Checks, numerically, every chain-level ingredient of the fairness
proof: the claimed stationary distribution solves ``πP = π``; the chain
mixes; simulated visit counts concentrate as Theorem A.2 predicts; and
the ``P±`` perturbed chains shift the stationary mass by ``O(err)``.

Only the visit-count simulation is stochastic, so E8 rides the
pipeline as a one-shard plan (``"direct"`` seed scope).
"""

from __future__ import annotations

import numpy as np

from ..analysis.markov import (
    equilibrium_chain,
    mixing_time,
    perturbed_chain,
    simulate_chain,
    stationary_distribution,
    theoretical_stationary,
    total_variation,
)
from ..core.weights import WeightTable
from .pipeline import ScenarioSpec, execute
from .table import ExperimentTable

E8_PROFILES = {"full": {}, "quick": {"n": 128, "sim_steps": 60_000}}


def _measure_chain(params: dict, rng: np.random.Generator) -> dict:
    """E8 shard: all chain-level checks (one simulated visit stream)."""
    weights = WeightTable(params["vector"])
    n = params["n"]
    P = equilibrium_chain(weights, n)
    pi_theory = theoretical_stationary(weights)
    pi_solved = stationary_distribution(P)
    residual = float(np.abs(pi_theory @ P - pi_theory).max())
    tv_solved = float(total_variation(pi_theory, pi_solved))
    tmix = int(mixing_time(P))

    visits = simulate_chain(
        P, start=0, steps=params["sim_steps"], rng=rng
    )
    empirical = visits / visits.sum()
    tv_visits = float(total_variation(empirical, pi_theory))

    err = params["err_factor"] / ((1.0 + weights.total) * n)
    plus = perturbed_chain(weights, n, target_colour=0, err=err, sign=+1)
    minus = perturbed_chain(weights, n, target_colour=0, err=err, sign=-1)
    pi_plus = stationary_distribution(plus)
    pi_minus = stationary_distribution(minus)
    shift = max(
        float(total_variation(pi_plus, pi_theory)),
        float(total_variation(pi_minus, pi_theory)),
    )
    return {
        "residual": residual,
        "tv_solved": tv_solved,
        "tmix": tmix,
        "tv_visits": tv_visits,
        "pi_theory_0": float(pi_theory[0]),
        "pi_plus_0": float(pi_plus[0]),
        "pi_minus_0": float(pi_minus[0]),
        "shift": shift,
    }


def _build_chain(result) -> ExperimentTable:
    """Format the check/value/reference rows."""
    params = result.cells[0]
    (value,) = result.values()
    weights = WeightTable(params["vector"])
    n = params["n"]
    k = weights.k
    sim_steps = params["sim_steps"]
    err = params["err_factor"] / ((1.0 + weights.total) * n)

    table = ExperimentTable(
        "E8",
        "Equilibrium chain M (Sec 2.4): stationarity, mixing, "
        "perturbation sandwich",
        ["check", "value", "reference", "ok"],
    )
    table.add_row(
        "‖πP − π‖∞ (theoretical π)", value["residual"], "≈ 0",
        value["residual"] < 1e-12,
    )
    table.add_row(
        "TV(π_solved, π_theory)", value["tv_solved"], "≈ 0",
        value["tv_solved"] < 1e-9,
    )
    tmix = value["tmix"]
    table.add_row(
        "mixing time (1/8)", tmix,
        f"finite; O((1+w)n)={int(4 * (1 + weights.total) * n)}",
        tmix <= 16 * (1 + weights.total) * n,
    )
    # The visit-count noise scales like sqrt(T_mix / steps) (Thm A.2):
    # with few effective samples the tolerance must widen accordingly.
    visit_tolerance = max(0.05, 4.0 * float(np.sqrt(tmix / sim_steps)))
    table.add_row(
        "TV(empirical visits, π)", value["tv_visits"],
        f"≤ {visit_tolerance:.3f} (Thm A.2 scale, {sim_steps} steps)",
        value["tv_visits"] < visit_tolerance,
    )
    sandwich = bool(
        value["pi_minus_0"] <= value["pi_theory_0"] + 1e-12
        and value["pi_theory_0"] <= value["pi_plus_0"] + 1e-12
    )
    table.add_row(
        "π−(D_0) ≤ π(D_0) ≤ π+(D_0)",
        f"{value['pi_minus_0']:.5f} ≤ {value['pi_theory_0']:.5f} "
        f"≤ {value['pi_plus_0']:.5f}",
        "sandwich (majorisation argument)",
        sandwich,
    )
    table.add_row(
        "TV(π±, π)", value["shift"],
        f"O(err·n·k) = {err * n * k:.4f}",
        value["shift"] <= 8 * err * n * k,
    )
    table.add_note(
        "π(D_i)=w_i/(1+w), π(L_i)=(w_i/w)/(1+w) — the fairness targets"
    )
    return table


def spec_markov_chain(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    err_factor: float = 0.25,
    sim_steps: int = 200_000,
    seed: int = 17,
) -> ScenarioSpec:
    """E8 as a one-shard scenario (one simulated visit stream)."""
    return ScenarioSpec(
        name="e8",
        measure=_measure_chain,
        fixed={
            "vector": tuple(weight_vector),
            "n": n,
            "err_factor": err_factor,
            "sim_steps": sim_steps,
        },
        base_seed=seed,
        seed_scope="direct",
        build=_build_chain,
    )


def experiment_markov_chain(
    n: int = 256,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    err_factor: float = 0.25,
    sim_steps: int = 200_000,
    seed: int = 17,
) -> ExperimentTable:
    """E8: stationarity, mixing and perturbation of the chain ``M``.

    Expected shape: ``πP = π`` holds to machine precision for the
    theoretical π of Eqs. (18)-(19); the mixing time scales like
    ``Θ(n log k / ·)`` (finite, small multiples of n); simulated visit
    fractions match π; perturbed stationary mass moves by ``O(err·n)``
    relative.
    """
    return execute(
        spec_markov_chain(
            n, weight_vector, err_factor=err_factor, sim_steps=sim_steps,
            seed=seed,
        )
    ).table()
