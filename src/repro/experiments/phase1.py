"""Experiment E3b: Phase 1 — "the rise of the minorities" (Sec 2.1).

Lemma 2.1: from any start, the light mass ``a(t)`` reaches
``(1−ε) n/(w+1)`` within ``O(n w/ε)`` steps and stays there
(exponentially long).  Lemma 2.2: each under-represented dark colour
``A_i`` then climbs to ``(1−3ε) w_i n/(1+w)`` within
``O(w n log n / ε)`` steps — slowly at first (a singleton colour is
rarely sampled) and then increasingly fast, the biased-random-walk
picture the proofs couple against.

The ``n`` sweep runs through the declarative pipeline (one shard per
``(n, seed)``, ``"cell"`` seed scope reproducing the legacy
``spawn(make_rng(base_seed + n), seeds)`` streams).
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from .pipeline import ScenarioSpec, execute
from .table import ExperimentTable
from .workloads import worst_case_counts

E3B_PROFILES = {"full": {}, "quick": {"ns": (128, 256), "seeds": 2}}


def hitting_times(
    weights: WeightTable,
    n: int,
    *,
    epsilon: float = 0.2,
    seed: int | np.random.Generator | None = None,
    max_steps_factor: float = 60.0,
) -> dict:
    """T1 (light mass region R1) and T2 (all dark colours risen) from
    the worst-case start, one run."""
    weights = weights.copy()
    w = weights.total
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(n, weights.k), rng=seed
    )
    light_target = (1.0 - epsilon) * n / (w + 1.0)
    dark_targets = (1.0 - 3.0 * epsilon) * weights.dark_shares() * n
    max_steps = int(max_steps_factor * w * w * n * np.log(n))

    t1 = engine.run_until(
        lambda e: e.light_counts().sum() >= light_target,
        max_steps=max_steps,
    )
    t2 = None
    if t1 is not None:
        t2 = engine.run_until(
            lambda e: bool((e.dark_counts() >= dark_targets).all()),
            max_steps=max_steps,
        )
    return {"t1": t1, "t2": t2, "n": n, "w": w, "epsilon": epsilon}


def _measure_phase1(params: dict, rng: np.random.Generator) -> dict:
    """E3b shard: one (T1, T2) hitting-time replication at one ``n``."""
    result = hitting_times(
        WeightTable(params["vector"]), params["n"],
        epsilon=params["epsilon"], seed=rng,
    )
    return {
        "t1": None if result["t1"] is None else int(result["t1"]),
        "t2": None if result["t2"] is None else int(result["t2"]),
    }


def _build_phase1(result) -> ExperimentTable:
    """Aggregate E3b shards into the Lemma 2.1/2.2 scaling table."""
    epsilon = result.spec.fixed["epsilon"]
    w = WeightTable(result.spec.fixed["vector"]).total
    table = ExperimentTable(
        "E3b",
        "Phase 1 hitting times: light mass (Lemma 2.1) and minority "
        "rise (Lemma 2.2)",
        ["n", "mean T1", "T1/(n w)", "mean T2", "T2/(w n ln n)", "hits"],
    )
    for params, values in result.by_cell():
        n = params["n"]
        t1s = [v["t1"] for v in values if v["t1"] is not None]
        t2s = [v["t2"] for v in values if v["t2"] is not None]
        mean_t1 = float(np.mean(t1s)) if t1s else None
        mean_t2 = float(np.mean(t2s)) if t2s else None
        table.add_row(
            n,
            "-" if mean_t1 is None else mean_t1,
            "-" if mean_t1 is None else mean_t1 / (n * w),
            "-" if mean_t2 is None else mean_t2,
            "-" if mean_t2 is None else mean_t2 / (w * n * np.log(n)),
            f"{len(t1s)}/{len(t2s)}",
        )
    table.add_note(
        f"epsilon={epsilon}: targets a ≥ (1−ε)n/(w+1) and "
        "A_i ≥ (1−3ε)·w_i n/(1+w) for all i"
    )
    table.add_note(
        "expected shape: T1/(n w) and T2/(w n ln n) roughly constant "
        "in n (the paper's Phase-1 bounds, constants unoptimised)"
    )
    return table


def spec_phase1(
    ns=(256, 512, 1024, 2048),
    weight_vector=(1.0, 2.0, 3.0),
    *,
    epsilon: float = 0.2,
    seeds: int = 3,
    base_seed: int = 777,
) -> ScenarioSpec:
    """E3b as a scenario: an ``n`` sweep with ``seeds`` shards per point."""
    return ScenarioSpec(
        name="e3b",
        measure=_measure_phase1,
        grid={"n": tuple(ns)},
        fixed={"vector": tuple(weight_vector), "epsilon": epsilon},
        replications=seeds,
        base_seed=base_seed,
        seed_scope="cell",
        cell_seed=lambda params: base_seed + params["n"],
        build=_build_phase1,
    )


def experiment_phase1(
    ns=(256, 512, 1024, 2048),
    weight_vector=(1.0, 2.0, 3.0),
    *,
    epsilon: float = 0.2,
    seeds: int = 3,
    base_seed: int = 777,
) -> ExperimentTable:
    """E3b: Phase-1 hitting times vs the Lemma 2.1/2.2 scales.

    Expected shape: ``T1/(n w)`` roughly flat in ``n`` (Lemma 2.1's
    ``O(n w/ε)``); ``T2/(w n ln n)`` roughly flat (Lemma 2.2's
    ``O(w n log n / ε)``).
    """
    return execute(
        spec_phase1(
            ns, weight_vector, epsilon=epsilon, seeds=seeds,
            base_seed=base_seed,
        )
    ).table()
