"""Experiments E1 and E2: convergence time and diversity error.

E1 measures the hitting time of the diversity band from the worst-case
start and checks the ``O(w² n log n)`` shape of Thm 1.3.  E2 measures
the stabilised diversity error and checks the ``Õ(1/√n)`` shape of
Def 1.1(1)/Eq. (1).

Both run through the declarative pipeline: the sweep over
``(weights, n)`` is a :class:`~repro.experiments.pipeline.ScenarioSpec`
grid, each seed is an independent shard, and the legacy
``spawn(make_rng(base_seed + n), seeds)`` replication streams are
reproduced by the ``"cell"`` seed scope.
"""

from __future__ import annotations

import numpy as np

from ..core.properties import diversity_bound, fair_share_deviation
from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from ..analysis.statistics import fit_n_log_n, fit_power_law
from .pipeline import ScenarioSpec, execute
from .table import ExperimentTable
from .workloads import worst_case_counts

E1_PROFILES = {"full": {}, "quick": {"ns": (128, 256), "seeds": 2}}
E2_PROFILES = {"full": {}, "quick": {"ns": (128, 256, 512), "seeds": 2}}


def measure_convergence_time(
    weights: WeightTable,
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
    bound_constant: float = 1.0,
    max_steps_factor: float = 30.0,
) -> int | None:
    """Hitting time of the diversity band from the worst-case start.

    The band is ``max_i |C_i/n − w_i/w| <= bound_constant·sqrt(log n/n)``
    and the search horizon is ``max_steps_factor · w² n log n``.
    """
    weights = weights.copy()
    fair = weights.fair_shares()
    bound = diversity_bound(n, bound_constant)

    def inside_band(engine: AggregateSimulation) -> bool:
        counts = engine.colour_counts()
        shares = counts / counts.sum()
        return bool(np.abs(shares - fair).max() <= bound)

    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(n, weights.k), rng=seed
    )
    w = weights.total
    max_steps = int(max_steps_factor * w * w * n * np.log(n))
    return engine.run_until(inside_band, max_steps=max_steps)


def _measure_hitting(params: dict, rng: np.random.Generator) -> dict:
    """E1 shard: one hitting-time replication at one ``(vector, n)``."""
    hit = measure_convergence_time(
        WeightTable(params["vector"]), params["n"], seed=rng
    )
    return {"hit": None if hit is None else int(hit)}


def _build_convergence_scaling(result) -> ExperimentTable:
    """Aggregate E1 shards into the Thm-1.3 scaling table."""
    table = ExperimentTable(
        "E1",
        "Convergence time to the diversity band (Thm 1.3: O(w^2 n log n))",
        ["weights", "n", "mean T", "std T", "T/(n ln n)", "T/(w^2 n ln n)",
         "hits"],
    )
    groups: dict[tuple, list] = {}
    for params, values in result.by_cell():
        groups.setdefault(params["vector"], []).append(
            (params["n"], values)
        )
    for vector, cells in groups.items():
        weights = WeightTable(vector)
        w = weights.total
        mean_times = []
        used_ns = []
        for n, values in cells:
            times = [v["hit"] for v in values if v["hit"] is not None]
            if times:
                mean = float(np.mean(times))
                std = float(np.std(times))
                mean_times.append(mean)
                used_ns.append(n)
                norm = n * np.log(n)
                table.add_row(
                    str(list(vector)), n, mean, std,
                    mean / norm, mean / (w * w * norm), len(times),
                )
            else:
                table.add_row(str(list(vector)), n, "-", "-", "-", "-", 0)
        if len(used_ns) >= 2:
            fit = fit_n_log_n(np.array(used_ns), np.array(mean_times))
            table.add_note(
                f"weights {list(vector)}: T ≈ {fit.constant:.2f}·n·ln n "
                f"(rel. residual {fit.relative_residual:.2f})"
            )
    table.add_note(
        "Expected shape: T/(n ln n) flat in n; larger total weight w → "
        "larger constant (paper: quadratic in w, we do not tune constants)."
    )
    return table


def spec_convergence_scaling(
    ns=(128, 256, 512, 1024),
    weight_vectors=((1.0, 1.0, 1.0, 1.0), (1.0, 2.0, 3.0, 4.0)),
    *,
    seeds: int = 3,
    base_seed: int = 2021,
) -> ScenarioSpec:
    """E1 as a scenario: ``(vector × n)`` grid, ``seeds`` shards each."""
    return ScenarioSpec(
        name="e1",
        measure=_measure_hitting,
        grid={
            "vector": tuple(tuple(vector) for vector in weight_vectors),
            "n": tuple(ns),
        },
        replications=seeds,
        base_seed=base_seed,
        seed_scope="cell",
        cell_seed=lambda params: base_seed + params["n"],
        build=_build_convergence_scaling,
    )


def experiment_convergence_scaling(
    ns=(128, 256, 512, 1024),
    weight_vectors=((1.0, 1.0, 1.0, 1.0), (1.0, 2.0, 3.0, 4.0)),
    *,
    seeds: int = 3,
    base_seed: int = 2021,
) -> ExperimentTable:
    """E1: convergence time vs n for uniform and skewed weights.

    Paper claim (Thm 1.3): ``T = O(w² n log n)``.  Expected shape: the
    column ``T/(n ln n)`` is roughly flat in ``n`` for each weight
    vector, and grows with ``w`` across vectors.
    """
    return execute(
        spec_convergence_scaling(
            ns, weight_vectors, seeds=seeds, base_seed=base_seed
        )
    ).table()


def measure_stabilised_error(
    weights: WeightTable,
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
    settle_factor: float = 6.0,
    window_samples: int = 64,
) -> float:
    """Max diversity error over a post-convergence window.

    The engine first runs ``settle_factor · w² n log n`` steps, then the
    error is sampled ``window_samples`` times spaced ``n`` steps apart
    (about one parallel round each).
    """
    weights = weights.copy()
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(n, weights.k), rng=seed
    )
    w = weights.total
    engine.run(int(settle_factor * w * w * n * np.log(n)))
    fair = weights.fair_shares()
    worst = 0.0
    for _ in range(window_samples):
        engine.run(n)
        counts = engine.colour_counts()
        shares = counts / counts.sum()
        worst = max(worst, float(np.abs(shares - fair).max()))
    return worst


def _measure_stabilised(params: dict, rng: np.random.Generator) -> dict:
    """E2 shard: one stabilised-error replication at one ``n``."""
    return {
        "error": measure_stabilised_error(
            WeightTable(params["vector"]), params["n"], seed=rng
        )
    }


def _build_diversity_error(result) -> ExperimentTable:
    """Aggregate E2 shards into the Eq.-(1) error table."""
    table = ExperimentTable(
        "E2",
        "Stabilised diversity error |C_i/n − w_i/w| (Eq. (1): Õ(1/√n))",
        ["n", "mean err", "max err", "bound sqrt(ln n/n)", "within"],
    )
    ns = []
    mean_errors = []
    for params, values in result.by_cell():
        n = params["n"]
        errors = [value["error"] for value in values]
        mean_error = float(np.mean(errors))
        max_error = float(np.max(errors))
        bound = diversity_bound(n)
        ns.append(n)
        mean_errors.append(mean_error)
        table.add_row(n, mean_error, max_error, bound, max_error <= bound)
    fit = fit_power_law(np.array(ns, float), np.array(mean_errors))
    table.add_note(
        f"power-law fit: error ~ n^{fit.exponent:.2f} "
        f"(paper shape: n^-0.5), R²={fit.r_squared:.3f}"
    )
    return table


def spec_diversity_error(
    ns=(128, 256, 512, 1024, 2048),
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seeds: int = 3,
    base_seed: int = 509,
) -> ScenarioSpec:
    """E2 as a scenario: an ``n`` sweep with ``seeds`` shards per point."""
    return ScenarioSpec(
        name="e2",
        measure=_measure_stabilised,
        grid={"n": tuple(ns)},
        fixed={"vector": tuple(weight_vector)},
        replications=seeds,
        base_seed=base_seed,
        seed_scope="cell",
        cell_seed=lambda params: base_seed + params["n"],
        build=_build_diversity_error,
    )


def experiment_diversity_error(
    ns=(128, 256, 512, 1024, 2048),
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    seeds: int = 3,
    base_seed: int = 509,
) -> ExperimentTable:
    """E2: stabilised diversity error vs n.

    Paper claim (Eq. (1)): error ``Õ(1/√n)``.  Expected shape: the
    fitted power-law exponent of error vs n is close to −1/2, and the
    error stays below ``sqrt(log n / n)``.
    """
    return execute(
        spec_diversity_error(
            ns, weight_vector, seeds=seeds, base_seed=base_seed
        )
    ).table()


def window_deviation_profile(
    weights: WeightTable,
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
    window_samples: int = 64,
    settle_factor: float = 6.0,
) -> np.ndarray:
    """Per-colour deviation profile across a stabilised window, shape
    ``(window_samples, k)`` — raw material for custom reporting."""
    weights = weights.copy()
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(n, weights.k), rng=seed
    )
    w = weights.total
    engine.run(int(settle_factor * w * w * n * np.log(n)))
    rows = []
    for _ in range(window_samples):
        engine.run(n)
        rows.append(engine.colour_counts())
    return fair_share_deviation(np.asarray(rows), weights)
