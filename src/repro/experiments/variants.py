"""Experiments E9 and the ablation suite.

E9 studies the derandomised multi-shade protocol (Sec 1.2; analysing it
is an open problem from Sec 3) and confirms it reaches the same fair
shares as the randomised protocol.  The ablation experiments quantify
the role of each design rule (see ``repro.core.ablations``).
"""

from __future__ import annotations

import numpy as np

from ..core.ablations import EagerRecolouring, UnweightedLightening
from ..core.derandomised import DerandomisedDiversification
from ..core.diversification import Diversification
from ..core.properties import diversity_bound
from ..core.weights import WeightTable
from ..engine.rng import make_rng, spawn
from .runner import run_agent
from .table import ExperimentTable


def _stabilised_share_error(
    record, weights: WeightTable, tail_fraction: float = 0.25
) -> tuple[float, np.ndarray]:
    """(max deviation from fair shares, mean shares) over the record's
    final ``tail_fraction`` of snapshots."""
    tail = max(1, int(len(record.times) * tail_fraction))
    counts = record.colour_counts[-tail:, : weights.k].astype(float)
    shares = counts / counts.sum(axis=1, keepdims=True)
    fair = weights.fair_shares()
    return float(np.abs(shares - fair).max()), shares.mean(axis=0)


def experiment_derandomised(
    n: int = 384,
    weight_vector=(1, 2, 3),
    *,
    rounds: int = 2500,
    seeds: int = 3,
    base_seed: int = 88,
) -> ExperimentTable:
    """E9: derandomised vs randomised protocol, same integer weights.

    Expected shape: both reach the fair shares ``w_i/w`` with errors of
    the same order; the derandomised variant needs no coin flips.
    """
    weights = WeightTable([float(v) for v in weight_vector])
    steps = rounds * n
    table = ExperimentTable(
        "E9",
        "Derandomised multi-shade protocol vs randomised (Sec 1.2 / "
        "open problem of Sec 3)",
        ["protocol", "seed#", "max share err (tail)", "band sqrt(ln n/n)",
         "within", "mean shares (tail)"],
    )
    rng = make_rng(base_seed)
    band = diversity_bound(n, 1.0)
    for name, factory in (
        ("randomised", lambda w: Diversification(w)),
        ("derandomised", lambda w: DerandomisedDiversification(w)),
    ):
        for index, child in enumerate(spawn(rng, seeds)):
            local = weights.copy()
            record = run_agent(
                factory(local), local, n, steps,
                start="worst", seed=child,
            )
            error, shares = _stabilised_share_error(record, local)
            table.add_row(
                name, index, error, band, error <= band,
                "[" + ", ".join(f"{s:.3f}" for s in shares) + "]",
            )
    table.add_note(
        "fair shares: "
        + "[" + ", ".join(f"{s:.3f}" for s in weights.fair_shares()) + "]"
    )
    return table


def experiment_derandomised_scaling(
    ns=(256, 512, 1024, 2048),
    weight_vector=(1, 2, 3),
    *,
    seeds: int = 3,
    settle_rounds: int = 1200,
    window_samples: int = 64,
    base_seed: int = 4242,
) -> ExperimentTable:
    """E9b: derandomised protocol error vs n (multi-shade fast engine).

    Uses :class:`~repro.engine.multishade.MultiShadeAggregate` to push
    the open-problem variant to population sizes the agent engine
    cannot reach.  Expected shape: the stabilised error shrinks like
    ``~ 1/√n``, mirroring the randomised protocol's Thm 1.3 behaviour.
    """
    from ..analysis.statistics import fit_power_law
    from ..engine.multishade import MultiShadeAggregate
    from ..engine.rng import make_rng, spawn
    from .workloads import worst_case_counts

    weights = WeightTable([float(v) for v in weight_vector])
    fair = weights.fair_shares()
    table = ExperimentTable(
        "E9b",
        "Derandomised protocol at scale (open problem, Sec 3): error vs n",
        ["n", "mean err", "max err", "band sqrt(ln n/n)", "within"],
    )
    mean_errors = []
    for n in ns:
        rng = make_rng(base_seed + n)
        errors = []
        for child in spawn(rng, seeds):
            engine = MultiShadeAggregate(
                weights.copy(),
                colour_counts=worst_case_counts(n, weights.k),
                rng=child,
            )
            engine.run(settle_rounds * n)
            worst = 0.0
            for _ in range(window_samples):
                engine.run(n)
                shares = engine.colour_counts() / engine.n
                worst = max(worst, float(np.abs(shares - fair).max()))
            errors.append(worst)
        mean_error = float(np.mean(errors))
        mean_errors.append(mean_error)
        band = diversity_bound(n, 1.0)
        table.add_row(
            n, mean_error, float(np.max(errors)), band,
            float(np.max(errors)) <= band,
        )
    fit = fit_power_law(np.array(ns, float), np.array(mean_errors))
    table.add_note(
        f"power-law fit: error ~ n^{fit.exponent:.2f} "
        f"(randomised protocol shape: n^-0.5), R²={fit.r_squared:.3f}"
    )
    return table


def experiment_ablations(
    n: int = 384,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 2500,
    seed: int = 314,
) -> ExperimentTable:
    """Ablations A1/A2: remove one protocol rule at a time.

    Expected shape: the full protocol tracks the *weighted* shares; A2
    (unweighted lightening) collapses towards the *uniform* shares; A1
    (no light buffer) still mixes colours but with larger error.
    """
    weights = WeightTable(weight_vector)
    steps = rounds * n
    fair = weights.fair_shares()
    uniform = np.full(weights.k, 1.0 / weights.k)
    table = ExperimentTable(
        "ABL",
        "Ablations: contribution of each protocol rule (Sec 1.2 intuition)",
        ["variant", "max dev from weighted shares",
         "max dev from uniform shares", "closer to"],
    )
    variants = (
        ("full protocol", lambda w: Diversification(w)),
        ("A2 unweighted lightening", lambda w: UnweightedLightening(w)),
        ("A1 eager recolouring", lambda w: EagerRecolouring(w)),
    )
    for name, factory in variants:
        local = weights.copy()
        record = run_agent(
            factory(local), local, n, steps, start="worst", seed=seed
        )
        tail = max(1, len(record.times) // 4)
        counts = record.colour_counts[-tail:, : weights.k].astype(float)
        shares = counts / counts.sum(axis=1, keepdims=True)
        dev_weighted = float(np.abs(shares - fair).max())
        dev_uniform = float(np.abs(shares - uniform).max())
        table.add_row(
            name, dev_weighted, dev_uniform,
            "weighted" if dev_weighted < dev_uniform else "uniform",
        )
    table.add_note(
        "prediction: full protocol → weighted; A2 → uniform; A1 → "
        "weighted but with inflated deviation"
    )
    return table
