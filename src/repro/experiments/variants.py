"""Experiments E9 and the ablation suite.

E9 studies the derandomised multi-shade protocol (Sec 1.2; analysing it
is an open problem from Sec 3) and confirms it reaches the same fair
shares as the randomised protocol.  The ablation experiments quantify
the role of each design rule (see ``repro.core.ablations``).

All three experiments are pipeline scenarios: E9 sweeps the protocol
variant with ``seeds`` replications (``"stream"`` scope), E9b sweeps
``n`` (``"cell"`` scope, seeds keyed on ``base_seed + n``), and the
ablation grid shares one run seed per variant (``"direct"`` scope).
"""

from __future__ import annotations

import numpy as np

from ..core.ablations import EagerRecolouring, UnweightedLightening
from ..core.derandomised import DerandomisedDiversification
from ..core.diversification import Diversification
from ..core.properties import diversity_bound
from ..core.weights import WeightTable
from .fusion import FusedMeasurement, fused_rng, register_fused
from .pipeline import ScenarioSpec, execute
from .runner import run_agent
from .table import ExperimentTable

E9_PROFILES = {"full": {}, "quick": {"n": 256, "rounds": 1500, "seeds": 2}}
E9B_PROFILES = {
    "full": {},
    "quick": {
        "ns": (128, 256, 512), "seeds": 2, "settle_rounds": 600,
        "window_samples": 32,
    },
}
ABLATIONS_PROFILES = {"full": {}, "quick": {"n": 256, "rounds": 1500}}

# E9 contenders, in table order; rebuilt inside shards by name.
_E9_FACTORIES = {
    "randomised": lambda w: Diversification(w),
    "derandomised": lambda w: DerandomisedDiversification(w),
}

# Ablation variants, in table order.
_ABLATION_FACTORIES = {
    "full protocol": lambda w: Diversification(w),
    "A2 unweighted lightening": lambda w: UnweightedLightening(w),
    "A1 eager recolouring": lambda w: EagerRecolouring(w),
}


def _tail_share_error(
    counts: np.ndarray, weights: WeightTable, tail_fraction: float = 0.25
) -> tuple[float, np.ndarray]:
    """(max deviation from fair shares, mean shares) over the final
    ``tail_fraction`` of a ``(T, k)`` colour-count snapshot series —
    shared by the per-shard and fused E9 paths so both stabilise over
    the same window."""
    tail = max(1, int(counts.shape[0] * tail_fraction))
    window = counts[-tail:, : weights.k].astype(float)
    shares = window / window.sum(axis=1, keepdims=True)
    fair = weights.fair_shares()
    return float(np.abs(shares - fair).max()), shares.mean(axis=0)


def _stabilised_share_error(
    record, weights: WeightTable, tail_fraction: float = 0.25
) -> tuple[float, np.ndarray]:
    """(max deviation from fair shares, mean shares) over the record's
    final ``tail_fraction`` of snapshots."""
    return _tail_share_error(record.colour_counts, weights, tail_fraction)


def _measure_variant(params: dict, rng: np.random.Generator) -> dict:
    """E9 shard: one run of one variant, stabilised-tail error."""
    weights = WeightTable(params["vector"])
    record = run_agent(
        _E9_FACTORIES[params["protocol"]](weights), weights,
        params["n"], params["rounds"] * params["n"],
        start="worst", seed=rng,
    )
    error, shares = _stabilised_share_error(record, weights)
    return {"error": error, "shares": [float(s) for s in shares]}


def _variant_group_key(params: dict):
    """E9 fused-compatibility key: randomised (kernelised) cells with
    equal ``(n, rounds, k)`` share one ``(R, n)`` array engine; the
    derandomised variant has no vectorised kernel and falls back to the
    per-shard path."""
    if params["protocol"] != "randomised":
        return None
    return ("array", params["n"], params["rounds"], len(params["vector"]))


def _fused_measure_variants(spec, shards) -> list[dict]:
    """E9 mega-batch: all randomised shards as one batched ``(R, n)``
    array engine, per-row lighten tables covering per-row weight
    vectors, snapshots mirroring the scalar run's CountRecorder."""
    from ..engine.array_engine import ArraySimulation
    from .workloads import colours_from_counts, worst_case_counts

    params0 = shards[0].params
    n = int(params0["n"])
    steps = int(params0["rounds"]) * n
    tables = [WeightTable(shard.params["vector"]) for shard in shards]
    k = tables[0].k
    colour_rows = np.stack(
        [
            colours_from_counts(worst_case_counts(n, table.k))
            for table in tables
        ]
    )
    simulation = ArraySimulation(
        Diversification(tables[0].copy()),
        colour_rows,
        k=k,
        rng=fused_rng(shards),
        lighten_rows=np.stack([1.0 / table.as_array() for table in tables]),
    )
    interval = max(1, steps // 256)
    snapshots = [simulation.colour_counts()]
    advanced = 0
    while advanced < steps:
        take = min(interval, steps - advanced)
        simulation.run(take)
        advanced += take
        snapshots.append(simulation.colour_counts())
    series = np.stack(snapshots)  # (T, R, k)
    values = []
    for row, table in enumerate(tables):
        error, shares = _tail_share_error(series[:, row, :], table)
        values.append(
            {
                "error": error,
                "shares": [float(s) for s in shares],
            }
        )
    return values


register_fused(
    _measure_variant,
    FusedMeasurement(
        family="array",
        group_key=_variant_group_key,
        run_group=_fused_measure_variants,
    ),
)


def _build_derandomised(result) -> ExperimentTable:
    """Format one row per (variant, seed) with the diversity band."""
    weights = WeightTable(result.spec.fixed["vector"])
    band = diversity_bound(result.spec.fixed["n"], 1.0)
    table = ExperimentTable(
        "E9",
        "Derandomised multi-shade protocol vs randomised (Sec 1.2 / "
        "open problem of Sec 3)",
        ["protocol", "seed#", "max share err (tail)", "band sqrt(ln n/n)",
         "within", "mean shares (tail)"],
    )
    for params, values in result.by_cell():
        for index, value in enumerate(values):
            table.add_row(
                params["protocol"], index, value["error"], band,
                value["error"] <= band,
                "[" + ", ".join(f"{s:.3f}" for s in value["shares"]) + "]",
            )
    table.add_note(
        "fair shares: "
        + "[" + ", ".join(f"{s:.3f}" for s in weights.fair_shares()) + "]"
    )
    return table


def spec_derandomised(
    n: int = 384,
    weight_vector=(1, 2, 3),
    *,
    rounds: int = 2500,
    seeds: int = 3,
    base_seed: int = 88,
) -> ScenarioSpec:
    """E9 as a scenario: variant grid × ``seeds`` replications."""
    return ScenarioSpec(
        name="e9",
        measure=_measure_variant,
        grid={"protocol": tuple(_E9_FACTORIES)},
        fixed={
            "vector": tuple(float(v) for v in weight_vector),
            "n": n,
            "rounds": rounds,
        },
        replications=seeds,
        base_seed=base_seed,
        seed_scope="stream",
        build=_build_derandomised,
    )


def experiment_derandomised(
    n: int = 384,
    weight_vector=(1, 2, 3),
    *,
    rounds: int = 2500,
    seeds: int = 3,
    base_seed: int = 88,
    fused: bool = False,
) -> ExperimentTable:
    """E9: derandomised vs randomised protocol, same integer weights.

    Expected shape: both reach the fair shares ``w_i/w`` with errors of
    the same order; the derandomised variant needs no coin flips.
    ``fused`` mega-batches the randomised cells into one ``(R, n)``
    array engine (the derandomised variant has no kernel and stays on
    the per-shard path).
    """
    return execute(
        spec_derandomised(
            n, weight_vector, rounds=rounds, seeds=seeds,
            base_seed=base_seed,
        ),
        fused=fused,
    ).table()


def _measure_multishade_error(params: dict, rng: np.random.Generator) -> dict:
    """E9b shard: stabilised error of the multi-shade engine at one n."""
    from ..engine.multishade import MultiShadeAggregate
    from .workloads import worst_case_counts

    weights = WeightTable(params["vector"])
    fair = weights.fair_shares()
    n = params["n"]
    engine = MultiShadeAggregate(
        weights.copy(),
        colour_counts=worst_case_counts(n, weights.k),
        rng=rng,
    )
    engine.run(params["settle_rounds"] * n)
    worst = 0.0
    for _ in range(params["window_samples"]):
        engine.run(n)
        shares = engine.colour_counts() / engine.n
        worst = max(worst, float(np.abs(shares - fair).max()))
    return {"error": worst}


def _build_derandomised_scaling(result) -> ExperimentTable:
    """Aggregate the E9b error sweep and its power-law fit."""
    from ..analysis.statistics import fit_power_law

    table = ExperimentTable(
        "E9b",
        "Derandomised protocol at scale (open problem, Sec 3): error vs n",
        ["n", "mean err", "max err", "band sqrt(ln n/n)", "within"],
    )
    ns = []
    mean_errors = []
    for params, values in result.by_cell():
        n = params["n"]
        errors = [value["error"] for value in values]
        mean_error = float(np.mean(errors))
        ns.append(n)
        mean_errors.append(mean_error)
        band = diversity_bound(n, 1.0)
        table.add_row(
            n, mean_error, float(np.max(errors)), band,
            float(np.max(errors)) <= band,
        )
    fit = fit_power_law(np.array(ns, float), np.array(mean_errors))
    table.add_note(
        f"power-law fit: error ~ n^{fit.exponent:.2f} "
        f"(randomised protocol shape: n^-0.5), R²={fit.r_squared:.3f}"
    )
    return table


def spec_derandomised_scaling(
    ns=(256, 512, 1024, 2048),
    weight_vector=(1, 2, 3),
    *,
    seeds: int = 3,
    settle_rounds: int = 1200,
    window_samples: int = 64,
    base_seed: int = 4242,
) -> ScenarioSpec:
    """E9b as a scenario: ``n`` sweep × ``seeds`` replications."""
    return ScenarioSpec(
        name="e9b",
        measure=_measure_multishade_error,
        grid={"n": tuple(ns)},
        fixed={
            "vector": tuple(float(v) for v in weight_vector),
            "settle_rounds": settle_rounds,
            "window_samples": window_samples,
        },
        replications=seeds,
        base_seed=base_seed,
        seed_scope="cell",
        cell_seed=lambda params: base_seed + params["n"],
        build=_build_derandomised_scaling,
    )


def experiment_derandomised_scaling(
    ns=(256, 512, 1024, 2048),
    weight_vector=(1, 2, 3),
    *,
    seeds: int = 3,
    settle_rounds: int = 1200,
    window_samples: int = 64,
    base_seed: int = 4242,
    fused: bool = False,
) -> ExperimentTable:
    """E9b: derandomised protocol error vs n (multi-shade fast engine).

    Uses :class:`~repro.engine.multishade.MultiShadeAggregate` to push
    the open-problem variant to population sizes the agent engine
    cannot reach.  Expected shape: the stabilised error shrinks like
    ``~ 1/√n``, mirroring the randomised protocol's Thm 1.3 behaviour.
    ``fused`` routes through the fusion layer; the multi-shade engine
    has no mega-batch implementation yet, so every shard falls back to
    the per-shard path (the flag is accepted for a uniform CLI).
    """
    return execute(
        spec_derandomised_scaling(
            ns, weight_vector, seeds=seeds, settle_rounds=settle_rounds,
            window_samples=window_samples, base_seed=base_seed,
        ),
        fused=fused,
    ).table()


def _measure_ablation(params: dict, rng: np.random.Generator) -> dict:
    """Ablation shard: tail deviations of one variant."""
    weights = WeightTable(params["vector"])
    record = run_agent(
        _ABLATION_FACTORIES[params["variant"]](weights), weights,
        params["n"], params["rounds"] * params["n"],
        start="worst", seed=rng,
    )
    fair = weights.fair_shares()
    uniform = np.full(weights.k, 1.0 / weights.k)
    tail = max(1, len(record.times) // 4)
    counts = record.colour_counts[-tail:, : weights.k].astype(float)
    shares = counts / counts.sum(axis=1, keepdims=True)
    return {
        "dev_weighted": float(np.abs(shares - fair).max()),
        "dev_uniform": float(np.abs(shares - uniform).max()),
    }


def _build_ablations(result) -> ExperimentTable:
    """Format the per-variant deviation rows."""
    table = ExperimentTable(
        "ABL",
        "Ablations: contribution of each protocol rule (Sec 1.2 intuition)",
        ["variant", "max dev from weighted shares",
         "max dev from uniform shares", "closer to"],
    )
    for params, values in result.by_cell():
        (value,) = values
        table.add_row(
            params["variant"], value["dev_weighted"], value["dev_uniform"],
            "weighted" if value["dev_weighted"] < value["dev_uniform"]
            else "uniform",
        )
    table.add_note(
        "prediction: full protocol → weighted; A2 → uniform; A1 → "
        "weighted but with inflated deviation"
    )
    return table


def spec_ablations(
    n: int = 384,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 2500,
    seed: int = 314,
) -> ScenarioSpec:
    """Ablations as a scenario: one shard per variant, shared run seed."""
    return ScenarioSpec(
        name="ablations",
        measure=_measure_ablation,
        grid={"variant": tuple(_ABLATION_FACTORIES)},
        fixed={"vector": tuple(weight_vector), "n": n, "rounds": rounds},
        base_seed=seed,
        seed_scope="direct",
        build=_build_ablations,
    )


def experiment_ablations(
    n: int = 384,
    weight_vector=(1.0, 2.0, 3.0, 4.0),
    *,
    rounds: int = 2500,
    seed: int = 314,
) -> ExperimentTable:
    """Ablations A1/A2: remove one protocol rule at a time.

    Expected shape: the full protocol tracks the *weighted* shares; A2
    (unweighted lightening) collapses towards the *uniform* shares; A1
    (no light buffer) still mixes colours but with larger error.
    """
    return execute(
        spec_ablations(n, weight_vector, rounds=rounds, seed=seed)
    ).table()
