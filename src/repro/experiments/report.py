"""Plain-text reporting: aligned tables and coarse series plots.

The benchmark harness prints the paper-shaped rows through these
helpers so that EXPERIMENTS.md entries can be regenerated verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_value(value) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    title: str,
    xs: Sequence,
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
) -> str:
    """Coarse ASCII line chart of a series (log-free, for quick eyes)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not ys:
        return f"{title}\n(empty series)"
    lo, hi = min(ys), max(ys)
    span = hi - lo or 1.0
    # Downsample to the target width.
    count = len(ys)
    columns = min(width, count)
    grid = [[" "] * columns for _ in range(height)]
    for column in range(columns):
        index = column * (count - 1) // max(columns - 1, 1)
        level = int((ys[index] - lo) / span * (height - 1))
        grid[height - 1 - level][column] = "*"
    lines = [title]
    lines.append(f"max={format_value(hi)}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"min={format_value(lo)}  x: {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)
