"""Experiment E12: engine equivalence and throughput.

The aggregate engine must be exact in distribution against the
agent-level engine.  This experiment compares the marginal colour-count
distributions of both engines at a common horizon across many seeds
(methodological validation; also exercised by the property tests).
"""

from __future__ import annotations

import time as _time

import numpy as np

from ..core.diversification import Diversification
from ..core.weights import WeightTable
from ..engine.aggregate import AggregateSimulation
from ..engine.population import Population
from ..engine.rng import make_rng, spawn
from ..engine.simulator import Simulation
from .table import ExperimentTable
from .workloads import colours_from_counts, worst_case_counts

E12_PROFILES = {
    "full": {},
    "quick": {"n": 96, "rounds": 100, "seeds": 12,
              "throughput_steps": 60_000},
}


def paired_final_counts(
    weights: WeightTable,
    n: int,
    steps: int,
    seeds: int,
    *,
    base_seed: int = 5,
) -> tuple[np.ndarray, np.ndarray]:
    """Final colour counts from both engines over ``seeds`` runs each.

    Returns (agent_runs, aggregate_runs) with shape ``(seeds, k)``.
    """
    rng = make_rng(base_seed)
    agent_rows, aggregate_rows = [], []
    children = spawn(rng, 2 * seeds)
    for index in range(seeds):
        local = weights.copy()
        protocol = Diversification(local)
        population = Population.from_colours(
            colours_from_counts(worst_case_counts(n, local.k)),
            protocol, k=local.k,
        )
        Simulation(protocol, population, rng=children[2 * index]).run(steps)
        agent_rows.append(population.colour_counts())

        local = weights.copy()
        engine = AggregateSimulation(
            local,
            dark_counts=worst_case_counts(n, local.k),
            rng=children[2 * index + 1],
        )
        engine.run(steps)
        aggregate_rows.append(engine.colour_counts())
    return np.asarray(agent_rows), np.asarray(aggregate_rows)


def experiment_engines(
    n: int = 128,
    weight_vector=(1.0, 2.0, 3.0),
    *,
    rounds: int = 120,
    seeds: int = 24,
    throughput_steps: int = 200_000,
) -> ExperimentTable:
    """E12: agent vs aggregate marginals and raw throughput.

    Expected shape: per-colour mean final counts agree within a few
    standard errors; the aggregate engine is markedly faster.
    """
    weights = WeightTable(weight_vector)
    steps = rounds * n
    agent_rows, aggregate_rows = paired_final_counts(
        weights, n, steps, seeds
    )
    table = ExperimentTable(
        "E12",
        "Engine equivalence (exact-in-distribution aggregate fast path)",
        ["colour", "agent mean", "aggregate mean", "pooled stderr",
         "|Δ|/stderr", "consistent"],
    )
    for colour in range(weights.k):
        a = agent_rows[:, colour].astype(float)
        b = aggregate_rows[:, colour].astype(float)
        stderr = float(
            np.sqrt(a.var(ddof=1) / len(a) + b.var(ddof=1) / len(b))
        )
        z = abs(a.mean() - b.mean()) / max(stderr, 1e-9)
        table.add_row(
            colour, float(a.mean()), float(b.mean()), stderr, z, z <= 4.0
        )

    # Throughput.
    local = weights.copy()
    protocol = Diversification(local)
    population = Population.from_colours(
        colours_from_counts(worst_case_counts(n, local.k)), protocol,
        k=local.k,
    )
    sim = Simulation(protocol, population, rng=1)
    start = _time.perf_counter()
    sim.run(throughput_steps)
    agent_rate = throughput_steps / (_time.perf_counter() - start)

    local = weights.copy()
    engine = AggregateSimulation(
        local, dark_counts=worst_case_counts(n, local.k), rng=1
    )
    start = _time.perf_counter()
    engine.run(throughput_steps)
    aggregate_rate = throughput_steps / (_time.perf_counter() - start)
    table.add_note(
        f"throughput: agent engine {agent_rate:,.0f} steps/s, aggregate "
        f"engine {aggregate_rate:,.0f} steps/s "
        f"(x{aggregate_rate / agent_rate:.1f})"
    )
    return table
