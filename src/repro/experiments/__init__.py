"""Experiment harness: workloads, recording, runners and the
paper-claim experiment suite (E1-E12 + ablations)."""

from .baselines_exp import experiment_baselines, experiment_epidemic
from .export import (
    record_to_csv,
    record_to_json,
    save_table,
    table_to_csv,
    table_to_json,
)
from .replication import (
    Summary,
    is_aggregate_compatible,
    replicate,
    replicate_and_summarise,
    replicate_colour_counts,
    summarise,
)
from .chain import experiment_markov_chain
from .convergence import (
    experiment_convergence_scaling,
    experiment_diversity_error,
    measure_convergence_time,
    measure_stabilised_error,
)
from .engines import experiment_engines, paired_final_counts
from .fairness import experiment_fairness, run_fairness
from .phase1 import experiment_phase1, hitting_times
from .phases import experiment_equilibrium, experiment_potentials, potential_series
from .recorder import CountRecorder
from .report import format_series, format_table, format_value
from .robustness import experiment_adversary, experiment_sustainability
from .runner import (
    BatchRunRecord,
    RunRecord,
    initial_counts,
    run_agent,
    run_aggregate,
    run_diversification_agent,
)
from .table import ExperimentTable
from .topology_exp import experiment_topology
from .variants import (
    experiment_ablations,
    experiment_derandomised,
    experiment_derandomised_scaling,
)
from .workloads import (
    colours_from_counts,
    equilibrium_split,
    proportional_counts,
    random_counts,
    uniform_counts,
    worst_case_counts,
)

ALL_EXPERIMENTS = {
    "e1": experiment_convergence_scaling,
    "e2": experiment_diversity_error,
    "e3": experiment_potentials,
    "e3b": experiment_phase1,
    "e4": experiment_equilibrium,
    "e5": experiment_fairness,
    "e6": experiment_sustainability,
    "e7": experiment_adversary,
    "e8": experiment_markov_chain,
    "e9": experiment_derandomised,
    "e9b": experiment_derandomised_scaling,
    "e10": experiment_baselines,
    "e10b": experiment_epidemic,
    "e11": experiment_topology,
    "e12": experiment_engines,
    "ablations": experiment_ablations,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentTable",
    "CountRecorder",
    "RunRecord",
    "BatchRunRecord",
    "run_aggregate",
    "run_agent",
    "run_diversification_agent",
    "initial_counts",
    "worst_case_counts",
    "uniform_counts",
    "proportional_counts",
    "random_counts",
    "equilibrium_split",
    "colours_from_counts",
    "format_table",
    "format_series",
    "format_value",
    "measure_convergence_time",
    "measure_stabilised_error",
    "potential_series",
    "run_fairness",
    "paired_final_counts",
    "experiment_convergence_scaling",
    "experiment_diversity_error",
    "experiment_potentials",
    "experiment_phase1",
    "hitting_times",
    "experiment_equilibrium",
    "experiment_fairness",
    "experiment_sustainability",
    "experiment_adversary",
    "experiment_markov_chain",
    "experiment_derandomised",
    "experiment_derandomised_scaling",
    "experiment_baselines",
    "experiment_epidemic",
    "table_to_csv",
    "table_to_json",
    "save_table",
    "record_to_csv",
    "record_to_json",
    "replicate",
    "summarise",
    "replicate_and_summarise",
    "replicate_colour_counts",
    "is_aggregate_compatible",
    "Summary",
    "experiment_topology",
    "experiment_engines",
    "experiment_ablations",
]
