"""Experiment harness: workloads, recording, runners, the declarative
scenario pipeline and the paper-claim experiment suite (E1-E12 +
ablations).

The suite is organised as a registry of :class:`ExperimentDef` entries:
each experiment exposes a legacy direct callable (``run``), the named
parameter profiles it supports (``quick``/``full``), and — for every
migrated experiment — a :class:`~repro.experiments.pipeline.ScenarioSpec`
builder so the CLI and benchmarks can execute it through the sharded
serial/parallel pipeline.
"""

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from .baselines_exp import (
    E10_PROFILES,
    E10B_PROFILES,
    experiment_baselines,
    experiment_epidemic,
    spec_baselines,
    spec_epidemic,
)
from .export import (
    load_plan,
    plan_table,
    plan_to_json,
    record_to_csv,
    record_to_json,
    save_plan,
    save_table,
    table_to_csv,
    table_to_json,
)
from .replication import (
    Summary,
    is_aggregate_compatible,
    replicate,
    replicate_and_summarise,
    replicate_colour_counts,
    summarise,
)
from .cache import ShardCache, shard_key, spec_fingerprint, verify_cache
from .chain import E8_PROFILES, experiment_markov_chain, spec_markov_chain
from .convergence import (
    E1_PROFILES,
    E2_PROFILES,
    experiment_convergence_scaling,
    experiment_diversity_error,
    measure_convergence_time,
    measure_stabilised_error,
    spec_convergence_scaling,
    spec_diversity_error,
)
from .engines import E12_PROFILES, experiment_engines, paired_final_counts
from .fairness import (
    E5_PROFILES,
    experiment_fairness,
    run_fairness,
    spec_fairness,
)
from .faults import (
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    ShardOutcome,
)
from .fusion import (
    FusedExecutor,
    FusedMeasurement,
    FusedPlan,
    execute_fused,
    fuse,
    fused_implementation,
    fused_rng,
    measure_sweep_final_counts,
    register_fused,
    spec_fused_sweep,
)
from .phase1 import (
    E3B_PROFILES,
    experiment_phase1,
    hitting_times,
    spec_phase1,
)
from .phases import (
    E3_PROFILES,
    E4_PROFILES,
    experiment_equilibrium,
    experiment_potentials,
    potential_series,
    spec_equilibrium,
    spec_potentials,
)
from .pipeline import (
    ExperimentPlan,
    PlanResult,
    ProcessExecutor,
    ScenarioSpec,
    SerialExecutor,
    Shard,
    ShardError,
    ShardResult,
    execute,
    make_executor,
    plan,
)
from .recorder import CountRecorder
from .report import format_series, format_table, format_value
from .robustness import (
    E6_PROFILES,
    E7_PROFILES,
    experiment_adversary,
    experiment_sustainability,
    spec_adversary,
    spec_sustainability,
)
from .runner import (
    BatchRunRecord,
    RunRecord,
    initial_counts,
    run_agent,
    run_aggregate,
    run_diversification_agent,
)
from .table import ExperimentTable
from .topology_exp import E11_PROFILES, experiment_topology, spec_topology
from .variants import (
    ABLATIONS_PROFILES,
    E9_PROFILES,
    E9B_PROFILES,
    experiment_ablations,
    experiment_derandomised,
    experiment_derandomised_scaling,
    spec_ablations,
    spec_derandomised,
    spec_derandomised_scaling,
)
from .workloads import (
    colours_from_counts,
    equilibrium_split,
    proportional_counts,
    random_counts,
    uniform_counts,
    worst_case_counts,
)


@dataclass(frozen=True)
class ExperimentDef:
    """One registry entry of the experiment suite.

    Attributes:
        name: Registry id (``"e1"``, ``"ablations"``, ...).
        run: Direct callable returning the experiment's table (profile
            kwargs applied as keyword arguments).
        profiles: Named parameter presets; ``"full"`` is the paper
            configuration (no overrides), ``"quick"`` a fast pass.
        spec: Scenario builder for the declarative pipeline, or None
            for experiments that have not been migrated (they run only
            through ``run``).
    """

    name: str
    run: Callable[..., ExperimentTable]
    profiles: Mapping[str, Mapping] = field(default_factory=dict)
    spec: Callable[..., ScenarioSpec] | None = None

    @property
    def description(self) -> str:
        """First docstring line of the experiment callable, if any."""
        doc = (self.run.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


REGISTRY: dict[str, ExperimentDef] = {
    definition.name: definition
    for definition in (
        ExperimentDef(
            "e1", experiment_convergence_scaling, E1_PROFILES,
            spec_convergence_scaling,
        ),
        ExperimentDef(
            "e2", experiment_diversity_error, E2_PROFILES,
            spec_diversity_error,
        ),
        ExperimentDef(
            "e3", experiment_potentials, E3_PROFILES, spec_potentials
        ),
        ExperimentDef("e3b", experiment_phase1, E3B_PROFILES, spec_phase1),
        ExperimentDef(
            "e4", experiment_equilibrium, E4_PROFILES, spec_equilibrium
        ),
        ExperimentDef("e5", experiment_fairness, E5_PROFILES, spec_fairness),
        ExperimentDef(
            "e6", experiment_sustainability, E6_PROFILES,
            spec_sustainability,
        ),
        ExperimentDef(
            "e7", experiment_adversary, E7_PROFILES, spec_adversary
        ),
        ExperimentDef(
            "e8", experiment_markov_chain, E8_PROFILES, spec_markov_chain
        ),
        ExperimentDef(
            "e9", experiment_derandomised, E9_PROFILES, spec_derandomised
        ),
        ExperimentDef(
            "e9b", experiment_derandomised_scaling, E9B_PROFILES,
            spec_derandomised_scaling,
        ),
        ExperimentDef(
            "e10", experiment_baselines, E10_PROFILES, spec_baselines
        ),
        ExperimentDef(
            "e10b", experiment_epidemic, E10B_PROFILES, spec_epidemic
        ),
        ExperimentDef(
            "e11", experiment_topology, E11_PROFILES, spec_topology
        ),
        # E12 validates engine pairs with interleaved seed streams and
        # in-process throughput timing — kept on the direct path.
        ExperimentDef("e12", experiment_engines, E12_PROFILES),
        ExperimentDef(
            "ablations", experiment_ablations, ABLATIONS_PROFILES,
            spec_ablations,
        ),
    )
}

# Back-compat view of the registry: name -> direct callable.
ALL_EXPERIMENTS = {
    name: definition.run for name, definition in REGISTRY.items()
}

__all__ = [
    "ALL_EXPERIMENTS",
    "REGISTRY",
    "ExperimentDef",
    "ExperimentTable",
    "CountRecorder",
    "RunRecord",
    "BatchRunRecord",
    "ScenarioSpec",
    "ExperimentPlan",
    "PlanResult",
    "Shard",
    "ShardResult",
    "ShardError",
    "SerialExecutor",
    "ProcessExecutor",
    "ShardCache",
    "shard_key",
    "spec_fingerprint",
    "verify_cache",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "ShardOutcome",
    "FusedExecutor",
    "FusedMeasurement",
    "FusedPlan",
    "make_executor",
    "plan",
    "execute",
    "execute_fused",
    "fuse",
    "fused_implementation",
    "fused_rng",
    "register_fused",
    "measure_sweep_final_counts",
    "spec_fused_sweep",
    "run_aggregate",
    "run_agent",
    "run_diversification_agent",
    "initial_counts",
    "worst_case_counts",
    "uniform_counts",
    "proportional_counts",
    "random_counts",
    "equilibrium_split",
    "colours_from_counts",
    "format_table",
    "format_series",
    "format_value",
    "measure_convergence_time",
    "measure_stabilised_error",
    "potential_series",
    "run_fairness",
    "paired_final_counts",
    "experiment_convergence_scaling",
    "experiment_diversity_error",
    "experiment_potentials",
    "experiment_phase1",
    "hitting_times",
    "experiment_equilibrium",
    "experiment_fairness",
    "experiment_sustainability",
    "experiment_adversary",
    "experiment_markov_chain",
    "experiment_derandomised",
    "experiment_derandomised_scaling",
    "experiment_baselines",
    "experiment_epidemic",
    "table_to_csv",
    "table_to_json",
    "save_table",
    "save_plan",
    "plan_to_json",
    "plan_table",
    "load_plan",
    "record_to_csv",
    "record_to_json",
    "replicate",
    "summarise",
    "replicate_and_summarise",
    "replicate_colour_counts",
    "is_aggregate_compatible",
    "Summary",
    "experiment_topology",
    "experiment_engines",
    "experiment_ablations",
    "spec_convergence_scaling",
    "spec_diversity_error",
    "spec_potentials",
    "spec_phase1",
    "spec_equilibrium",
    "spec_fairness",
    "spec_sustainability",
    "spec_adversary",
    "spec_markov_chain",
    "spec_derandomised",
    "spec_derandomised_scaling",
    "spec_baselines",
    "spec_epidemic",
    "spec_topology",
    "spec_ablations",
]
