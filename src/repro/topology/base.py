"""Interaction topologies.

The paper analyses the complete graph; Sec 3 lists other topologies as
future work.  A topology only needs to answer one question for the
engine: given the scheduled agent, which agent does it sample?
"""

from __future__ import annotations

import abc

import numpy as np


class Topology(abc.ABC):
    """Interaction graph over ``n`` agents (nodes ``0..n-1``)."""

    name: str = "topology"

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("a topology needs at least two nodes")
        self.n = n

    @abc.abstractmethod
    def sample_neighbour(self, u: int, rng: np.random.Generator) -> int:
        """A uniformly random neighbour of ``u``."""

    @abc.abstractmethod
    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""

    def is_connected(self) -> bool:
        """Whether the interaction graph is connected (default: probe
        via breadth-first search over :meth:`neighbours`)."""
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for other in self.neighbours(node):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == self.n

    @abc.abstractmethod
    def neighbours(self, u: int) -> list[int]:
        """Explicit neighbour list of ``u`` (for tests and audits)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class CompleteGraph(Topology):
    """Every pair of distinct agents may interact (the paper's model).

    The engine special-cases ``topology=None`` to this graph for speed;
    the explicit class exists so topology sweeps can treat the complete
    graph uniformly with the others.
    """

    name = "complete"

    def sample_neighbour(self, u: int, rng: np.random.Generator) -> int:
        v = int(rng.integers(0, self.n - 1))
        return v + 1 if v >= u else v

    def degree(self, u: int) -> int:
        return self.n - 1

    def neighbours(self, u: int) -> list[int]:
        return [v for v in range(self.n) if v != u]
