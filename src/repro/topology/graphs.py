"""Concrete sparse topologies for the future-work experiments (E11).

All graphs are stored as adjacency lists in a flat numpy layout
(CSR-like) so neighbour sampling is two array reads plus one random
draw.  Construction helpers lean on :mod:`networkx` for the non-trivial
generators and then freeze the result.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx
import numpy as np

from ..engine.rng import make_rng
from .base import Topology


class AdjacencyTopology(Topology):
    """Topology backed by an explicit adjacency structure."""

    name = "adjacency"

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        super().__init__(n)
        neighbour_sets: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) outside node range")
            neighbour_sets[u].add(v)
            neighbour_sets[v].add(u)
        if any(not s for s in neighbour_sets):
            isolated = next(i for i, s in enumerate(neighbour_sets) if not s)
            raise ValueError(f"node {isolated} has no neighbours")
        degrees = np.array([len(s) for s in neighbour_sets], dtype=np.int64)
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._targets = np.empty(int(self._offsets[-1]), dtype=np.int64)
        for u, s in enumerate(neighbour_sets):
            self._targets[self._offsets[u]:self._offsets[u + 1]] = sorted(s)

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "AdjacencyTopology":
        """Freeze a networkx graph (nodes must be 0..n-1)."""
        n = graph.number_of_nodes()
        if sorted(graph.nodes) != list(range(n)):
            graph = nx.convert_node_labels_to_integers(graph)
        return cls(n, graph.edges())

    def sample_neighbour(self, u: int, rng: np.random.Generator) -> int:
        start = self._offsets[u]
        end = self._offsets[u + 1]
        return int(self._targets[start + rng.integers(0, end - start)])

    def neighbour_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The frozen CSR adjacency as ``(offsets, targets)``.

        ``offsets`` has shape ``(n + 1,)`` and ``targets`` holds the
        concatenated neighbour lists; node ``u``'s neighbours are
        ``targets[offsets[u]:offsets[u + 1]]``.  The vectorised engine
        (:mod:`repro.engine.array_engine`) uses this for batched
        neighbour sampling.  Treat both arrays as read-only.
        """
        return self._offsets, self._targets

    def degree(self, u: int) -> int:
        return int(self._offsets[u + 1] - self._offsets[u])

    def neighbours(self, u: int) -> list[int]:
        return self._targets[self._offsets[u]:self._offsets[u + 1]].tolist()


class CycleGraph(AdjacencyTopology):
    """Ring of ``n`` agents — the sparsest connected regular graph."""

    name = "cycle"

    def __init__(self, n: int):
        edges = [(i, (i + 1) % n) for i in range(n)]
        AdjacencyTopology.__init__(self, n, edges)


class TorusGrid(AdjacencyTopology):
    """``rows x cols`` two-dimensional torus (4-regular)."""

    name = "torus"

    def __init__(self, rows: int, cols: int):
        if rows < 3 or cols < 3:
            raise ValueError("torus needs rows, cols >= 3 to avoid "
                             "duplicate edges")
        n = rows * cols
        edges = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                edges.append((node, r * cols + (c + 1) % cols))
                edges.append((node, ((r + 1) % rows) * cols + c))
        AdjacencyTopology.__init__(self, n, edges)
        self.rows, self.cols = rows, cols


def random_regular(
    n: int, degree: int, seed: int | np.random.Generator | None = None
) -> AdjacencyTopology:
    """Connected random ``degree``-regular graph (expander-like)."""
    rng = make_rng(seed)
    for _ in range(64):
        graph = nx.random_regular_graph(
            degree, n, seed=int(rng.integers(0, 2**31))
        )
        if nx.is_connected(graph):
            topo = AdjacencyTopology.from_networkx(graph)
            topo.name = f"random-regular-{degree}"
            return topo
    raise RuntimeError(
        f"could not sample a connected {degree}-regular graph on {n} nodes"
    )


def stochastic_block_model(
    sizes: Sequence[int] | list[int],
    p_in: float,
    p_out: float,
    seed: int | np.random.Generator | None = None,
) -> AdjacencyTopology:
    """Connected stochastic-block-model sample (community detection
    setting of Sec 1.1, refs [3, 17, 26]).

    Agents within a community are linked with probability ``p_in``,
    across communities with ``p_out < p_in``.  Resampled until
    connected.
    """
    if not 0.0 <= p_out < p_in <= 1.0:
        raise ValueError("need 0 <= p_out < p_in <= 1")
    rng = make_rng(seed)
    probabilities = [
        [p_in if a == b else p_out for b in range(len(sizes))]
        for a in range(len(sizes))
    ]
    for _ in range(64):
        graph = nx.stochastic_block_model(
            list(sizes), probabilities, seed=int(rng.integers(0, 2**31))
        )
        if nx.is_connected(graph):
            topo = AdjacencyTopology.from_networkx(nx.Graph(graph))
            topo.name = f"sbm-{len(sizes)}x{sizes[0]}"
            topo.community_sizes = list(sizes)
            return topo
    raise RuntimeError(
        "could not sample a connected SBM; increase p_in/p_out"
    )


def erdos_renyi(
    n: int, p: float, seed: int | np.random.Generator | None = None
) -> AdjacencyTopology:
    """Connected Erdős–Rényi ``G(n, p)`` sample (resampled until
    connected; choose ``p`` comfortably above ``ln(n)/n``)."""
    rng = make_rng(seed)
    for _ in range(64):
        graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31)))
        if graph.number_of_nodes() and nx.is_connected(graph):
            topo = AdjacencyTopology.from_networkx(graph)
            topo.name = f"erdos-renyi-{p}"
            return topo
    raise RuntimeError(
        f"could not sample a connected G({n}, {p}); increase p"
    )
