"""Interaction topologies: the paper's complete graph plus the sparse
graphs of the future-work direction (Sec 3)."""

from .base import CompleteGraph, Topology
from .graphs import (
    AdjacencyTopology,
    CycleGraph,
    TorusGrid,
    erdos_renyi,
    random_regular,
    stochastic_block_model,
)

__all__ = [
    "Topology",
    "CompleteGraph",
    "AdjacencyTopology",
    "CycleGraph",
    "TorusGrid",
    "random_regular",
    "erdos_renyi",
    "stochastic_block_model",
]
