"""Concentration inequalities used by the paper's analysis.

* :func:`chung_lu_tail` — the Chung–Lu-type bound of Lemma 2.11 for
  contracting supermartingale-like processes (Eq. (16));
* :func:`contraction_expectation_bound` — the iterated drift bound of
  Eq. (30): ``E M(t) <= (1-α)^t M(0) + β/α``;
* :func:`markov_chain_chernoff` — the Chernoff bound for ergodic Markov
  chains of Theorem A.2 (Chung, Lam, Liu, Mitzenmacher);
* :func:`azuma_hoeffding` — the martingale tail used in Lemma 2.1.

These are *bounds*, not estimators: the test-suite checks them against
simulated processes (the bound must dominate the empirical tail).
"""

from __future__ import annotations

import numpy as np


def chung_lu_tail(
    lam: float, alpha: float, delta: float, gamma: float
) -> float:
    """Right-tail bound of Lemma 2.11 (Eq. (16)).

    For a non-negative process with drift
    ``E(M(t) | F_{t-1}) <= (1-α) M(t-1) + β``, per-step deviation at
    most ``γ`` and conditional variance at most ``δ²``:

        P(M(t) >= E M(t) + λ) <= exp( −λ²/2 / (δ²/(2α−α²) + λγ/3) )
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if lam <= 0:
        raise ValueError("lambda must be positive")
    if delta < 0 or gamma < 0:
        raise ValueError("delta and gamma must be non-negative")
    denominator = delta**2 / (2.0 * alpha - alpha**2) + lam * gamma / 3.0
    if denominator <= 0:
        return 0.0
    return float(np.exp(-(lam**2 / 2.0) / denominator))


def contraction_expectation_bound(
    m0: float, alpha: float, beta: float, t: int
) -> float:
    """Iterated drift bound: ``E M(t) <= (1-α)^t M(0) + β/α``.

    This is the inequality the paper iterates in Eq. (30) to show each
    potential halves every ``O(w n)`` steps.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if beta < 0 or m0 < 0 or t < 0:
        raise ValueError("m0, beta, t must be non-negative")
    return float((1.0 - alpha) ** t * m0 + beta / alpha)


def halving_time(alpha: float, safety: float = 3.0) -> int:
    """Steps after which the contraction factor is below 1/8
    (``(1-α)^T <= 1/8`` with a safety margin), cf. the choice of
    ``T = ⌊q w n⌋`` in the proof of Lemma 2.6."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return int(np.ceil(safety * np.log(8.0) / alpha))


def markov_chain_chernoff(
    pi_state: float,
    t: int,
    t_mix: int,
    delta: float,
    constant: float = 1.0,
) -> float:
    """Theorem A.2 failure bound for state-visit concentration.

    Bounds ``P(|N_i − π(i) t| > δ π(i) t)`` by
    ``c · exp(−δ² π(i) t / (72 T_mix))`` where ``T_mix`` is the
    1/8-mixing time.
    """
    if not 0.0 < pi_state <= 1.0:
        raise ValueError("pi_state must be in (0, 1]")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if t < 0 or t_mix < 1:
        raise ValueError("need t >= 0 and t_mix >= 1")
    return float(
        constant * np.exp(-(delta**2) * pi_state * t / (72.0 * t_mix))
    )


def markov_visit_halfwidth(
    pi_state: float, t: int, t_mix: int, failure: float = 1e-3
) -> float:
    """Invert Theorem A.2: half-width ``δ π t`` guaranteeing the visit
    count lies inside ``π t ± δ π t`` except with probability
    ``failure``."""
    if not 0.0 < failure < 1.0:
        raise ValueError("failure must be in (0, 1)")
    delta_sq = 72.0 * t_mix * np.log(1.0 / failure) / (pi_state * t)
    return float(np.sqrt(delta_sq) * pi_state * t)


def azuma_hoeffding(ell: int, deviation: float) -> float:
    """Azuma–Hoeffding tail for a ±1 martingale after ``ell`` steps:
    ``P(S_ell <= -deviation) <= exp(-deviation²/(2 ell))`` — the form
    used in the proof of Lemma 2.1."""
    if ell < 1 or deviation < 0:
        raise ValueError("need ell >= 1 and deviation >= 0")
    return float(np.exp(-(deviation**2) / (2.0 * ell)))
