"""Empirical statistics over recorded simulation series.

These helpers turn recorded count series into the quantities the
paper's theorems talk about: convergence times, stabilised-window
errors, occupancy agreement, and scaling-law fits for the
``O(w² n log n)`` convergence claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.properties import fair_share_deviation
from ..core.weights import WeightTable


def tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions."""
    return float(0.5 * np.abs(np.asarray(p, float) - np.asarray(q, float)).sum())


def empirical_shares(colour_counts: np.ndarray) -> np.ndarray:
    """Colour fractions ``C_i / n`` from a snapshot or series."""
    counts = np.asarray(colour_counts, dtype=np.float64)
    return counts / counts.sum(axis=-1, keepdims=True)


def max_share_error_series(
    counts_series: np.ndarray, weights: WeightTable
) -> np.ndarray:
    """Per-snapshot worst-colour deviation from fair shares, ``(T,)``."""
    series = np.atleast_2d(np.asarray(counts_series, dtype=np.float64))
    return fair_share_deviation(series, weights).max(axis=-1)


def convergence_time(
    times: np.ndarray,
    counts_series: np.ndarray,
    weights: WeightTable,
    bound: float,
    *,
    dwell_fraction: float = 1.0,
) -> int | None:
    """First recorded time after which the diversity error stays bounded.

    Returns the earliest recorded time ``t`` such that the error is
    ``<= bound`` for at least ``dwell_fraction`` of all subsequent
    snapshots (1.0 = every subsequent snapshot).  ``None`` when no such
    time exists in the record.
    """
    if not 0.0 < dwell_fraction <= 1.0:
        raise ValueError("dwell_fraction must be in (0, 1]")
    errors = max_share_error_series(counts_series, weights)
    below = errors <= bound
    total = len(below)
    # Suffix share of in-bound snapshots.
    suffix_hits = np.cumsum(below[::-1])[::-1]
    suffix_len = total - np.arange(total)
    ok = (below) & (suffix_hits / suffix_len >= dwell_fraction)
    hits = np.nonzero(ok)[0]
    if hits.size == 0:
        return None
    return int(np.asarray(times)[hits[0]])


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ coefficient · x^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Log-log linear regression; robust R² in log space."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two same-length vectors of length >= 2")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    residual = ((ly - predicted) ** 2).sum()
    total = ((ly - ly.mean()) ** 2).sum()
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=float(r_squared),
    )


@dataclass(frozen=True)
class NLogNFit:
    """Least-squares fit of ``t ≈ c · n log n``."""

    constant: float
    relative_residual: float


def fit_n_log_n(ns: np.ndarray, ts: np.ndarray) -> NLogNFit:
    """Fit convergence times against the ``n log n`` shape (Thm 1.3)."""
    ns = np.asarray(ns, dtype=np.float64)
    ts = np.asarray(ts, dtype=np.float64)
    if ns.size != ts.size or ns.size < 2:
        raise ValueError("need two same-length vectors of length >= 2")
    basis = ns * np.log(ns)
    constant = float((basis * ts).sum() / (basis * basis).sum())
    predicted = constant * basis
    residual = float(
        np.sqrt(((ts - predicted) ** 2).mean()) / max(ts.mean(), 1e-12)
    )
    return NLogNFit(constant=constant, relative_residual=residual)


def colour_survival(counts_series: np.ndarray) -> np.ndarray:
    """Per-colour flag: did the colour survive the whole record?"""
    series = np.atleast_2d(np.asarray(counts_series))
    return (series >= 1).all(axis=0)


def occupancy_agreement(
    occupancy: np.ndarray, weights: WeightTable
) -> dict[str, float]:
    """Summary of per-agent occupancy vs the fair shares.

    Returns mean/max absolute deviation and the mean TV distance
    between each agent's occupancy row and the fair-share vector.
    """
    occ = np.asarray(occupancy, dtype=np.float64)
    fair = weights.fair_shares()
    deviations = np.abs(occ - fair[None, :])
    tv = 0.5 * deviations.sum(axis=1)
    return {
        "mean_abs_deviation": float(deviations.mean()),
        "max_abs_deviation": float(deviations.max()),
        "mean_tv": float(tv.mean()),
        "max_tv": float(tv.max()),
    }
