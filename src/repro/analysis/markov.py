"""The perfect-equilibrium Markov chain of Sec 2.4.

A single agent's trajectory through the ``2k`` states
``{D_1..D_k, L_1..L_k}`` is not a Markov chain (transitions depend on
the whole configuration), but near equilibrium it is approximated by
the chain ``M`` with transition matrix ``P``:

    P(L_j, D_i) = w_i / ((1 + w) n)        for all i, j
    P(L_i, L_i) = 1 − w / ((1 + w) n)
    P(D_i, L_i) = 1 / ((1 + w) n)
    P(D_i, D_i) = 1 − 1 / ((1 + w) n)

with stationary distribution ``π(D_i) = w_i/(1+w)`` and
``π(L_i) = (w_i/w)/(1+w)`` (Eqs. (18)-(19)).  The fairness proof
sandwiches the real trajectory between the ``±err`` perturbed chains
``P±`` and applies Chernoff bounds for Markov chains; this module
implements all of those objects so experiment E8 can check them
numerically.

State indexing: dark states first — ``D_i ↦ i`` and ``L_i ↦ k + i``.
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable
from ..engine.rng import make_rng


def dark_state(colour: int) -> int:
    """Index of the dark state of ``colour``."""
    return colour


def light_state(colour: int, k: int) -> int:
    """Index of the light state of ``colour``."""
    return k + colour


def equilibrium_chain(weights: WeightTable, n: int) -> np.ndarray:
    """Transition matrix ``P`` of the equilibrium chain (Sec 2.4)."""
    if n < 2:
        raise ValueError("need n >= 2")
    k = weights.k
    w = weights.total
    warray = weights.as_array()
    P = np.zeros((2 * k, 2 * k), dtype=np.float64)
    scale = 1.0 / ((1.0 + w) * n)
    for i in range(k):
        P[dark_state(i), light_state(i, k)] = scale
        P[dark_state(i), dark_state(i)] = 1.0 - scale
    for j in range(k):
        row = light_state(j, k)
        for i in range(k):
            P[row, dark_state(i)] = warray[i] * scale
        P[row, row] = 1.0 - w * scale
    return P


def theoretical_stationary(weights: WeightTable) -> np.ndarray:
    """``π`` from Eqs. (18)-(19): dark mass ``w_i/(1+w)``, light mass
    ``(w_i/w)/(1+w)`` (indexing as in :func:`equilibrium_chain`)."""
    w = weights.total
    warray = weights.as_array()
    return np.concatenate([warray / (1.0 + w), warray / (w * (1.0 + w))])


def stationary_distribution(P: np.ndarray) -> np.ndarray:
    """Stationary distribution of a row-stochastic matrix.

    Solved as the null space of ``(Pᵀ − I)`` with the normalisation
    constraint appended — robust for the small chains used here.
    """
    P = np.asarray(P, dtype=np.float64)
    size = P.shape[0]
    if P.shape != (size, size):
        raise ValueError("P must be square")
    if not np.allclose(P.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("P rows must sum to 1")
    system = np.vstack([P.T - np.eye(size), np.ones((1, size))])
    target = np.concatenate([np.zeros(size), [1.0]])
    solution, *_ = np.linalg.lstsq(system, target, rcond=None)
    solution = np.clip(solution, 0.0, None)
    return solution / solution.sum()


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions."""
    return float(0.5 * np.abs(np.asarray(p) - np.asarray(q)).sum())


def mixing_time(
    P: np.ndarray, epsilon: float = 0.125, max_steps: int = 10_000_000
) -> int:
    """Smallest ``t`` with worst-case start TV distance ``<= epsilon``.

    Uses repeated squaring to bracket the answer, then binary search,
    so chains with mixing time Θ(n log n) remain cheap to analyse.
    """
    P = np.asarray(P, dtype=np.float64)
    pi = stationary_distribution(P)

    def worst_tv(power: np.ndarray) -> float:
        return float(0.5 * np.abs(power - pi[None, :]).sum(axis=1).max())

    if worst_tv(P) <= epsilon:
        return 1
    # Bracket by squaring: powers[i] = P^(2^i).
    powers = [P]
    steps = 1
    while worst_tv(powers[-1]) > epsilon:
        if steps >= max_steps:
            raise RuntimeError(
                f"mixing time exceeds max_steps={max_steps}"
            )
        powers.append(powers[-1] @ powers[-1])
        steps *= 2
    low, high = steps // 2, steps  # tv(low) > eps >= tv(high)
    base = powers[-2]
    low_power = base
    while high - low > 1:
        mid = (low + high) // 2
        mid_power = low_power @ _matrix_power(P, mid - low)
        if worst_tv(mid_power) <= epsilon:
            high = mid
        else:
            low, low_power = mid, mid_power
    return high


def _matrix_power(P: np.ndarray, exponent: int) -> np.ndarray:
    result = np.eye(P.shape[0])
    base = P
    while exponent:
        if exponent & 1:
            result = result @ base
        base = base @ base
        exponent >>= 1
    return result


def perturbed_chain(
    weights: WeightTable,
    n: int,
    target_colour: int,
    err: float,
    *,
    sign: int = +1,
    target_dark: bool = True,
) -> np.ndarray:
    """The ``P±`` perturbation of Sec 2.4 around a target state.

    For the dark target ``D_ℓ`` and ``sign=+1`` this boosts every
    transition that moves an agent toward ``D_ℓ`` by ``err`` (``k·err``
    for the light→target arrows) and reduces the escaping ones, exactly
    as listed in the paper; ``sign=-1`` flips the perturbation.  The
    light-target version is defined symmetrically.

    Raises:
        ValueError: if ``err`` is too large for the entries to remain a
            stochastic matrix.
    """
    if sign not in (+1, -1):
        raise ValueError("sign must be +1 or -1")
    if err < 0:
        raise ValueError("err must be non-negative")
    k = weights.k
    if not 0 <= target_colour < k:
        raise ValueError(f"unknown colour {target_colour}")
    P = equilibrium_chain(weights, n)
    e = sign * err
    ell = target_colour
    if target_dark:
        # Rows D_i.
        P[dark_state(ell), light_state(ell, k)] -= e
        P[dark_state(ell), dark_state(ell)] += e
        for i in range(k):
            if i == ell:
                continue
            P[dark_state(i), light_state(i, k)] += e
            P[dark_state(i), dark_state(i)] -= e
        # Rows L_i.
        for i in range(k):
            row = light_state(i, k)
            P[row, dark_state(ell)] += k * e
            for j in range(k):
                if j != ell:
                    P[row, dark_state(j)] -= e
            P[row, row] -= e
    else:
        # Symmetric construction for the light target L_ℓ: boost the
        # arrows into L_ℓ (D_ℓ -> L_ℓ) and slow the ones out of it.
        P[dark_state(ell), light_state(ell, k)] += e
        P[dark_state(ell), dark_state(ell)] -= e
        for i in range(k):
            if i == ell:
                continue
            P[dark_state(i), light_state(i, k)] -= e
            P[dark_state(i), dark_state(i)] += e
        row = light_state(ell, k)
        for j in range(k):
            P[row, dark_state(j)] -= e
        P[row, row] += k * e
    if (P < -1e-15).any() or (P > 1.0 + 1e-15).any():
        raise ValueError(
            f"err={err} too large: perturbed entries leave [0, 1]"
        )
    P = np.clip(P, 0.0, 1.0)
    if not np.allclose(P.sum(axis=1), 1.0, atol=1e-9):
        raise AssertionError("perturbation broke row stochasticity")
    return P


def simulate_chain(
    P: np.ndarray,
    start: int,
    steps: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Simulate the chain and return per-state visit counts.

    Visits are counted for the ``steps`` states *after* leaving the
    start (i.e. states at times 1..steps).
    """
    P = np.asarray(P, dtype=np.float64)
    rng = make_rng(rng)
    size = P.shape[0]
    cumulative = np.cumsum(P, axis=1)
    visits = np.zeros(size, dtype=np.int64)
    state = start
    uniforms = rng.random(steps)
    for t in range(steps):
        state = int(np.searchsorted(cumulative[state], uniforms[t], side="right"))
        if state >= size:  # numerical edge
            state = size - 1
        visits[state] += 1
    return visits
