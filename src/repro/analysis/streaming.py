"""O(1)-memory streaming accumulators for the analysis layer.

The trajectory-based analysis (record counts with a
:class:`~repro.experiments.recorder.CountRecorder`, then evaluate
:func:`~repro.analysis.potentials.phi` etc. over the series) costs
O(T·k) memory in the number of recorded snapshots.  The accumulators
here compute the same quantities *inside* the engines' event loops in
O(B·k) memory — independent of the horizon — by exploiting that every
tracked quantity is constant between active events:

* :class:`StreamingPotentials` — exact time-weighted integrals (and
  running max/min/current values) of the paper's three potentials
  φ (Eq. (10)), ψ (Eq. (11)) and σ² (Lemma 2.14), per engine row;
* :class:`StreamingShares` — exact time-weighted colour-share
  occupancy and maximum share error (the count-level fairness
  quantities of Def 1.1(2)) per engine row;
* :class:`RunningMoments` — Welford-style streaming mean/variance/
  min/max of arbitrary per-row scalar series (the concentration-stat
  primitive), mergeable across segments.

Engines feed the first two through ``attach_stream``: the engine calls
``reset`` with the current configuration, ``update(rows, times, dark,
light)`` after every applied event (with the affected rows' *new*
counts and clocks), and ``sync(times)`` at each horizon.  Because each
update adds exactly one ``dt * value`` product per affected row, in
chronological order, the accumulated integral is *bit-identical* to a
sequential reduction over the materialised trajectory — the
exact-equality contract verified by ``tests/unit/test_streaming.py``.

All accumulators expose ``state_dict``/``load_state`` (plain arrays,
pickle-free) so they ride along engine checkpoints, ``merge_serial``
to join time-adjacent checkpoint segments, and the tap-fed ones
``concat`` to join row-disjoint accumulators from fused mega-batches.
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable


def _weight_matrix(weights, rows: int, width: int) -> np.ndarray:
    """Resolve a weights spec to a ``(rows, width)`` float matrix.

    ``weights`` may be a :class:`~repro.core.weights.WeightTable`
    (shared, may grow mid-run), a ``(k,)`` vector, a ``(B, k)`` padded
    matrix, or a zero-argument callable returning either array form
    (the hook for engines whose weight matrix is re-allocated when it
    widens, e.g. ``engine.weights_matrix``).
    """
    if callable(weights) and not isinstance(weights, WeightTable):
        weights = weights()
    if isinstance(weights, WeightTable):
        weights = weights.as_array()
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim == 1:
        w = np.tile(w, (rows, 1))
    if w.shape[0] != rows:
        raise ValueError(
            f"weights have {w.shape[0]} rows but the counts have {rows}"
        )
    if w.shape[1] < width:
        raise ValueError(
            f"weights are {w.shape[1]} colours wide but the counts "
            f"have {width}"
        )
    return w[:, :width]


def potential_values(
    dark: np.ndarray, light: np.ndarray, weights
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise (φ, ψ, σ²) for ``(B, k)`` dark/light count matrices.

    Uses the paper's closed forms ``2k·Σq² − 2(Σq)²`` with
    ``q_i = A_i/w_i`` (φ; ψ likewise on the light counts) and
    ``σ² = (A/w − a)²``; zero-weight padding columns (heterogeneous
    rows) carry zero mass and are excluded from ``k``.
    """
    dark = np.asarray(dark, dtype=np.float64)
    light = np.asarray(light, dtype=np.float64)
    w = _weight_matrix(weights, dark.shape[0], dark.shape[1])
    mass = w > 0.0
    k = mass.sum(axis=1).astype(np.float64)
    qd = np.divide(dark, w, out=np.zeros_like(dark), where=mass)
    ql = np.divide(light, w, out=np.zeros_like(light), where=mass)
    phi = 2.0 * k * (qd * qd).sum(axis=1) - 2.0 * qd.sum(axis=1) ** 2
    psi = 2.0 * k * (ql * ql).sum(axis=1) - 2.0 * ql.sum(axis=1) ** 2
    total_w = w.sum(axis=1)
    sigma = (dark.sum(axis=1) / total_w - light.sum(axis=1)) ** 2
    return phi, psi, sigma


def share_values(
    dark: np.ndarray, light: np.ndarray, weights
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise colour shares ``C_i / n`` and max share error vs the
    fair shares ``w_i / w`` for ``(B, k)`` count matrices."""
    counts = np.asarray(dark, dtype=np.float64) + np.asarray(
        light, dtype=np.float64
    )
    w = _weight_matrix(weights, counts.shape[0], counts.shape[1])
    shares = counts / counts.sum(axis=1, keepdims=True)
    fair = w / w.sum(axis=1, keepdims=True)
    error = np.abs(shares - fair).max(axis=1)
    return shares, error


class _TapAccumulator:
    """Shared tap plumbing: per-row clocks, segment bookkeeping, and
    the serial/row-wise merge helpers.  Subclasses define the tracked
    value arrays through ``_value_fields`` (integrated with the
    ``dt * value`` rule) and ``_refresh(rows, dark, light)``."""

    #: Names of the per-row value arrays: for each name ``x`` the
    #: subclass holds ``_cur_x`` (current value) and ``_int_x``
    #: (time-weighted integral); the update rule integrates the old
    #: value over the elapsed steps, then refreshes the current one.
    _value_fields: tuple[str, ...] = ()

    def __init__(self, weights):
        self._weights = weights
        self._rows: int | None = None
        self._last_time: np.ndarray | None = None
        self._start_time: np.ndarray | None = None
        self._events: np.ndarray | None = None

    def _weights_for(self, rows: np.ndarray):
        """Weights spec restricted to a row subset.

        Per-event updates carry only the affected rows' count slices;
        a per-row ``(B, k)`` weight matrix (heterogeneous batches) must
        be sliced to match, while shared specs pass through whole."""
        weights = self._weights
        if callable(weights) and not isinstance(weights, WeightTable):
            weights = weights()
        if isinstance(weights, WeightTable):
            return weights
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 2 and w.shape[0] == self._rows:
            return w[rows]
        return w

    @property
    def rows(self) -> int:
        """Number of tracked engine rows (after ``reset``)."""
        if self._rows is None:
            raise ValueError("accumulator not initialised; call reset()")
        return self._rows

    def reset(
        self, times: np.ndarray, dark: np.ndarray, light: np.ndarray
    ) -> None:
        """Bind to a row set and zero all integrals."""
        times = np.asarray(times, dtype=np.float64)
        dark = np.asarray(dark, dtype=np.float64)
        light = np.asarray(light, dtype=np.float64)
        self._rows = dark.shape[0]
        self._last_time = times.copy()
        self._start_time = times.copy()
        self._events = np.zeros(self._rows, dtype=np.int64)
        for name in self._value_fields:
            setattr(
                self, f"_int_{name}", np.zeros(self._rows, dtype=np.float64)
            )
        self._init_values(dark, light)

    def update(
        self,
        rows: np.ndarray,
        times: np.ndarray,
        dark: np.ndarray,
        light: np.ndarray,
    ) -> None:
        """Integrate the elapsed segment for ``rows`` and refresh their
        current values from the (already updated) counts.

        ``times`` holds the affected rows' new clocks; ``dark`` and
        ``light`` their count slices.  A call with zero elapsed time is
        a pure re-base (used after interventions, whose instantaneous
        count changes alter the values but not the integrals).
        """
        rows = np.asarray(rows, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        dt = times - self._last_time[rows]
        for name in self._value_fields:
            integral = getattr(self, f"_int_{name}")
            integral[rows] += dt * getattr(self, f"_cur_{name}")[rows]
        self._last_time[rows] = times
        self._events[rows] += 1
        self._refresh(
            rows,
            np.asarray(dark, dtype=np.float64),
            np.asarray(light, dtype=np.float64),
        )

    def sync(self, times: np.ndarray) -> None:
        """Integrate every row up to ``times`` (no value change —
        the configuration is constant between events)."""
        times = np.asarray(times, dtype=np.float64)
        dt = times - self._last_time
        for name in self._value_fields:
            integral = getattr(self, f"_int_{name}")
            integral += dt * getattr(self, f"_cur_{name}")
        self._last_time = times.copy()

    def durations(self) -> np.ndarray:
        """Per-row integrated step spans."""
        return self._last_time - self._start_time

    def events(self) -> np.ndarray:
        """Per-row applied-event counts."""
        return self._events.copy()

    # ------------------------------------------------------------------
    # Merging

    def merge_serial(self, later: "_TapAccumulator") -> None:
        """Fold a time-adjacent later segment into this one.

        ``later`` must have been reset at this accumulator's current
        end times (the pattern: run, checkpoint, restore, attach a
        fresh accumulator, run on, merge).  Integrals agree with the
        uninterrupted run up to float-addition associativity (the
        merge regroups ``Σa + Σb``); for *bit-identical* resumption
        instead carry the accumulator itself across the checkpoint —
        ``state_dict``/``load_state`` it alongside the engine snapshot
        and re-attach with ``attach_stream(acc, reset=False)``.
        """
        if type(later) is not type(self):
            raise TypeError("can only merge accumulators of the same type")
        if later.rows != self.rows:
            raise ValueError("row counts disagree")
        if not np.array_equal(later._start_time, self._last_time):
            raise ValueError(
                "later segment does not start at this segment's end"
            )
        for name in self._value_fields:
            getattr(self, f"_int_{name}")[...] += getattr(
                later, f"_int_{name}"
            )
        self._events += later._events
        self._last_time = later._last_time.copy()
        self._merge_values(later)

    @classmethod
    def concat(cls, accumulators: list) -> "_TapAccumulator":
        """Join row-disjoint accumulators (fused mega-batch slices)
        into one covering their concatenated row axes."""
        if not accumulators:
            raise ValueError("need at least one accumulator")
        first = accumulators[0]
        out = cls.__new__(cls)
        out._weights = first._weights
        out._rows = sum(acc.rows for acc in accumulators)
        for field in ("_last_time", "_start_time", "_events"):
            setattr(
                out,
                field,
                np.concatenate(
                    [getattr(acc, field) for acc in accumulators]
                ),
            )
        for name in first._concat_fields():
            setattr(
                out,
                name,
                np.concatenate(
                    [getattr(acc, name) for acc in accumulators]
                ),
            )
        return out

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """All per-row arrays (plain, pickle-free)."""
        state = {
            "last_time": self._last_time.copy(),
            "start_time": self._start_time.copy(),
            "events": self._events.copy(),
        }
        for name in self._concat_fields():
            state[name.lstrip("_")] = getattr(self, name).copy()
        return state

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place.

        Copies every array (the accumulator mutates its state in
        place; aliasing the caller's dict would corrupt it).
        """
        self._last_time = np.array(state["last_time"], dtype=np.float64)
        self._start_time = np.array(
            state["start_time"], dtype=np.float64
        )
        self._events = np.array(state["events"], dtype=np.int64)
        self._rows = self._last_time.shape[0]
        for name in self._concat_fields():
            setattr(
                self,
                name,
                np.array(state[name.lstrip("_")], dtype=np.float64),
            )

    # Subclass hooks -----------------------------------------------------

    def _init_values(self, dark: np.ndarray, light: np.ndarray) -> None:
        raise NotImplementedError

    def _refresh(
        self, rows: np.ndarray, dark: np.ndarray, light: np.ndarray
    ) -> None:
        raise NotImplementedError

    def _merge_values(self, later: "_TapAccumulator") -> None:
        raise NotImplementedError

    def _concat_fields(self) -> list[str]:
        raise NotImplementedError


class StreamingPotentials(_TapAccumulator):
    """Streaming φ/ψ/σ² per engine row: exact time-weighted integrals
    plus running max/min and the current values, in O(B) memory.

    Args:
        weights: Weight spec — a shared
            :class:`~repro.core.weights.WeightTable`, a ``(k,)`` array,
            a padded ``(B, k_max)`` matrix, or a callable returning
            one of the array forms (re-evaluated every refresh, so
            growing tables stay in sync).
    """

    _value_fields = ("phi", "psi", "sigma")

    def _init_values(self, dark: np.ndarray, light: np.ndarray) -> None:
        phi, psi, sigma = potential_values(dark, light, self._weights)
        self._cur_phi = phi
        self._cur_psi = psi
        self._cur_sigma = sigma
        self._max_phi = phi.copy()
        self._max_psi = psi.copy()
        self._max_sigma = sigma.copy()
        self._min_phi = phi.copy()
        self._min_psi = psi.copy()
        self._min_sigma = sigma.copy()

    def _refresh(
        self, rows: np.ndarray, dark: np.ndarray, light: np.ndarray
    ) -> None:
        phi, psi, sigma = potential_values(
            dark, light, self._weights_for(rows)
        )
        for name, values in (
            ("phi", phi), ("psi", psi), ("sigma", sigma)
        ):
            getattr(self, f"_cur_{name}")[rows] = values
            hi = getattr(self, f"_max_{name}")
            hi[rows] = np.maximum(hi[rows], values)
            lo = getattr(self, f"_min_{name}")
            lo[rows] = np.minimum(lo[rows], values)

    def _merge_values(self, later: "StreamingPotentials") -> None:
        for name in self._value_fields:
            getattr(self, f"_cur_{name}")[...] = getattr(
                later, f"_cur_{name}"
            )
            np.maximum(
                getattr(self, f"_max_{name}"),
                getattr(later, f"_max_{name}"),
                out=getattr(self, f"_max_{name}"),
            )
            np.minimum(
                getattr(self, f"_min_{name}"),
                getattr(later, f"_min_{name}"),
                out=getattr(self, f"_min_{name}"),
            )

    def _concat_fields(self) -> list[str]:
        return [
            f"_{kind}_{name}"
            for name in self._value_fields
            for kind in ("cur", "int", "max", "min")
        ]

    def summary(self) -> dict:
        """Per-row results: time-averaged, max, min and final value of
        each potential, plus event counts and durations."""
        spans = self.durations()
        safe = np.where(spans > 0, spans, 1.0)
        out = {"events": self.events(), "duration": spans}
        for name in self._value_fields:
            out[f"mean_{name}"] = getattr(self, f"_int_{name}") / safe
            out[f"max_{name}"] = getattr(self, f"_max_{name}").copy()
            out[f"min_{name}"] = getattr(self, f"_min_{name}").copy()
            out[f"final_{name}"] = getattr(self, f"_cur_{name}").copy()
            out[f"integral_{name}"] = getattr(self, f"_int_{name}").copy()
        return out


class StreamingShares(_TapAccumulator):
    """Streaming fairness occupancy per engine row: the exact
    time-weighted integral of the max share error
    ``max_i |C_i/n − w_i/w|`` (and its running max), plus per-colour
    share occupancy ``∫ C_i/n dt`` — the count-level analogue of the
    agent-level :class:`~repro.engine.observers.OccupancyTracker`."""

    _value_fields = ("error",)

    def _init_values(self, dark: np.ndarray, light: np.ndarray) -> None:
        shares, error = share_values(dark, light, self._weights)
        self._cur_error = error
        self._max_error = error.copy()
        self._cur_shares = shares
        self._int_shares = np.zeros_like(shares)

    def reset(self, times, dark, light) -> None:
        super().reset(times, dark, light)

    def update(self, rows, times, dark, light) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        times_f = np.asarray(times, dtype=np.float64)
        dt = times_f - self._last_time[rows]
        self._int_shares[rows] += dt[:, None] * self._cur_shares[rows]
        super().update(rows, times, dark, light)

    def sync(self, times) -> None:
        times_f = np.asarray(times, dtype=np.float64)
        dt = times_f - self._last_time
        self._int_shares += dt[:, None] * self._cur_shares
        super().sync(times)

    def _refresh(
        self, rows: np.ndarray, dark: np.ndarray, light: np.ndarray
    ) -> None:
        shares, error = share_values(
            dark, light, self._weights_for(rows)
        )
        if shares.shape[1] > self._cur_shares.shape[1]:
            grow = shares.shape[1] - self._cur_shares.shape[1]
            pad = np.zeros((self.rows, grow))
            self._cur_shares = np.concatenate(
                [self._cur_shares, pad], axis=1
            )
            self._int_shares = np.concatenate(
                [self._int_shares, pad.copy()], axis=1
            )
        self._cur_shares[np.ix_(rows, range(shares.shape[1]))] = shares
        self._cur_error[rows] = error
        self._max_error[rows] = np.maximum(self._max_error[rows], error)

    def _merge_values(self, later: "StreamingShares") -> None:
        if later._int_shares.shape[1] > self._int_shares.shape[1]:
            grow = later._int_shares.shape[1] - self._int_shares.shape[1]
            pad = np.zeros((self.rows, grow))
            self._int_shares = np.concatenate(
                [self._int_shares, pad], axis=1
            )
        width = later._int_shares.shape[1]
        self._int_shares[:, :width] += later._int_shares
        self._cur_shares = later._cur_shares.copy()
        self._cur_error[...] = later._cur_error
        np.maximum(
            self._max_error, later._max_error, out=self._max_error
        )

    def _concat_fields(self) -> list[str]:
        return [
            "_cur_error", "_int_error", "_max_error",
            "_cur_shares", "_int_shares",
        ]

    def summary(self) -> dict:
        """Per-row results: time-averaged and max share error, plus
        time-averaged colour occupancy fractions ``(B, k)``."""
        spans = self.durations()
        safe = np.where(spans > 0, spans, 1.0)
        return {
            "events": self.events(),
            "duration": spans,
            "mean_error": self._int_error / safe,
            "max_error": self._max_error.copy(),
            "final_error": self._cur_error.copy(),
            "occupancy": self._int_shares / safe[:, None],
        }


class RunningMoments:
    """Welford-style streaming moments of per-row scalar series.

    Tracks count, mean, variance (via the M2 sum of squared
    deviations), min and max for ``rows`` parallel series in O(rows)
    memory, with the numerically stable one-pass update and the exact
    pairwise merge rule — the concentration-stat primitive for
    long-horizon runs.
    """

    def __init__(self, rows: int):
        if rows < 1:
            raise ValueError("need at least one row")
        self._count = np.zeros(rows, dtype=np.int64)
        self._mean = np.zeros(rows, dtype=np.float64)
        self._m2 = np.zeros(rows, dtype=np.float64)
        self._min = np.full(rows, np.inf)
        self._max = np.full(rows, -np.inf)

    @property
    def rows(self) -> int:
        return self._count.shape[0]

    def add(self, values: np.ndarray, rows: np.ndarray | None = None) -> None:
        """Fold one observation per (selected) row into the moments."""
        values = np.asarray(values, dtype=np.float64)
        if rows is None:
            rows = np.arange(self.rows)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        self._count[rows] += 1
        delta = values - self._mean[rows]
        self._mean[rows] += delta / self._count[rows]
        self._m2[rows] += delta * (values - self._mean[rows])
        self._min[rows] = np.minimum(self._min[rows], values)
        self._max[rows] = np.maximum(self._max[rows], values)

    def merge(self, other: "RunningMoments") -> None:
        """Fold another segment's moments in (Chan's parallel rule)."""
        if other.rows != self.rows:
            raise ValueError("row counts disagree")
        total = self._count + other._count
        seen = total > 0
        delta = other._mean - self._mean
        weight = np.divide(
            other._count, total, out=np.zeros(self.rows), where=seen
        )
        self._mean += delta * weight
        self._m2 += other._m2 + delta * delta * (
            self._count * weight
        )
        self._count = total
        np.minimum(self._min, other._min, out=self._min)
        np.maximum(self._max, other._max, out=self._max)

    def count(self) -> np.ndarray:
        return self._count.copy()

    def mean(self) -> np.ndarray:
        return self._mean.copy()

    def variance(self) -> np.ndarray:
        """Population variance (0 for rows with fewer than 2 values)."""
        return np.divide(
            self._m2,
            self._count,
            out=np.zeros(self.rows),
            where=self._count > 0,
        )

    def std(self) -> np.ndarray:
        return np.sqrt(self.variance())

    def minimum(self) -> np.ndarray:
        return self._min.copy()

    def maximum(self) -> np.ndarray:
        return self._max.copy()

    def state_dict(self) -> dict:
        return {
            "count": self._count.copy(),
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
            "min": self._min.copy(),
            "max": self._max.copy(),
        }

    def load_state(self, state: dict) -> None:
        self._count = np.asarray(state["count"], dtype=np.int64)
        self._mean = np.asarray(state["mean"], dtype=np.float64)
        self._m2 = np.asarray(state["m2"], dtype=np.float64)
        self._min = np.asarray(state["min"], dtype=np.float64)
        self._max = np.asarray(state["max"], dtype=np.float64)


class PotentialTrajectory:
    """Materialising tap with the same interface as
    :class:`StreamingPotentials` — records every ``(time, φ, ψ, σ²)``
    sample so tests can reduce the explicit trajectory sequentially
    and compare against the streaming integrals *exactly*.  O(events)
    memory; test/reference use only.
    """

    def __init__(self, weights):
        self._weights = weights
        self._start: np.ndarray | None = None
        self._initial: tuple[np.ndarray, ...] | None = None
        # Event log: ("update", rows, times, values) per applied event
        # and ("sync", times) per horizon — syncs are recorded so the
        # replay splits each integral into the same float additions as
        # the streaming accumulator (one add per update AND per sync).
        self._log: list[tuple] = []

    def reset(self, times, dark, light) -> None:
        self._start = np.asarray(times, dtype=np.float64).copy()
        self._initial = potential_values(dark, light, self._weights)
        self._log = []

    def _weights_for(self, rows):
        # Same per-row weight-matrix slicing rule as _TapAccumulator.
        weights = self._weights
        if callable(weights) and not isinstance(weights, WeightTable):
            weights = weights()
        if isinstance(weights, WeightTable):
            return weights
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 2 and w.shape[0] == self._start.shape[0]:
            return w[rows]
        return w

    def update(self, rows, times, dark, light) -> None:
        rows = np.asarray(rows, dtype=np.int64).copy()
        self._log.append((
            "update",
            rows,
            np.asarray(times, dtype=np.float64).copy(),
            potential_values(dark, light, self._weights_for(rows)),
        ))

    def sync(self, times) -> None:
        self._log.append(
            ("sync", np.asarray(times, dtype=np.float64).copy())
        )

    def integrals(self) -> dict:
        """Sequential ``Σ dt·value`` reduction over the recorded
        trajectory, replaying updates *and* horizon syncs so every
        float addition matches the streaming accumulator's exactly."""
        rows = self._start.shape[0]
        names = ("phi", "psi", "sigma")
        last_time = self._start.copy()
        current = {
            name: self._initial[i].copy() for i, name in enumerate(names)
        }
        integral = {name: np.zeros(rows) for name in names}
        for entry in self._log:
            if entry[0] == "update":
                _, sel, times, values = entry
                dt = times - last_time[sel]
                for i, name in enumerate(names):
                    integral[name][sel] += dt * current[name][sel]
                    current[name][sel] = values[i]
                last_time[sel] = times
            else:
                _, times = entry
                dt = times - last_time
                for name in names:
                    integral[name] += dt * current[name]
                last_time = times.copy()
        return integral
