"""O(1)-memory streaming accumulators for the analysis layer.

The trajectory-based analysis (record counts with a
:class:`~repro.experiments.recorder.CountRecorder`, then evaluate
:func:`~repro.analysis.potentials.phi` etc. over the series) costs
O(T·k) memory in the number of recorded snapshots.  The accumulators
here compute the same quantities *inside* the engines' event loops in
O(B·k) memory — independent of the horizon — by exploiting that every
tracked quantity is constant between active events:

* :class:`StreamingPotentials` — exact time-weighted integrals (and
  running max/min/current values) of the paper's three potentials
  φ (Eq. (10)), ψ (Eq. (11)) and σ² (Lemma 2.14), per engine row;
* :class:`StreamingShares` — exact time-weighted colour-share
  occupancy and maximum share error (the count-level fairness
  quantities of Def 1.1(2)) per engine row;
* :class:`RunningMoments` — Welford-style streaming mean/variance/
  min/max of arbitrary per-row scalar series (the concentration-stat
  primitive), mergeable across segments.

Engines feed the first two through ``attach_stream``: the engine calls
``reset`` with the current configuration, ``update(rows, times, dark,
light)`` after every applied event (with the affected rows' *new*
counts and clocks), and ``sync(times)`` at each horizon.  Because each
update adds exactly one ``dt * value`` product per affected row, in
chronological order, the accumulated integral is *bit-identical* to a
sequential reduction over the materialised trajectory — the
exact-equality contract verified by ``tests/unit/test_streaming.py``.

All accumulators expose ``state_dict``/``load_state`` (plain **host
NumPy** arrays, pickle-free, whatever the compute backend) so they ride
along engine checkpoints, ``merge_serial`` to join time-adjacent
checkpoint segments, and the tap-fed ones ``concat`` to join
row-disjoint accumulators from fused mega-batches.

Backends.  All array work routes through :mod:`repro.engine.backend`
(this module never imports numpy itself).  The accumulators accept a
``backend=`` argument and hold their per-row state in that backend's
namespace; like the engine event loops that feed them they rely on
NumPy-compatible conveniences (fancy-index scatter, ``out=``), so the
``array-api-strict`` backend is rejected with the same clear error.
"""

from __future__ import annotations

from ..core.weights import WeightTable
from ..engine.backend import (
    FLOAT64,
    HOST,
    INT64,
    Backend,
    require_engine_loops,
    resolve_backend,
)

#: Host namespace for the module-level helpers and the test-reference
#: :class:`PotentialTrajectory`; accumulator methods use their own
#: backend's namespace instead.
np = HOST.xp


def _resolve_loop_backend(backend) -> Backend:
    return require_engine_loops(
        resolve_backend(backend), "the streaming accumulators"
    )


def _weight_matrix(weights, rows: int, width: int, xp=None):
    """Resolve a weights spec to a ``(rows, width)`` float matrix.

    ``weights`` may be a :class:`~repro.core.weights.WeightTable`
    (shared, may grow mid-run), a ``(k,)`` vector, a ``(B, k)`` padded
    matrix, or a zero-argument callable returning either array form
    (the hook for engines whose weight matrix is re-allocated when it
    widens, e.g. ``engine.weights_matrix``).
    """
    if xp is None:
        xp = np
    if callable(weights) and not isinstance(weights, WeightTable):
        weights = weights()
    if isinstance(weights, WeightTable):
        weights = weights.as_array()
    w = xp.asarray(weights, dtype=FLOAT64)
    if w.ndim == 1:
        w = xp.tile(w, (rows, 1))
    if w.shape[0] != rows:
        raise ValueError(
            f"weights have {w.shape[0]} rows but the counts have {rows}"
        )
    if w.shape[1] < width:
        raise ValueError(
            f"weights are {w.shape[1]} colours wide but the counts "
            f"have {width}"
        )
    return w[:, :width]


def potential_values(dark, light, weights, xp=None):
    """Row-wise (φ, ψ, σ²) for ``(B, k)`` dark/light count matrices.

    Uses the paper's closed forms ``2k·Σq² − 2(Σq)²`` with
    ``q_i = A_i/w_i`` (φ; ψ likewise on the light counts) and
    ``σ² = (A/w − a)²``; zero-weight padding columns (heterogeneous
    rows) carry zero mass and are excluded from ``k``.
    """
    if xp is None:
        xp = np
    dark = xp.asarray(dark, dtype=FLOAT64)
    light = xp.asarray(light, dtype=FLOAT64)
    w = _weight_matrix(weights, dark.shape[0], dark.shape[1], xp=xp)
    mass = w > 0.0
    k = xp.astype(mass.sum(axis=1), FLOAT64)
    qd = xp.divide(
        dark, w, out=xp.zeros(dark.shape, dtype=FLOAT64), where=mass
    )
    ql = xp.divide(
        light, w, out=xp.zeros(light.shape, dtype=FLOAT64), where=mass
    )
    phi = 2.0 * k * (qd * qd).sum(axis=1) - 2.0 * qd.sum(axis=1) ** 2
    psi = 2.0 * k * (ql * ql).sum(axis=1) - 2.0 * ql.sum(axis=1) ** 2
    total_w = w.sum(axis=1)
    sigma = (dark.sum(axis=1) / total_w - light.sum(axis=1)) ** 2
    return phi, psi, sigma


def share_values(dark, light, weights, xp=None):
    """Row-wise colour shares ``C_i / n`` and max share error vs the
    fair shares ``w_i / w`` for ``(B, k)`` count matrices."""
    if xp is None:
        xp = np
    counts = xp.asarray(dark, dtype=FLOAT64) + xp.asarray(
        light, dtype=FLOAT64
    )
    w = _weight_matrix(weights, counts.shape[0], counts.shape[1], xp=xp)
    shares = counts / counts.sum(axis=1, keepdims=True)
    fair = w / w.sum(axis=1, keepdims=True)
    error = xp.abs(shares - fair).max(axis=1)
    return shares, error


class _TapAccumulator:
    """Shared tap plumbing: per-row clocks, segment bookkeeping, and
    the serial/row-wise merge helpers.  Subclasses define the tracked
    value arrays through ``_value_fields`` (integrated with the
    ``dt * value`` rule) and ``_refresh(rows, dark, light)``."""

    #: Names of the per-row value arrays: for each name ``x`` the
    #: subclass holds ``_cur_x`` (current value) and ``_int_x``
    #: (time-weighted integral); the update rule integrates the old
    #: value over the elapsed steps, then refreshes the current one.
    _value_fields: tuple[str, ...] = ()

    def __init__(self, weights, *, backend: str | Backend | None = None):
        self._weights = weights
        self._backend = _resolve_loop_backend(backend)
        self._rows: int | None = None
        self._last_time = None
        self._start_time = None
        self._events = None

    def _weights_for(self, rows):
        """Weights spec restricted to a row subset.

        Per-event updates carry only the affected rows' count slices;
        a per-row ``(B, k)`` weight matrix (heterogeneous batches) must
        be sliced to match, while shared specs pass through whole."""
        xp = self._backend.xp
        weights = self._weights
        if callable(weights) and not isinstance(weights, WeightTable):
            weights = weights()
        if isinstance(weights, WeightTable):
            return weights
        w = xp.asarray(weights, dtype=FLOAT64)
        if w.ndim == 2 and w.shape[0] == self._rows:
            return w[rows]
        return w

    @property
    def rows(self) -> int:
        """Number of tracked engine rows (after ``reset``)."""
        if self._rows is None:
            raise ValueError("accumulator not initialised; call reset()")
        return self._rows

    @property
    def backend(self) -> Backend:
        """The resolved array backend holding the per-row state."""
        return self._backend

    def reset(self, times, dark, light) -> None:
        """Bind to a row set and zero all integrals."""
        xp = self._backend.xp
        times = xp.asarray(times, dtype=FLOAT64)
        dark = xp.asarray(dark, dtype=FLOAT64)
        light = xp.asarray(light, dtype=FLOAT64)
        self._rows = dark.shape[0]
        self._last_time = times.copy()
        self._start_time = times.copy()
        self._events = xp.zeros(self._rows, dtype=INT64)
        for name in self._value_fields:
            setattr(
                self, f"_int_{name}", xp.zeros(self._rows, dtype=FLOAT64)
            )
        self._init_values(dark, light)

    def update(self, rows, times, dark, light) -> None:
        """Integrate the elapsed segment for ``rows`` and refresh their
        current values from the (already updated) counts.

        ``times`` holds the affected rows' new clocks; ``dark`` and
        ``light`` their count slices.  A call with zero elapsed time is
        a pure re-base (used after interventions, whose instantaneous
        count changes alter the values but not the integrals).
        """
        xp = self._backend.xp
        rows = xp.asarray(rows, dtype=INT64)
        times = xp.asarray(times, dtype=FLOAT64)
        dt = times - self._last_time[rows]
        for name in self._value_fields:
            integral = getattr(self, f"_int_{name}")
            integral[rows] += dt * getattr(self, f"_cur_{name}")[rows]
        self._last_time[rows] = times
        self._events[rows] += 1
        self._refresh(
            rows,
            xp.asarray(dark, dtype=FLOAT64),
            xp.asarray(light, dtype=FLOAT64),
        )

    def sync(self, times) -> None:
        """Integrate every row up to ``times`` (no value change —
        the configuration is constant between events)."""
        xp = self._backend.xp
        times = xp.asarray(times, dtype=FLOAT64)
        dt = times - self._last_time
        for name in self._value_fields:
            integral = getattr(self, f"_int_{name}")
            integral += dt * getattr(self, f"_cur_{name}")
        self._last_time = times.copy()

    def durations(self):
        """Per-row integrated step spans."""
        return self._last_time - self._start_time

    def events(self):
        """Per-row applied-event counts."""
        return self._events.copy()

    # ------------------------------------------------------------------
    # Merging

    def merge_serial(self, later: "_TapAccumulator") -> None:
        """Fold a time-adjacent later segment into this one.

        ``later`` must have been reset at this accumulator's current
        end times (the pattern: run, checkpoint, restore, attach a
        fresh accumulator, run on, merge).  Integrals agree with the
        uninterrupted run up to float-addition associativity (the
        merge regroups ``Σa + Σb``); for *bit-identical* resumption
        instead carry the accumulator itself across the checkpoint —
        ``state_dict``/``load_state`` it alongside the engine snapshot
        and re-attach with ``attach_stream(acc, reset=False)``.
        """
        xp = self._backend.xp
        if type(later) is not type(self):
            raise TypeError("can only merge accumulators of the same type")
        if later.rows != self.rows:
            raise ValueError("row counts disagree")
        if not bool(xp.all(later._start_time == self._last_time)):
            raise ValueError(
                "later segment does not start at this segment's end"
            )
        for name in self._value_fields:
            getattr(self, f"_int_{name}")[...] += getattr(
                later, f"_int_{name}"
            )
        self._events += later._events
        self._last_time = later._last_time.copy()
        self._merge_values(later)

    @classmethod
    def concat(cls, accumulators: list) -> "_TapAccumulator":
        """Join row-disjoint accumulators (fused mega-batch slices)
        into one covering their concatenated row axes."""
        if not accumulators:
            raise ValueError("need at least one accumulator")
        first = accumulators[0]
        xp = first._backend.xp
        out = cls.__new__(cls)
        out._weights = first._weights
        out._backend = first._backend
        out._rows = sum(acc.rows for acc in accumulators)
        for field in ("_last_time", "_start_time", "_events"):
            setattr(
                out,
                field,
                xp.concatenate(
                    [getattr(acc, field) for acc in accumulators]
                ),
            )
        for name in first._concat_fields():
            setattr(
                out,
                name,
                xp.concatenate(
                    [getattr(acc, name) for acc in accumulators]
                ),
            )
        return out

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """All per-row arrays as plain host NumPy (pickle-free), so a
        tap checkpointed on one backend reloads on any other."""
        bk = self._backend
        state = {
            "last_time": bk.to_numpy(self._last_time, copy=True),
            "start_time": bk.to_numpy(self._start_time, copy=True),
            "events": bk.to_numpy(self._events, copy=True),
        }
        for name in self._concat_fields():
            state[name.lstrip("_")] = bk.to_numpy(
                getattr(self, name), copy=True
            )
        return state

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place.

        Copies every array (the accumulator mutates its state in
        place; aliasing the caller's dict would corrupt it).
        """
        bk = self._backend
        self._last_time = bk.from_host(
            np.array(state["last_time"], dtype=FLOAT64)
        )
        self._start_time = bk.from_host(
            np.array(state["start_time"], dtype=FLOAT64)
        )
        self._events = bk.from_host(
            np.array(state["events"], dtype=INT64)
        )
        self._rows = self._last_time.shape[0]
        for name in self._concat_fields():
            setattr(
                self,
                name,
                bk.from_host(
                    np.array(state[name.lstrip("_")], dtype=FLOAT64)
                ),
            )

    # Subclass hooks -----------------------------------------------------

    def _init_values(self, dark, light) -> None:
        raise NotImplementedError

    def _refresh(self, rows, dark, light) -> None:
        raise NotImplementedError

    def _merge_values(self, later: "_TapAccumulator") -> None:
        raise NotImplementedError

    def _concat_fields(self) -> list[str]:
        raise NotImplementedError


class StreamingPotentials(_TapAccumulator):
    """Streaming φ/ψ/σ² per engine row: exact time-weighted integrals
    plus running max/min and the current values, in O(B) memory.

    Args:
        weights: Weight spec — a shared
            :class:`~repro.core.weights.WeightTable`, a ``(k,)`` array,
            a padded ``(B, k_max)`` matrix, or a callable returning
            one of the array forms (re-evaluated every refresh, so
            growing tables stay in sync).
        backend: Array backend holding the per-row state (name,
            resolved backend, or None for the engine default).
    """

    _value_fields = ("phi", "psi", "sigma")

    def _init_values(self, dark, light) -> None:
        phi, psi, sigma = potential_values(
            dark, light, self._weights, xp=self._backend.xp
        )
        self._cur_phi = phi
        self._cur_psi = psi
        self._cur_sigma = sigma
        self._max_phi = phi.copy()
        self._max_psi = psi.copy()
        self._max_sigma = sigma.copy()
        self._min_phi = phi.copy()
        self._min_psi = psi.copy()
        self._min_sigma = sigma.copy()

    def _refresh(self, rows, dark, light) -> None:
        xp = self._backend.xp
        phi, psi, sigma = potential_values(
            dark, light, self._weights_for(rows), xp=xp
        )
        for name, values in (
            ("phi", phi), ("psi", psi), ("sigma", sigma)
        ):
            getattr(self, f"_cur_{name}")[rows] = values
            hi = getattr(self, f"_max_{name}")
            hi[rows] = xp.maximum(hi[rows], values)
            lo = getattr(self, f"_min_{name}")
            lo[rows] = xp.minimum(lo[rows], values)

    def _merge_values(self, later: "StreamingPotentials") -> None:
        xp = self._backend.xp
        for name in self._value_fields:
            getattr(self, f"_cur_{name}")[...] = getattr(
                later, f"_cur_{name}"
            )
            xp.maximum(
                getattr(self, f"_max_{name}"),
                getattr(later, f"_max_{name}"),
                out=getattr(self, f"_max_{name}"),
            )
            xp.minimum(
                getattr(self, f"_min_{name}"),
                getattr(later, f"_min_{name}"),
                out=getattr(self, f"_min_{name}"),
            )

    def _concat_fields(self) -> list[str]:
        return [
            f"_{kind}_{name}"
            for name in self._value_fields
            for kind in ("cur", "int", "max", "min")
        ]

    def summary(self) -> dict:
        """Per-row results: time-averaged, max, min and final value of
        each potential, plus event counts and durations."""
        xp = self._backend.xp
        spans = self.durations()
        safe = xp.where(spans > 0, spans, 1.0)
        out = {"events": self.events(), "duration": spans}
        for name in self._value_fields:
            out[f"mean_{name}"] = getattr(self, f"_int_{name}") / safe
            out[f"max_{name}"] = getattr(self, f"_max_{name}").copy()
            out[f"min_{name}"] = getattr(self, f"_min_{name}").copy()
            out[f"final_{name}"] = getattr(self, f"_cur_{name}").copy()
            out[f"integral_{name}"] = getattr(self, f"_int_{name}").copy()
        return out


class StreamingShares(_TapAccumulator):
    """Streaming fairness occupancy per engine row: the exact
    time-weighted integral of the max share error
    ``max_i |C_i/n − w_i/w|`` (and its running max), plus per-colour
    share occupancy ``∫ C_i/n dt`` — the count-level analogue of the
    agent-level :class:`~repro.engine.observers.OccupancyTracker`."""

    _value_fields = ("error",)

    def _init_values(self, dark, light) -> None:
        xp = self._backend.xp
        shares, error = share_values(
            dark, light, self._weights, xp=xp
        )
        self._cur_error = error
        self._max_error = error.copy()
        self._cur_shares = shares
        self._int_shares = xp.zeros(shares.shape, dtype=FLOAT64)

    def reset(self, times, dark, light) -> None:
        super().reset(times, dark, light)

    def update(self, rows, times, dark, light) -> None:
        xp = self._backend.xp
        rows = xp.asarray(rows, dtype=INT64)
        times_f = xp.asarray(times, dtype=FLOAT64)
        dt = times_f - self._last_time[rows]
        self._int_shares[rows] += dt[:, None] * self._cur_shares[rows]
        super().update(rows, times, dark, light)

    def sync(self, times) -> None:
        xp = self._backend.xp
        times_f = xp.asarray(times, dtype=FLOAT64)
        dt = times_f - self._last_time
        self._int_shares += dt[:, None] * self._cur_shares
        super().sync(times)

    def _refresh(self, rows, dark, light) -> None:
        xp = self._backend.xp
        shares, error = share_values(
            dark, light, self._weights_for(rows), xp=xp
        )
        if shares.shape[1] > self._cur_shares.shape[1]:
            grow = shares.shape[1] - self._cur_shares.shape[1]
            pad = xp.zeros((self.rows, grow), dtype=FLOAT64)
            self._cur_shares = xp.concatenate(
                [self._cur_shares, pad], axis=1
            )
            self._int_shares = xp.concatenate(
                [self._int_shares, pad.copy()], axis=1
            )
        self._cur_shares[xp.ix_(rows, range(shares.shape[1]))] = shares
        self._cur_error[rows] = error
        self._max_error[rows] = xp.maximum(self._max_error[rows], error)

    def _merge_values(self, later: "StreamingShares") -> None:
        xp = self._backend.xp
        if later._int_shares.shape[1] > self._int_shares.shape[1]:
            grow = later._int_shares.shape[1] - self._int_shares.shape[1]
            pad = xp.zeros((self.rows, grow), dtype=FLOAT64)
            self._int_shares = xp.concatenate(
                [self._int_shares, pad], axis=1
            )
        width = later._int_shares.shape[1]
        self._int_shares[:, :width] += later._int_shares
        self._cur_shares = later._cur_shares.copy()
        self._cur_error[...] = later._cur_error
        xp.maximum(
            self._max_error, later._max_error, out=self._max_error
        )

    def _concat_fields(self) -> list[str]:
        return [
            "_cur_error", "_int_error", "_max_error",
            "_cur_shares", "_int_shares",
        ]

    def summary(self) -> dict:
        """Per-row results: time-averaged and max share error, plus
        time-averaged colour occupancy fractions ``(B, k)``."""
        xp = self._backend.xp
        spans = self.durations()
        safe = xp.where(spans > 0, spans, 1.0)
        return {
            "events": self.events(),
            "duration": spans,
            "mean_error": self._int_error / safe,
            "max_error": self._max_error.copy(),
            "final_error": self._cur_error.copy(),
            "occupancy": self._int_shares / safe[:, None],
        }


class RunningMoments:
    """Welford-style streaming moments of per-row scalar series.

    Tracks count, mean, variance (via the M2 sum of squared
    deviations), min and max for ``rows`` parallel series in O(rows)
    memory, with the numerically stable one-pass update and the exact
    pairwise merge rule — the concentration-stat primitive for
    long-horizon runs.
    """

    def __init__(self, rows: int, *, backend: str | Backend | None = None):
        if rows < 1:
            raise ValueError("need at least one row")
        self._backend = _resolve_loop_backend(backend)
        xp = self._backend.xp
        self._count = xp.zeros(rows, dtype=INT64)
        self._mean = xp.zeros(rows, dtype=FLOAT64)
        self._m2 = xp.zeros(rows, dtype=FLOAT64)
        self._min = xp.full(rows, xp.inf, dtype=FLOAT64)
        self._max = xp.full(rows, -xp.inf, dtype=FLOAT64)

    @property
    def rows(self) -> int:
        return self._count.shape[0]

    @property
    def backend(self) -> Backend:
        """The resolved array backend holding the per-row state."""
        return self._backend

    def add(self, values, rows=None) -> None:
        """Fold one observation per (selected) row into the moments."""
        xp = self._backend.xp
        values = xp.asarray(values, dtype=FLOAT64)
        if rows is None:
            rows = xp.arange(self.rows)
        else:
            rows = xp.asarray(rows, dtype=INT64)
        self._count[rows] += 1
        delta = values - self._mean[rows]
        self._mean[rows] += delta / self._count[rows]
        self._m2[rows] += delta * (values - self._mean[rows])
        self._min[rows] = xp.minimum(self._min[rows], values)
        self._max[rows] = xp.maximum(self._max[rows], values)

    def merge(self, other: "RunningMoments") -> None:
        """Fold another segment's moments in (Chan's parallel rule)."""
        xp = self._backend.xp
        if other.rows != self.rows:
            raise ValueError("row counts disagree")
        total = self._count + other._count
        seen = total > 0
        delta = other._mean - self._mean
        weight = xp.divide(
            other._count,
            total,
            out=xp.zeros(self.rows, dtype=FLOAT64),
            where=seen,
        )
        self._mean += delta * weight
        self._m2 += other._m2 + delta * delta * (
            self._count * weight
        )
        self._count = total
        xp.minimum(self._min, other._min, out=self._min)
        xp.maximum(self._max, other._max, out=self._max)

    def count(self):
        return self._count.copy()

    def mean(self):
        return self._mean.copy()

    def variance(self):
        """Population variance (0 for rows with fewer than 2 values)."""
        xp = self._backend.xp
        return xp.divide(
            self._m2,
            self._count,
            out=xp.zeros(self.rows, dtype=FLOAT64),
            where=self._count > 0,
        )

    def std(self):
        return self._backend.xp.sqrt(self.variance())

    def minimum(self):
        return self._min.copy()

    def maximum(self):
        return self._max.copy()

    def state_dict(self) -> dict:
        """Per-row moments as plain host NumPy arrays."""
        bk = self._backend
        return {
            "count": bk.to_numpy(self._count, copy=True),
            "mean": bk.to_numpy(self._mean, copy=True),
            "m2": bk.to_numpy(self._m2, copy=True),
            "min": bk.to_numpy(self._min, copy=True),
            "max": bk.to_numpy(self._max, copy=True),
        }

    def load_state(self, state: dict) -> None:
        bk = self._backend
        self._count = bk.from_host(np.asarray(state["count"], dtype=INT64))
        self._mean = bk.from_host(np.asarray(state["mean"], dtype=FLOAT64))
        self._m2 = bk.from_host(np.asarray(state["m2"], dtype=FLOAT64))
        self._min = bk.from_host(np.asarray(state["min"], dtype=FLOAT64))
        self._max = bk.from_host(np.asarray(state["max"], dtype=FLOAT64))


class PotentialTrajectory:
    """Materialising tap with the same interface as
    :class:`StreamingPotentials` — records every ``(time, φ, ψ, σ²)``
    sample so tests can reduce the explicit trajectory sequentially
    and compare against the streaming integrals *exactly*.  O(events)
    memory; test/reference use only (host-resident).
    """

    def __init__(self, weights):
        self._weights = weights
        self._start = None
        self._initial = None
        # Event log: ("update", rows, times, values) per applied event
        # and ("sync", times) per horizon — syncs are recorded so the
        # replay splits each integral into the same float additions as
        # the streaming accumulator (one add per update AND per sync).
        self._log: list[tuple] = []

    def reset(self, times, dark, light) -> None:
        self._start = np.asarray(times, dtype=FLOAT64).copy()
        self._initial = potential_values(dark, light, self._weights)
        self._log = []

    def _weights_for(self, rows):
        # Same per-row weight-matrix slicing rule as _TapAccumulator.
        weights = self._weights
        if callable(weights) and not isinstance(weights, WeightTable):
            weights = weights()
        if isinstance(weights, WeightTable):
            return weights
        w = np.asarray(weights, dtype=FLOAT64)
        if w.ndim == 2 and w.shape[0] == self._start.shape[0]:
            return w[rows]
        return w

    def update(self, rows, times, dark, light) -> None:
        rows = np.asarray(rows, dtype=INT64).copy()
        self._log.append((
            "update",
            rows,
            np.asarray(times, dtype=FLOAT64).copy(),
            potential_values(dark, light, self._weights_for(rows)),
        ))

    def sync(self, times) -> None:
        self._log.append(
            ("sync", np.asarray(times, dtype=FLOAT64).copy())
        )

    def integrals(self) -> dict:
        """Sequential ``Σ dt·value`` reduction over the recorded
        trajectory, replaying updates *and* horizon syncs so every
        float addition matches the streaming accumulator's exactly."""
        rows = self._start.shape[0]
        names = ("phi", "psi", "sigma")
        last_time = self._start.copy()
        current = {
            name: self._initial[i].copy() for i, name in enumerate(names)
        }
        integral = {
            name: np.zeros(rows, dtype=FLOAT64) for name in names
        }
        for entry in self._log:
            if entry[0] == "update":
                _, sel, times, values = entry
                dt = times - last_time[sel]
                for i, name in enumerate(names):
                    integral[name][sel] += dt * current[name][sel]
                    current[name][sel] = values[i]
                last_time[sel] = times
            else:
                _, times = entry
                dt = times - last_time
                for name in names:
                    integral[name] += dt * current[name]
                last_time = times.copy()
        return integral
