"""Biased random walks and the gambler's ruin (Theorem A.1, Feller).

Phase 1 of the paper's analysis couples the aggregate quantities
``a(t)`` and ``A_i(t)`` with biased random walks on ``{0..b}`` and uses
the classical absorption formulas.  This module provides those formulas
exactly as stated, plus a simulator used to validate the coupling
empirically (experiment E3's Phase-1 panel and the unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.rng import make_rng


@dataclass(frozen=True)
class RuinProbabilities:
    """Absorption behaviour of a biased walk started at ``s`` on
    ``{0..b}`` with up-probability ``p`` (Theorem A.1)."""

    hit_top: float
    hit_bottom: float
    expected_time: float


def gamblers_ruin(p: float, b: int, s: int) -> RuinProbabilities:
    """Exact absorption probabilities and expected time (Thm A.1).

    Args:
        p: Probability of moving up at an interior state.
        b: Absorbing top boundary (bottom is 0).
        s: Starting state, ``0 <= s <= b``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly between 0 and 1")
    if b < 1:
        raise ValueError("need b >= 1")
    if not 0 <= s <= b:
        raise ValueError("start must satisfy 0 <= s <= b")
    if s == 0:
        return RuinProbabilities(0.0, 1.0, 0.0)
    if s == b:
        return RuinProbabilities(1.0, 0.0, 0.0)
    if p == 0.5:
        hit_top = s / b
        expected = float(s * (b - s))
        return RuinProbabilities(hit_top, 1.0 - hit_top, expected)
    ratio = (1.0 - p) / p
    # Guard against overflow for strongly downward-biased long walks.
    log_rs = s * np.log(ratio)
    log_rb = b * np.log(ratio)
    if max(log_rs, log_rb) > 700:
        # ratio**b astronomically large: walk almost surely hits 0.
        hit_top = 0.0 if ratio > 1 else 1.0
    else:
        rs, rb = np.exp(log_rs), np.exp(log_rb)
        hit_top = (rs - 1.0) / (rb - 1.0)
        rsafe = min(rs, 1e290)
        rbsafe = min(rb, 1e290)
        expected = (
            s / (1.0 - 2.0 * p)
            - (b / (1.0 - 2.0 * p)) * (1.0 - rsafe) / (1.0 - rbsafe)
        )
        return RuinProbabilities(
            float(hit_top), float(1.0 - hit_top), float(expected)
        )
    return RuinProbabilities(hit_top, 1.0 - hit_top, float("inf"))


@dataclass(frozen=True)
class WalkOutcome:
    """Result of one simulated biased walk."""

    absorbed_at: int  # 0 or b
    steps: int


def simulate_biased_walk(
    p: float,
    b: int,
    s: int,
    *,
    rng: int | np.random.Generator | None = None,
    max_steps: int = 100_000_000,
) -> WalkOutcome:
    """Run one biased walk to absorption (or ``max_steps``)."""
    if not 0 <= s <= b:
        raise ValueError("start must satisfy 0 <= s <= b")
    rng = make_rng(rng)
    position = s
    steps = 0
    while 0 < position < b:
        if steps >= max_steps:
            raise RuntimeError("walk did not absorb within max_steps")
        # Draw uniforms in blocks for speed.
        block = rng.random(min(4096, max_steps - steps))
        for u in block:
            position += 1 if u < p else -1
            steps += 1
            if position == 0 or position == b:
                break
    return WalkOutcome(absorbed_at=position, steps=steps)


def escape_probability_bound(
    epsilon: float, n: int, w: float, c: float = 1.0
) -> float:
    """The Lemma 2.1-style failure bound ``exp(-c n ε² / w)``.

    Used to predict how unlikely it is for the light mass to fall back
    out of region ``S_1`` once reached.
    """
    if epsilon <= 0 or n < 1 or w <= 0:
        raise ValueError("need epsilon > 0, n >= 1, w > 0")
    return float(np.exp(-c * n * epsilon**2 / w))
