"""Exact one-step drift of the potential functions (Lemmas 2.9, 2.10).

The paper's Phase-2 analysis shows the potentials are approximate
supermartingales:

    E(φ(t+1) | F_t) ≤ φ(t) (1 − c₁/(n w)) + c₂        (Lemma 2.9)
    E(ψ(t+1) | F_t) ≤ ψ(t) (1 − c₁/n) + c₂            (Lemma 2.10)

Because only two event families change the configuration (adopt and
lighten, cf. :mod:`repro.engine.aggregate`), the conditional
expectation can be computed *exactly* in O(k²) from the counts — no
Monte Carlo needed.  These functions let tests and notebooks verify
the contraction inequality on real configurations.
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable
from .potentials import phi, psi


def _phi_from_q(q: np.ndarray) -> float:
    k = q.size
    return float(2.0 * k * np.dot(q, q) - 2.0 * q.sum() ** 2)


def exact_phi_drift(
    dark_counts: np.ndarray,
    light_counts: np.ndarray,
    weights: WeightTable,
) -> float:
    """Exact ``E(φ(t+1) | ξ(t)) − φ(t)`` for the Diversification chain.

    Enumerates every configuration-changing event with its probability:

    * adopt into colour ``j`` (prob ``a·A_j / (n(n−1))``): ``A_j += 1``;
    * lighten colour ``i`` (prob ``A_i(A_i−1)/(w_i n(n−1))``):
      ``A_i −= 1``.
    """
    dark = np.asarray(dark_counts, dtype=np.float64)
    light = np.asarray(light_counts, dtype=np.float64)
    warray = weights.as_array()
    n = dark.sum() + light.sum()
    if n < 2:
        raise ValueError("need at least two agents")
    denom = n * (n - 1)
    q = dark / warray
    base = _phi_from_q(q)
    a_total = light.sum()
    drift = 0.0
    for j in range(weights.k):
        p_adopt = a_total * dark[j] / denom
        if p_adopt > 0:
            q_next = q.copy()
            q_next[j] += 1.0 / warray[j]
            drift += p_adopt * (_phi_from_q(q_next) - base)
        p_lighten = dark[j] * (dark[j] - 1) / (warray[j] * denom)
        if p_lighten > 0:
            q_next = q.copy()
            q_next[j] -= 1.0 / warray[j]
            drift += p_lighten * (_phi_from_q(q_next) - base)
    return float(drift)


def exact_psi_drift(
    dark_counts: np.ndarray,
    light_counts: np.ndarray,
    weights: WeightTable,
) -> float:
    """Exact ``E(ψ(t+1) | ξ(t)) − ψ(t)``.

    ψ depends on the light counts: an adopt event removes one light
    agent of colour ``i`` (``a_i −= 1``); a lighten event adds one
    (``a_i += 1``).  Adopt probabilities factor over the source colour
    ``i`` (prob ``a_i·A / (n(n−1))``).
    """
    dark = np.asarray(dark_counts, dtype=np.float64)
    light = np.asarray(light_counts, dtype=np.float64)
    warray = weights.as_array()
    n = dark.sum() + light.sum()
    if n < 2:
        raise ValueError("need at least two agents")
    denom = n * (n - 1)
    q = light / warray
    base = _phi_from_q(q)
    dark_total = dark.sum()
    drift = 0.0
    for i in range(weights.k):
        p_adopt_from = light[i] * dark_total / denom
        if p_adopt_from > 0:
            q_next = q.copy()
            q_next[i] -= 1.0 / warray[i]
            drift += p_adopt_from * (_phi_from_q(q_next) - base)
        p_lighten = dark[i] * (dark[i] - 1) / (warray[i] * denom)
        if p_lighten > 0:
            q_next = q.copy()
            q_next[i] += 1.0 / warray[i]
            drift += p_lighten * (_phi_from_q(q_next) - base)
    return float(drift)


def verify_phi_contraction(
    dark_counts: np.ndarray,
    light_counts: np.ndarray,
    weights: WeightTable,
    *,
    c1: float = 0.5,
    c2: float = 10.0,
) -> bool:
    """Check Lemma 2.9(1) at one configuration with explicit constants:

        E(φ') ≤ φ (1 − c₁/(n w)) + c₂
    """
    n = float(np.sum(dark_counts) + np.sum(light_counts))
    value = phi(np.asarray(dark_counts), weights)
    expected = value + exact_phi_drift(dark_counts, light_counts, weights)
    bound = value * (1.0 - c1 / (n * weights.total)) + c2
    return expected <= bound + 1e-9


def verify_psi_contraction(
    dark_counts: np.ndarray,
    light_counts: np.ndarray,
    weights: WeightTable,
    *,
    c1: float = 0.5,
    c2: float = 10.0,
) -> bool:
    """Check Lemma 2.10(1) at one configuration (requires the Phase-1
    precondition that the configuration is near the E region and
    ``ψ ≥ max(16φ, k²)`` for the paper's constants to apply)."""
    n = float(np.sum(dark_counts) + np.sum(light_counts))
    value = psi(np.asarray(light_counts), weights)
    expected = value + exact_psi_drift(dark_counts, light_counts, weights)
    bound = value * (1.0 - c1 / n) + c2
    return expected <= bound + 1e-9
