"""The three potential functions of the paper's analysis.

Phase 2 tracks the imbalance of dark and light counts via

    φ(t) = Σ_i Σ_j (A_i/w_i − A_j/w_j)²       (Eq. (10))
    ψ(t) = Σ_i Σ_j (a_i/w_i − a_j/w_j)²       (Eq. (11))

and Phase 3 tracks the dark/light mass split via

    σ²(t) = (A(t)/w − a(t))²                  (Lemma 2.14)

Both φ and ψ admit the closed form ``2k·Σ q_i² − 2(Σ q_i)²`` with
``q_i = A_i/w_i`` (used inside the paper's own proofs), which is what we
compute.  The expected post-convergence plateaus are ``O(w n log n)``
for φ and ψ (Thm 2.8) and ``O(n^{3/2} √log n)`` for σ² (Lemma 2.14).
"""

from __future__ import annotations

import numpy as np

from ..core.weights import WeightTable


def _normalised(counts: np.ndarray, weights: WeightTable) -> np.ndarray:
    values = np.asarray(counts, dtype=np.float64)
    return values / weights.as_array()


def phi(dark_counts: np.ndarray, weights: WeightTable) -> float:
    """Dark-count imbalance potential φ (Eq. (10))."""
    q = _normalised(dark_counts, weights)
    k = q.size
    return float(2.0 * k * np.dot(q, q) - 2.0 * q.sum() ** 2)


def psi(light_counts: np.ndarray, weights: WeightTable) -> float:
    """Light-count imbalance potential ψ (Eq. (11))."""
    return phi(light_counts, weights)


def sigma_squared(
    dark_total: float, light_total: float, weights: WeightTable
) -> float:
    """Phase-3 potential σ² = (A/w − a)² (Lemma 2.14)."""
    return float((dark_total / weights.total - light_total) ** 2)


def pairwise_imbalance(counts: np.ndarray, weights: WeightTable) -> float:
    """Direct O(k²) evaluation of Σ_i Σ_j (c_i/w_i − c_j/w_j)².

    Slower than :func:`phi`; exists as an independent cross-check used
    by the test suite.
    """
    q = _normalised(counts, weights)
    diffs = q[:, None] - q[None, :]
    return float((diffs**2).sum())


def phi_plateau(n: int, weights: WeightTable, constant: float = 1.0) -> float:
    """Theoretical plateau ``C · w n log n`` for φ and ψ (Thm 2.8)."""
    if n < 2:
        raise ValueError("need n >= 2")
    return constant * weights.total * n * float(np.log(n))

def sigma_plateau(n: int, constant: float = 1.0) -> float:
    """Theoretical plateau ``C · n^{3/2} √log n`` for σ² (Lemma 2.14)."""
    if n < 2:
        raise ValueError("need n >= 2")
    return constant * n**1.5 * float(np.sqrt(np.log(n)))


def theorem_1_3_statistic(
    colour_counts: np.ndarray, weights: WeightTable
) -> float:
    """The Theorem 1.3 double sum Σ_i Σ_j (C_i/w_i − C_j/w_j)².

    The theorem asserts this is ``O(w n log n)`` for all ``t`` in
    ``[T, n^8]`` with ``T = O(w² n log n)``.
    """
    return phi(colour_counts, weights)
