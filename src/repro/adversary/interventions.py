"""Adversarial structural changes (Sec 1 and Sec 1.2 of the paper).

The paper claims Diversification is robust to an adversary that *adds*
agents or colours, and that sustainability survives as long as new
colours arrive dark and recolourings never erase the last dark
representative of a colour.  Interventions apply to every engine:

* the agent-level :class:`~repro.engine.simulator.Simulation` (between
  ``run`` calls), via the per-agent :meth:`Intervention.apply_to_simulation`;
* the count-API engines — the scalar
  :class:`~repro.engine.aggregate.AggregateSimulation`, the fused
  :class:`~repro.engine.batched.BatchedAggregateSimulation` and the
  vectorised :class:`~repro.engine.array_engine.ArraySimulation` — via
  :meth:`Intervention.apply_to_aggregate`, which calls their shared
  ``add_agents`` / ``add_colour`` / ``recolour`` interface.  On the
  batched engines one intervention applies to every replication at
  once, matching the scalar loop's shared deterministic schedule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.state import DARK, LIGHT, AgentState
from ..engine.simulator import Simulation


class Intervention(abc.ABC):
    """A structural change applied instantaneously at a chosen step."""

    @abc.abstractmethod
    def apply_to_simulation(self, simulation: Simulation) -> None:
        """Apply against the agent-level engine."""

    @abc.abstractmethod
    def apply_to_aggregate(self, aggregate) -> None:
        """Apply against a count-API engine (aggregate, batched or
        array)."""

    def apply(self, engine) -> None:
        """Dispatch on the engine's interface: the agent-level
        :class:`~repro.engine.simulator.Simulation` mutates its
        population; anything exposing the count-level ``add_agents`` /
        ``add_colour`` / ``recolour`` API (aggregate, batched, array —
        or wrappers of them) takes the aggregate path."""
        if isinstance(engine, Simulation):
            self.apply_to_simulation(engine)
        elif hasattr(engine, "add_colour") and hasattr(engine, "recolour"):
            self.apply_to_aggregate(engine)
        else:
            raise TypeError(f"unsupported engine {type(engine).__name__}")


@dataclass(frozen=True)
class AddAgents(Intervention):
    """Inject ``count`` fresh agents of an existing colour."""

    colour: int
    count: int
    dark: bool = True

    def apply_to_simulation(self, simulation: Simulation) -> None:
        shade = DARK if self.dark else LIGHT
        for _ in range(self.count):
            simulation.population.add_agent(AgentState(self.colour, shade))

    def apply_to_aggregate(self, aggregate) -> None:
        aggregate.add_agents(self.colour, self.count, dark=self.dark)


@dataclass(frozen=True)
class AddColour(Intervention):
    """Introduce a brand-new colour supported by ``count`` agents.

    The paper requires new colours to be *dark* initially for
    sustainability to carry over; light insertion is allowed here so
    that experiments can demonstrate why the requirement matters.
    """

    weight: float
    count: int
    dark: bool = True

    def apply_to_simulation(self, simulation: Simulation) -> None:
        weights = getattr(simulation.protocol, "weights", None)
        if weights is None:
            raise TypeError(
                f"protocol {simulation.protocol.name!r} has no weight table"
            )
        colour = weights.add_colour(self.weight)
        shade = DARK if self.dark else LIGHT
        for _ in range(self.count):
            simulation.population.add_agent(AgentState(colour, shade))

    def apply_to_aggregate(self, aggregate) -> None:
        aggregate.add_colour(self.weight, self.count, dark=self.dark)


@dataclass(frozen=True)
class RecolourColour(Intervention):
    """Repaint every agent of ``source`` colour as ``target`` — the
    paper's "an external agent recolours all red agents blue" example,
    which effectively removes a colour from the system."""

    source: int
    target: int

    def apply_to_simulation(self, simulation: Simulation) -> None:
        population = simulation.population
        for agent in range(population.n):
            state = population.state_of(agent)
            if state.colour == self.source:
                population.set_state(
                    agent, AgentState(self.target, state.shade)
                )

    def apply_to_aggregate(self, aggregate) -> None:
        aggregate.recolour(self.source, self.target)
