"""Timed intervention schedules and the segmented runner.

Interventions must not interrupt an engine's inner block loop, so the
runner splits the horizon into segments at intervention times (and at
recording times) and advances the engine segment by segment.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .interventions import Intervention


class InterventionSchedule:
    """Sorted multiset of ``(time_step, intervention)`` pairs."""

    def __init__(
        self, entries: Iterable[tuple[int, Intervention]] = ()
    ):
        self._entries: list[tuple[int, Intervention]] = sorted(
            ((int(t), iv) for t, iv in entries), key=lambda pair: pair[0]
        )
        if any(t < 0 for t, _ in self._entries):
            raise ValueError("intervention times must be non-negative")

    def add(self, time_step: int, intervention: Intervention) -> None:
        """Insert one more intervention, keeping order."""
        if time_step < 0:
            raise ValueError("intervention times must be non-negative")
        self._entries.append((int(time_step), intervention))
        self._entries.sort(key=lambda pair: pair[0])

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Sequence[tuple[int, Intervention]]:
        """The ordered (time, intervention) pairs."""
        return tuple(self._entries)

    def pending_after(self, time_step: int) -> list[tuple[int, Intervention]]:
        """Entries strictly later than ``time_step``."""
        return [(t, iv) for t, iv in self._entries if t > time_step]


def run_with_interventions(
    engine,
    total_steps: int,
    schedule: InterventionSchedule | None = None,
    *,
    recorder=None,
    resume: bool = False,
    final_snapshot: bool = True,
) -> None:
    """Advance ``engine`` by ``total_steps``, applying interventions and
    recording snapshots at their scheduled times.

    ``engine`` may be either simulation engine (anything exposing
    ``time``, ``run(steps)`` and the three count methods).  ``recorder``
    is an optional :class:`~repro.experiments.recorder.CountRecorder`.

    ``resume=True`` continues a checkpointed run: interventions and
    the initial snapshot at exactly the engine's current time are
    skipped — the pre-checkpoint segment already applied and recorded
    them — so the resumed trajectory matches the uninterrupted one.

    ``final_snapshot=False`` suppresses the unconditional horizon
    snapshot.  Pass it when this horizon is a *checkpoint*, not the
    run's true end: the resumed segment will carry the series on, and
    an off-interval snapshot at the split point would make the record
    differ from the uninterrupted run's.
    """
    if total_steps < 0:
        raise ValueError("total_steps must be non-negative")
    start = engine.time
    horizon = start + total_steps
    pending = list(schedule.entries()) if schedule is not None else []
    earliest_ok = (lambda t: t > start) if resume else (lambda t: t >= start)
    pending = [(t, iv) for t, iv in pending if earliest_ok(t) and t <= horizon]
    if recorder is not None and not resume and engine.time == start:
        recorder.record_from(engine)
    index = 0
    while engine.time < horizon:
        next_stop = horizon
        if index < len(pending):
            next_stop = min(next_stop, pending[index][0])
        if recorder is not None:
            next_stop = min(next_stop, recorder.next_time_after(engine.time))
        if next_stop > engine.time:
            engine.run(next_stop - engine.time)
        while index < len(pending) and pending[index][0] <= engine.time:
            pending[index][1].apply(engine)
            index += 1
        if recorder is not None and recorder.is_due(engine.time):
            recorder.record_from(engine)
    # The horizon snapshot is unconditional: without it, an interval
    # that does not divide ``total_steps`` would leave the record's
    # final row up to interval-1 steps short of the requested state.
    if (
        recorder is not None
        and final_snapshot
        and recorder.last_time() != engine.time
    ):
        recorder.record_from(engine)
