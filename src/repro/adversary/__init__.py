"""Adversarial structural changes: agent injection, colour addition,
and colour removal via recolouring (Sec 1 robustness claims)."""

from .interventions import AddAgents, AddColour, Intervention, RecolourColour
from .schedule import InterventionSchedule, run_with_interventions

__all__ = [
    "Intervention",
    "AddAgents",
    "AddColour",
    "RecolourColour",
    "InterventionSchedule",
    "run_with_interventions",
]
