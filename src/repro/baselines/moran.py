"""The Moran process (Sec 1.1, refs [18, 23]).

A birth-death spreading process: at each step one agent is chosen to
reproduce with probability proportional to the fitness of its colour,
and a uniformly random agent adopts that colour.  Like the Voter model
it fixates on a single colour, so it serves as another consensus
baseline; fitness plays the role weights play in Diversification, but
fitness advantages bias *which* colour wins rather than sustaining a
weighted mixture.

The process has a different scheduling structure (global
fitness-proportional selection), so it is implemented as a standalone
count-based dynamic rather than a :class:`~repro.core.protocol.Protocol`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..engine.rng import make_rng


class MoranProcess:
    """Count-based Moran process on the complete graph.

    Args:
        colour_counts: Initial number of agents per colour.
        fitness: Per-colour fitness values (default all 1 — neutral
            drift).
        rng: Seed or generator.
    """

    def __init__(
        self,
        colour_counts: Sequence[int],
        fitness: Sequence[float] | None = None,
        *,
        rng: int | np.random.Generator | None = None,
    ):
        self._counts = [int(c) for c in colour_counts]
        if any(c < 0 for c in self._counts):
            raise ValueError("counts must be non-negative")
        if sum(self._counts) < 2:
            raise ValueError("need at least two agents")
        if fitness is None:
            fitness = [1.0] * len(self._counts)
        self._fitness = [float(f) for f in fitness]
        if len(self._fitness) != len(self._counts):
            raise ValueError("fitness vector must match colour count")
        if any(f <= 0 for f in self._fitness):
            raise ValueError("fitness values must be positive")
        self.rng = make_rng(rng)
        self.time = 0

    @property
    def n(self) -> int:
        """Population size (constant)."""
        return sum(self._counts)

    @property
    def k(self) -> int:
        """Number of colour slots."""
        return len(self._counts)

    def colour_counts(self) -> np.ndarray:
        """Agents per colour."""
        return np.asarray(self._counts, dtype=np.int64)

    def has_fixated(self) -> bool:
        """True once a single colour holds the whole population."""
        return max(self._counts) == self.n

    def step(self) -> bool:
        """One birth-death event; True if the configuration changed."""
        self.time += 1
        rng = self.rng
        masses = [c * f for c, f in zip(self._counts, self._fitness)]
        total = sum(masses)
        pick = rng.random() * total
        acc = 0.0
        parent = len(masses) - 1
        for index, mass in enumerate(masses):
            acc += mass
            if pick < acc:
                parent = index
                break
        pick = rng.random() * self.n
        acc = 0.0
        dier = self.k - 1
        for index, count in enumerate(self._counts):
            acc += count
            if pick < acc:
                dier = index
                break
        if dier == parent:
            return False
        self._counts[dier] -= 1
        self._counts[parent] += 1
        return True

    def run(self, steps: int, *, stop_on_fixation: bool = True) -> int:
        """Run up to ``steps`` events; returns the number executed."""
        executed = 0
        while executed < steps:
            if stop_on_fixation and self.has_fixated():
                break
            self.step()
            executed += 1
        return executed

    def absorption_time(self, max_steps: int) -> int | None:
        """Steps until fixation, or None if ``max_steps`` elapsed."""
        executed = 0
        while not self.has_fixated():
            if executed >= max_steps:
                return None
            self.step()
            executed += 1
        return executed
