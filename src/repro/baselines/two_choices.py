"""The 2-Choices dynamic (Sec 1.1, refs [12-14, 16]).

The scheduled agent samples two agents; it adopts their colour only if
both agree.  A drift-amplifying consensus process: the plurality colour
wins quickly, eliminating diversity.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState


class TwoChoices(Protocol):
    """Adopt the sampled colour only when two samples agree."""

    name = "2-choices"
    arity = 2

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v1, v2 = sampled[0], sampled[1]
        if v1.colour == v2.colour and v1.colour != u.colour:
            return AgentState(v1.colour, DARK)
        return u
