"""The 3-Majority dynamic (Sec 1.1, refs [4, 6, 22]).

The scheduled agent samples two agents and considers the multiset of
its own colour plus the two sampled colours: if a majority exists it
adopts it, otherwise it picks one of the three uniformly at random.
Another fast consensus process used as an anti-diversity baseline.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState


class ThreeMajority(Protocol):
    """Majority of {own, sample, sample}; random among ties of three."""

    name = "3-majority"
    arity = 2

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        colours = (u.colour, sampled[0].colour, sampled[1].colour)
        # Majority exists iff at least two of the three agree.
        if colours[0] == colours[1] or colours[0] == colours[2]:
            winner = colours[0]
        elif colours[1] == colours[2]:
            winner = colours[1]
        else:
            winner = colours[int(rng.integers(0, 3))]
        if winner == u.colour:
            return u
        return AgentState(winner, DARK)
