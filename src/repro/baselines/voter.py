"""The Voter model — the canonical *consensus* dynamic (Sec 1.1).

Each scheduled agent adopts the colour of the agent it samples.  The
process reaches consensus (one colour) almost surely, destroying
diversity and sustainability; it is the natural antagonist for the
Diversification protocol in experiment E10.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState


class VoterModel(Protocol):
    """Adopt the sampled neighbour's colour unconditionally."""

    name = "voter"
    arity = 1

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        v = sampled[0]
        if v.colour == u.colour:
            return u
        return AgentState(v.colour, DARK)
