"""The anti-voter model (Sec 1.1, refs [1, 31]).

Two colours; the scheduled agent adopts the *opposite* of the sampled
agent's colour.  The process reaches a fluctuating equilibrium around
the 50/50 split and agents keep switching — an early precedent for
diversity and fairness, but limited to two colours and unweighted.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState


class AntiVoterModel(Protocol):
    """Adopt the opposite colour of the sampled neighbour (k = 2)."""

    name = "anti-voter"
    arity = 1

    def initial_state(self, colour: int) -> AgentState:
        if colour not in (0, 1):
            raise ValueError("the anti-voter model supports colours {0, 1}")
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        opposite = 1 - sampled[0].colour
        if opposite == u.colour:
            return u
        return AgentState(opposite, DARK)
