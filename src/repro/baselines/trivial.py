"""The "trivial" global-knowledge protocol the paper argues against
(Sec 1, second paragraph).

Each agent privately knows the full colour/weight table and, when
scheduled, redraws its colour proportionally to the weights with some
resampling probability.  This achieves the fair shares *in expectation*
but:

* it needs global knowledge (all colours and the normalisation
  constant ``w``), i.e. memory and communication that simple agents do
  not have;
* it is **not sustainable** — a colour's support is a Binomial sample
  and hits zero with positive probability every step;
* it is **not robust**: the table is a private snapshot, so colours
  added later are never adopted and removed colours keep being drawn
  (experiment E7/A3 demonstrates both failure modes).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState
from ..core.weights import WeightTable


class TrivialResampling(Protocol):
    """Redraw own colour ~ weights (private snapshot) when scheduled.

    Args:
        weights: Weight table *snapshotted at construction* — later
            additions to the live system table are deliberately not
            seen, modelling the robustness failure.
        resample_probability: Chance the scheduled agent redraws at all
            (1.0 = redraw every activation).
    """

    name = "trivial-resampling"
    arity = 1

    def __init__(self, weights: WeightTable, resample_probability: float = 1.0):
        if not 0.0 < resample_probability <= 1.0:
            raise ValueError("resample_probability must be in (0, 1]")
        self._snapshot = weights.copy()
        self._shares = self._snapshot.fair_shares()
        self._cumulative = np.cumsum(self._shares)
        self.resample_probability = float(resample_probability)

    @property
    def known_k(self) -> int:
        """Number of colours in the private snapshot."""
        return self._snapshot.k

    def cumulative_shares(self) -> np.ndarray:
        """Cumulative fair shares of the private snapshot — the redraw
        thresholds (shared with the vectorised kernel)."""
        return self._cumulative

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        if self.resample_probability < 1.0:
            if rng.random() >= self.resample_probability:
                return u
        pick = rng.random()
        colour = int(np.searchsorted(self._cumulative, pick, side="right"))
        colour = min(colour, self._snapshot.k - 1)
        if colour == u.colour:
            return u
        return AgentState(colour, DARK)
