"""SIS epidemic / contact-process baseline (Sec 1.1, refs [8, 24, 27]).

The paper situates consensus dynamics among "classic epidemic
processes".  In the SIS (susceptible-infected-susceptible) model an
infected agent recovers with probability ``recovery`` when scheduled,
and a susceptible agent becomes infected with probability
``transmission`` when it samples an infected agent.  Unlike
Diversification, the all-susceptible state is *absorbing*: the process
is the textbook example of a dynamic that is not sustainable — below
the epidemic threshold the "colour" (infection) dies out.

Colour convention: 0 = susceptible, 1 = infected.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.state import DARK, AgentState


class SISEpidemic(Protocol):
    """Pairwise SIS dynamics as a population protocol.

    Args:
        transmission: Infection probability on contact with an
            infected agent.
        recovery: Recovery probability per activation of an infected
            agent (recovery is spontaneous, checked before contact).
    """

    name = "sis-epidemic"
    arity = 1

    SUSCEPTIBLE = 0
    INFECTED = 1

    def __init__(self, transmission: float, recovery: float):
        if not 0.0 <= transmission <= 1.0:
            raise ValueError("transmission must be in [0, 1]")
        if not 0.0 <= recovery <= 1.0:
            raise ValueError("recovery must be in [0, 1]")
        self.transmission = float(transmission)
        self.recovery = float(recovery)

    @property
    def reproduction_ratio(self) -> float:
        """``transmission / recovery`` — the mean-field threshold is 1
        on the complete graph (contact-process folklore, refs [8, 24])."""
        if self.recovery == 0.0:
            return float("inf")
        return self.transmission / self.recovery

    def initial_state(self, colour: int) -> AgentState:
        if colour not in (self.SUSCEPTIBLE, self.INFECTED):
            raise ValueError("SIS states are 0 (susceptible), 1 (infected)")
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        if u.colour == self.INFECTED:
            if rng.random() < self.recovery:
                return AgentState(self.SUSCEPTIBLE, DARK)
            return u
        if sampled[0].colour == self.INFECTED:
            if rng.random() < self.transmission:
                return AgentState(self.INFECTED, DARK)
        return u


def infected_count(colour_counts: Sequence[int] | np.ndarray) -> int:
    """Number of infected agents in a (2,)-shaped count vector."""
    counts = np.asarray(colour_counts)
    if counts.shape != (2,):
        raise ValueError("SIS count vectors have exactly two entries")
    return int(counts[1])
