"""Uniform k-partition helpers (Sec 1.1, Yasumi et al. [32-34]).

With all weights equal to 1 the Diversification protocol becomes a
protocol for the *uniform partition* problem — the paper notes the
lightening coin degenerates to probability 1, making the rule
deterministic.  The closest prior work (Yasumi et al.) studies this
problem under deterministic/adversarial schedulers with a focus on
state counts; reproducing their exact constructions is out of scope
(different scheduling model), so this module provides:

* :func:`uniform_partition_protocol` — the unit-weight Diversification
  instance;
* :class:`RandomRecolouring` — a strawman that relabels uniformly using
  global knowledge of ``k`` (uniform in expectation, not sustainable);
* :func:`partition_imbalance` — the max-min imbalance metric used by
  the equi-partition literature.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.diversification import Diversification
from ..core.protocol import Protocol
from ..core.state import DARK, AgentState
from ..core.weights import WeightTable


def uniform_partition_protocol(k: int) -> Diversification:
    """Diversification with unit weights: solves uniform k-partition.

    Every colour targets the share ``1/k``; the lightening coin has
    probability ``1/w_i = 1``, so the transition rule is deterministic
    (cf. the remark after Eq. (2) in the paper).
    """
    return Diversification(WeightTable.uniform(k))


class RandomRecolouring(Protocol):
    """Strawman: relabel to a uniformly random colour on same-colour
    meetings.  Requires knowing ``k`` (global knowledge) and lets the
    last supporter of a colour switch away, so it is not sustainable.
    """

    name = "random-recolouring"
    arity = 1

    def __init__(self, k: int):
        if k < 2:
            raise ValueError("need at least two colours")
        self.k = k

    def initial_state(self, colour: int) -> AgentState:
        return AgentState(colour, DARK)

    def transition(
        self,
        u: AgentState,
        sampled: Sequence[AgentState],
        rng: np.random.Generator,
    ) -> AgentState:
        if sampled[0].colour == u.colour:
            return AgentState(int(rng.integers(0, self.k)), DARK)
        return u


def partition_imbalance(colour_counts: Sequence[int] | np.ndarray) -> int:
    """Max minus min colour count — the equi-partition quality metric."""
    counts = np.asarray(colour_counts)
    return int(counts.max() - counts.min())
