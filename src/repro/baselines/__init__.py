"""Baseline dynamics from the related-work section (Sec 1.1): consensus
processes that destroy diversity, the anti-voter precedent, averaging
processes, and the global-knowledge strawman."""

from .anti_voter import AntiVoterModel
from .averaging import AveragingProcess, MatchingDiffusion
from .epidemic import SISEpidemic, infected_count
from .moran import MoranProcess
from .three_majority import ThreeMajority
from .trivial import TrivialResampling
from .two_choices import TwoChoices
from .uniform_partition import (
    RandomRecolouring,
    partition_imbalance,
    uniform_partition_protocol,
)
from .voter import VoterModel

__all__ = [
    "VoterModel",
    "AntiVoterModel",
    "TwoChoices",
    "ThreeMajority",
    "MoranProcess",
    "SISEpidemic",
    "infected_count",
    "AveragingProcess",
    "MatchingDiffusion",
    "TrivialResampling",
    "RandomRecolouring",
    "uniform_partition_protocol",
    "partition_imbalance",
]
