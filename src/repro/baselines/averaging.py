"""Averaging / load-balancing processes (Sec 1.1, refs [2, 25, 29]).

Agents hold real values; on an interaction both (or one) move to the
average.  These dynamics achieve *value* consensus rather than colour
diversity, and are included to contrast convergence behaviour and to
reproduce the discrepancy-over-time shape discussed for the diffusion
load-balancing model of [29] and the noisy averaging protocol of [25].
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..engine.rng import make_rng


class AveragingProcess:
    """Pairwise averaging of real-valued opinions.

    At each step two distinct agents are sampled u.a.r. and both adopt
    the mean of their values, optionally corrupted by additive noise of
    scale ``noise`` (the noisy-communication model of [25]).
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        noise: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ):
        self.values = np.asarray(values, dtype=np.float64).copy()
        if self.values.ndim != 1 or self.values.size < 2:
            raise ValueError("need a 1-D vector of at least two values")
        if noise < 0:
            raise ValueError("noise scale must be non-negative")
        self.noise = float(noise)
        self.rng = make_rng(rng)
        self.time = 0

    @property
    def n(self) -> int:
        """Number of agents."""
        return int(self.values.size)

    def mean(self) -> float:
        """Current mean opinion (invariant when noise == 0)."""
        return float(self.values.mean())

    def discrepancy(self) -> float:
        """Max minus min opinion — the load-balancing gap of [29]."""
        return float(self.values.max() - self.values.min())

    def step(self) -> None:
        """One pairwise averaging interaction."""
        self.time += 1
        rng = self.rng
        u = int(rng.integers(0, self.n))
        v = int(rng.integers(0, self.n - 1))
        if v >= u:
            v += 1
        received_u = self.values[v]
        received_v = self.values[u]
        if self.noise:
            received_u += rng.normal(0.0, self.noise)
            received_v += rng.normal(0.0, self.noise)
        self.values[u] = (self.values[u] + received_u) / 2.0
        self.values[v] = (self.values[v] + received_v) / 2.0

    def run(self, steps: int) -> "AveragingProcess":
        """Execute ``steps`` interactions; returns self."""
        for _ in range(steps):
            self.step()
        return self


class MatchingDiffusion:
    """Round-based diffusion load balancing in the matching model [29].

    In every round a random perfect matching (or near-perfect for odd
    ``n``) is drawn and matched pairs average their loads.
    """

    def __init__(
        self,
        values: Sequence[float],
        *,
        rng: int | np.random.Generator | None = None,
    ):
        self.values = np.asarray(values, dtype=np.float64).copy()
        if self.values.ndim != 1 or self.values.size < 2:
            raise ValueError("need a 1-D vector of at least two values")
        self.rng = make_rng(rng)
        self.rounds = 0

    @property
    def n(self) -> int:
        """Number of agents."""
        return int(self.values.size)

    def discrepancy(self) -> float:
        """Max minus min load."""
        return float(self.values.max() - self.values.min())

    def round(self) -> None:
        """One matching round: shuffle, pair consecutive, average."""
        self.rounds += 1
        order = self.rng.permutation(self.n)
        pairs = (self.n // 2) * 2
        left = order[0:pairs:2]
        right = order[1:pairs:2]
        means = (self.values[left] + self.values[right]) / 2.0
        self.values[left] = means
        self.values[right] = means

    def run(self, rounds: int) -> "MatchingDiffusion":
        """Execute ``rounds`` matching rounds; returns self."""
        for _ in range(rounds):
            self.round()
        return self
