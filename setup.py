"""Legacy shim: lets ``pip install -e .`` work in offline environments
where the ``wheel`` package is unavailable (metadata in pyproject.toml)."""

from setuptools import setup

setup()
