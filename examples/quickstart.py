"""Quickstart: run the Diversification protocol and check it is *good*.

A population of 1,000 agents with three colours of weights 1, 2, 3
starts in the worst configuration (almost everyone holds colour 0).
After O(w² n log n) interactions the colour distribution locks onto
the fair shares w_i/w = 1/6, 2/6, 3/6 and never loses a colour.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import WeightTable, assess_goodness, run_aggregate
from repro.experiments.report import format_table
from repro.experiments.runner import run_diversification_agent


def main() -> None:
    weights = WeightTable([1.0, 2.0, 3.0])
    n = 1_000
    steps = 400 * n  # plenty: ~2 x the convergence bound at this size

    record = run_aggregate(
        weights, n=n, steps=steps, start="worst", seed=7
    )

    final = record.final_colour_counts
    shares = final / final.sum()
    fair = weights.fair_shares()
    rows = [
        [colour, weights.weight(colour), int(final[colour]),
         f"{shares[colour]:.3f}", f"{fair[colour]:.3f}"]
        for colour in range(weights.k)
    ]
    print(format_table(
        ["colour", "weight", "count", "share", "fair share"], rows,
        title=f"Diversification after {steps:,} interactions (n={n})",
    ))

    # Evaluate Def 1.1 on the last quarter of the recorded snapshots.
    tail = max(1, len(record.times) // 4)
    report = assess_goodness(record.colour_counts[-tail:], weights)
    print()
    print(f"diversity error : {report.diversity_error:.4f} "
          f"(bound {report.diversity_bound:.4f})")
    print(f"diverse         : {report.diverse}")
    print(f"sustainable     : {report.sustainable}")
    print(f"good            : {report.good}")

    # One run is a sample; the paper's claims are about distributions
    # over runs.  replications=R fuses R independent chains into one
    # vectorised batched engine (a single (R, 2k) NumPy state matrix),
    # so repeating the measurement costs far less than R scalar runs.
    batch = run_aggregate(
        weights, n=n, steps=steps, start="worst", seed=7,
        replications=32, batched=True,
    )
    finals = batch.final_colour_counts
    print()
    print(f"32 batched replications: mean counts "
          f"{np.round(finals.mean(axis=0), 1)}, "
          f"std {np.round(finals.std(axis=0), 1)}")

    # The aggregate engine tracks counts only.  Agent-level runs — the
    # paper's actual execution model, needed for explicit topologies,
    # per-agent fairness tracking and the baseline dynamics — default
    # to the vectorised ArraySimulation, which holds the population as
    # (colour, shade) arrays and applies transition kernels to
    # conflict-free blocks of steps.  Protocols without a kernel, runs
    # with interventions, and engine="scalar" use the per-step
    # reference engine instead.
    record = run_diversification_agent(
        weights, n, steps, start="worst", seed=7,
    )
    engine = type(record.extras["simulation"]).__name__
    print()
    print(f"agent-level run ({engine}): final counts "
          f"{record.final_colour_counts}")


if __name__ == "__main__":
    main()
