"""Fairness, agent by agent (Def 1.1(2), Thm 2.12).

Diversity says the *population* holds the right colour proportions;
fairness says something stronger: every *individual* agent cycles
through all colours, spending a w_i/w fraction of its life on each.
In the task-allocation reading: no ant is stuck on patrol duty forever
— everyone forages, nurses, and patrols in proportion to the colony's
needs.

We track one population of 150 agents for 8,000 parallel rounds and
report the distribution, across agents, of time spent per colour, plus
the dark/light split predicted by the equilibrium chain of Sec 2.4.

Run:  python examples/fairness_tracking.py
"""

import numpy as np

from repro import (
    Diversification,
    OccupancyTracker,
    Population,
    Simulation,
    WeightTable,
)
from repro.analysis.markov import theoretical_stationary
from repro.experiments.report import format_table
from repro.experiments.workloads import colours_from_counts, proportional_counts


def main() -> None:
    weights = WeightTable([1.0, 2.0, 3.0])
    n = 150
    rounds = 8_000

    protocol = Diversification(weights)
    population = Population.from_colours(
        colours_from_counts(proportional_counts(n, weights)), protocol,
        k=weights.k,
    )
    tracker = OccupancyTracker()
    simulation = Simulation(
        protocol, population, rng=42, observers=[tracker]
    )
    print(f"running {rounds:,} parallel rounds ({rounds * n:,} steps)...")
    simulation.run(rounds * n)

    occupancy = tracker.occupancy_fractions()  # (n, k)
    fair = weights.fair_shares()
    rows = []
    for colour in range(weights.k):
        column = occupancy[:, colour]
        rows.append(
            [
                colour,
                f"{fair[colour]:.3f}",
                f"{column.mean():.3f}",
                f"{column.min():.3f}",
                f"{column.max():.3f}",
                f"{column.std():.3f}",
            ]
        )
    print()
    print(format_table(
        ["colour", "fair share w_i/w", "mean occupancy", "min agent",
         "max agent", "std"],
        rows,
        title="time each agent spent per colour (across all 150 agents)",
    ))

    # Dark/light split vs the equilibrium chain stationary distribution.
    shade = tracker.shade_occupancy_fractions()  # (n, k, 2)
    pi = theoretical_stationary(weights)
    rows = []
    for colour in range(weights.k):
        rows.append(
            [
                colour,
                f"{shade[:, colour, 1].mean():.3f}",
                f"{pi[colour]:.3f}",
                f"{shade[:, colour, 0].mean():.3f}",
                f"{pi[weights.k + colour]:.3f}",
            ]
        )
    print()
    print(format_table(
        ["colour", "dark time (measured)", "π(D_i)",
         "light time (measured)", "π(L_i)"],
        rows,
        title="dark/light split vs the Sec 2.4 equilibrium chain",
    ))

    worst = float(np.abs(occupancy - fair[None, :]).max())
    print(f"\nworst per-agent occupancy deviation: {worst:.4f}")
    print("every agent lives every colour — fairness, not just diversity")


if __name__ == "__main__":
    main()
