"""Uniform partition and the derandomised protocol (Sec 1.2).

Part 1 — with unit weights the Diversification protocol solves the
uniform k-partition problem *deterministically* (the lightening coin
has probability 1): we watch the max-min imbalance shrink.

Part 2 — the derandomised multi-shade variant (integer weights,
⌈log2(1+w_i)⌉ extra bits) reaches the same weighted shares without a
single coin flip.  Its analysis is an open problem (Sec 3); here it
matches the randomised protocol empirically.

Run:  python examples/derandomised_partition.py
"""

import numpy as np

from repro import (
    DerandomisedDiversification,
    Diversification,
    Population,
    Simulation,
    WeightTable,
)
from repro.baselines import partition_imbalance, uniform_partition_protocol
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import colours_from_counts, worst_case_counts


def uniform_partition_demo(n: int = 400, k: int = 4) -> None:
    protocol = uniform_partition_protocol(k)
    population = Population.from_colours(
        colours_from_counts(worst_case_counts(n, k)), protocol, k=k
    )
    simulation = Simulation(protocol, population, rng=1)
    times, imbalances = [], []
    for _ in range(50):
        simulation.run(20 * n)
        times.append(simulation.time)
        imbalances.append(float(partition_imbalance(
            population.colour_counts()
        )))
    print(format_series(
        f"uniform {k}-partition: max-min imbalance over time "
        f"(start: {n - k + 1} vs 1)",
        times, imbalances,
    ))
    print(f"final counts: {population.colour_counts().tolist()} "
          f"(perfect = {n // k} each)\n")


def derandomised_demo(n: int = 400) -> None:
    weights_integer = WeightTable([1.0, 2.0, 3.0])
    rows = []
    for name, protocol in (
        ("randomised", Diversification(weights_integer.copy())),
        ("derandomised", DerandomisedDiversification(
            weights_integer.copy()
        )),
    ):
        population = Population.from_colours(
            colours_from_counts(worst_case_counts(n, 3)), protocol, k=3
        )
        Simulation(protocol, population, rng=5).run(2_500 * n)
        counts = population.colour_counts().astype(float)
        shares = counts / counts.sum()
        error = float(
            np.abs(shares - weights_integer.fair_shares()).max()
        )
        rows.append(
            [name, ", ".join(f"{s:.3f}" for s in shares),
             f"{error:.4f}"]
        )
    print(format_table(
        ["protocol", "final shares (target 0.167, 0.333, 0.500)",
         "max error"],
        rows,
        title="randomised vs derandomised Diversification (weights 1,2,3)",
    ))


def main() -> None:
    uniform_partition_demo()
    derandomised_demo()


if __name__ == "__main__":
    main()
