"""Topology comparison — the future-work direction of Sec 3.

The paper analyses the complete graph; what happens on sparse
interaction graphs?  We run the same protocol, same weights, same
horizon on four topologies and compare the stabilised diversity error
and colour survival.

Run:  python examples/topology_comparison.py
"""

import numpy as np

from repro import Diversification, MinCountTracker, Population, Simulation, WeightTable
from repro.experiments.report import format_table
from repro.experiments.workloads import colours_from_counts, worst_case_counts
from repro.topology import CompleteGraph, CycleGraph, TorusGrid, random_regular


def main() -> None:
    n = 256  # 16 x 16 torus
    weights = WeightTable([1.0, 2.0, 3.0])
    fair = weights.fair_shares()
    topologies = [
        ("complete", CompleteGraph(n)),
        ("random-regular-8", random_regular(n, 8, seed=0)),
        ("torus 16x16", TorusGrid(16, 16)),
        ("cycle", CycleGraph(n)),
    ]
    rows = []
    for name, topology in topologies:
        local = weights.copy()
        protocol = Diversification(local)
        population = Population.from_colours(
            colours_from_counts(worst_case_counts(n, 3)), protocol, k=3
        )
        tracker = MinCountTracker()
        simulation = Simulation(
            protocol, population, topology=topology, rng=3,
            observers=[tracker],
        )
        # Average the error over the final stretch of a long run.
        simulation.run(2_000 * n)
        errors = []
        for _ in range(20):
            simulation.run(50 * n)
            shares = population.colour_counts() / n
            errors.append(float(np.abs(shares - fair).max()))
        rows.append(
            [
                name,
                topology.degree(0),
                f"{np.mean(errors):.4f}",
                f"{np.max(errors):.4f}",
                int(tracker.min_colour_counts.min()),
            ]
        )
    print(format_table(
        ["topology", "degree", "mean error", "max error",
         "min colour count"],
        rows,
        title=(
            f"Diversification on sparse graphs (n={n}, weights 1,2,3, "
            "same horizon)"
        ),
    ))
    print()
    print("Expected shape: expander-like graphs track the complete graph;")
    print("the cycle mixes slowly and carries a larger error.  The")
    print("sustainability invariant (min count >= 1) is topology-free.")


if __name__ == "__main__":
    main()
