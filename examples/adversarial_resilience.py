"""Adversarial resilience — Sec 1's robustness claims, narrated.

Compares how the Diversification protocol and the "trivial"
global-knowledge resampler (the paper's strawman) cope with an
adversary that adds a brand-new colour mid-run.  Diversification picks
the newcomer up automatically; the trivial protocol is structurally
blind to it because every agent carries a frozen private weight table.

Run:  python examples/adversarial_resilience.py
"""

import numpy as np

from repro import Diversification, Population, Simulation, WeightTable
from repro.baselines import TrivialResampling
from repro.core.state import dark
from repro.experiments.report import format_table
from repro.experiments.workloads import colours_from_counts, uniform_counts


def run_with_new_colour(protocol_name: str, n: int = 600) -> dict:
    """Run a protocol, inject a new colour at mid-time, report shares."""
    weights = WeightTable([1.0, 1.0])
    if protocol_name == "diversification":
        protocol = Diversification(weights)
    else:
        # The trivial protocol snapshots the table at construction —
        # exactly the robustness failure this example demonstrates.
        protocol = TrivialResampling(weights)
    population = Population.from_colours(
        colours_from_counts(uniform_counts(n, weights.k)), protocol,
        k=weights.k,
    )
    simulation = Simulation(protocol, population, rng=99)

    simulation.run(300 * n)  # settle
    # The adversary registers a new colour in the *system* table and
    # drops in one dark supporter.  Diversification shares the live
    # table, so it sees the newcomer; the trivial protocol's private
    # snapshot does not.
    colour = weights.add_colour(2.0)
    population.add_agent(dark(colour))
    simulation.run(2_000 * n)  # give the newcomer ample time

    counts = population.colour_counts().astype(float)
    shares = counts / counts.sum()
    fair = weights.fair_shares()
    return {
        "protocol": protocol_name,
        "shares": shares,
        "fair": fair,
        "newcomer_share": float(shares[2]),
        "newcomer_target": float(fair[2]),
    }


def main() -> None:
    print("An adversary introduces a brand-new colour (weight 2) with a")
    print("single dark supporter, mid-run.  Target share: 2/4 = 0.5.\n")

    rows = []
    for name in ("diversification", "trivial-resampling"):
        result = run_with_new_colour(name)
        rows.append(
            [
                result["protocol"],
                ", ".join(f"{s:.3f}" for s in result["shares"]),
                f"{result['newcomer_share']:.3f}",
                f"{result['newcomer_target']:.3f}",
                "yes" if abs(
                    result["newcomer_share"] - result["newcomer_target"]
                ) < 0.1 else "NO",
            ]
        )
    print(format_table(
        ["protocol", "final shares (c0, c1, new)", "newcomer share",
         "target", "absorbed?"],
        rows,
    ))
    print()
    print("Diversification needs no notification: agents adopt the new")
    print("colour simply by observing it.  The trivial resampler keeps")
    print("drawing from its frozen private table and never adopts the")
    print("newcomer — the robustness failure the paper describes.")


if __name__ == "__main__":
    main()
