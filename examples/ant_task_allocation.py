"""Ant-colony task allocation — the paper's motivating scenario (Sec 1).

A colony of 1,200 ants allocates itself across four tasks with
different demands:

    foraging     demand 4   (most important: food!)
    brood care   demand 3
    nest repair  demand 2
    patrolling   demand 1

Each ant follows the Diversification protocol: it knows only its own
task and occasionally observes one random nest-mate.  We then simulate
two ecological shocks:

1. a predator eliminates most foragers (they are re-tasked — the
   "recolouring" adversary), and
2. the queen produces 300 new workers who all start on brood care.

The colony re-balances after both shocks without any central control.

Run:  python examples/ant_task_allocation.py
"""

import numpy as np

from repro import AggregateSimulation, WeightTable, weights_from_demands
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import proportional_counts

TASKS = ["foraging", "brood care", "nest repair", "patrolling"]
DEMANDS = [4.0, 3.0, 2.0, 1.0]


def task_table(engine, weights) -> str:
    counts = engine.colour_counts()
    shares = counts / counts.sum()
    fair = weights.fair_shares()
    rows = [
        [TASKS[i], int(counts[i]), f"{shares[i]:.3f}", f"{fair[i]:.3f}"]
        for i in range(len(TASKS))
    ]
    return format_table(["task", "ants", "share", "target"], rows)


def main() -> None:
    weights = weights_from_demands(DEMANDS)
    n = 1_200
    engine = AggregateSimulation(
        weights,
        dark_counts=proportional_counts(n, weights),
        rng=2021,
    )

    print("== initial allocation (proportional, all committed) ==")
    print(task_table(engine, weights))

    # Let the colony reach its working equilibrium.
    engine.run(300 * n)
    print("\n== after settling ==")
    print(task_table(engine, weights))

    # Shock 1: ants from other colonies kill most foragers; survivors
    # panic into patrolling (the paper's recolouring adversary).
    print("\n*** shock 1: forager massacre (foragers re-task to patrol)")
    foragers = int(engine.dark_counts()[0] + engine.light_counts()[0])
    engine.recolour(source=0, target=3)
    # One scout keeps foraging alive (sustainability needs a dark seed;
    # in a real colony some forager always survives).
    engine.add_agents(colour=0, count=1, dark=True)
    print(f"    {foragers} foragers lost; 1 scout remains")
    print(task_table(engine, weights))

    # Track the recovery of foraging over time.
    times, forager_counts = [], []
    for _ in range(60):
        engine.run(40 * engine.n)
        times.append(engine.time)
        forager_counts.append(float(engine.colour_counts()[0]))
    print()
    print(format_series(
        "foraging workforce recovering after the massacre",
        times, forager_counts,
    ))
    print("\n== after recovery ==")
    print(task_table(engine, weights))

    # Shock 2: 300 freshly-hatched workers all start on brood care.
    print("\n*** shock 2: 300 new workers hatch into brood care")
    engine.add_agents(colour=1, count=300, dark=True)
    engine.run(400 * engine.n)
    print("\n== colony of "
          f"{engine.n} after absorbing the new workers ==")
    print(task_table(engine, weights))

    final_error = float(
        np.abs(
            engine.colour_counts() / engine.n - weights.fair_shares()
        ).max()
    )
    print(f"\nfinal allocation error: {final_error:.4f} "
          "(no ant ever knew the global demands)")


if __name__ == "__main__":
    main()
