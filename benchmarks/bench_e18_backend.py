"""E18 — backend-seam overhead: the Diversification kernel routed
through the array-API backend abstraction versus a hand-inlined plain
NumPy transcription of the same update, on large coin blocks.

The seam resolves the namespace, dtype table and scalar constants once
per ``refresh``, so the per-``apply`` cost is a handful of attribute
lookups — the acceptance gate is **< 5% overhead** over the inlined
reference.  When ``array_api_strict`` is importable the strict build is
timed too (informational: the pure-Python reference namespace is not
expected to be fast, only correct).

Runs under pytest-benchmark like the other benches, and also as a plain
script (``python benchmarks/bench_e18_backend.py``) that writes the
timing JSON to ``benchmarks/results/e18_backend_timing.json`` for the
CI artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import kernel_for
from repro.engine.backend import available_backends, resolve_backend
from repro.core.state import DARK, LIGHT

K = 3
WEIGHT_VECTOR = (1.0, 2.0, 3.0)
BLOCK = 100_000
ITERATIONS = 30
REPEATS = 9
SEED = 0
TARGET_OVERHEAD = 0.05  # seam may cost at most 5% over inline NumPy

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e18_backend_timing.json"
)


def _inputs():
    rng = np.random.default_rng(SEED)
    uc = rng.integers(0, K, size=BLOCK, dtype=np.int64)
    us = rng.integers(0, 2, size=BLOCK, dtype=np.int64)
    vc = rng.integers(0, K, size=(BLOCK, 1), dtype=np.int64)
    vs = rng.integers(0, 2, size=(BLOCK, 1), dtype=np.int64)
    coins = rng.random((BLOCK, 1))
    return uc, us, vc, vs, coins


def _inline_apply(lighten, dark0, light0):
    """The Diversification update hand-written in plain NumPy — the
    zero-abstraction reference the seam is measured against."""

    def apply(uc, us, vc, vs, coins):
        v0c = vc[..., 0]
        v0s = vs[..., 0]
        u_dark = us > LIGHT
        v_dark = v0s > LIGHT
        adopt = ~u_dark & v_dark
        threshold = lighten[uc]
        do_lighten = (
            u_dark & v_dark & (uc == v0c) & (coins[..., 0] < threshold)
        )
        new_c = np.where(adopt, v0c, uc)
        new_s = np.where(adopt, dark0, np.where(do_lighten, light0, us))
        return new_c, new_s

    return apply


def _time_apply(apply, inputs) -> float:
    """Best-of-``REPEATS`` wall-clock of ``ITERATIONS`` kernel calls."""
    apply(*inputs)  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            apply(*inputs)
        best = min(best, time.perf_counter() - start)
    return best


def _time_interleaved(apply_a, apply_b, inputs) -> tuple[float, float]:
    """Best-of-``REPEATS`` for two kernels with alternating rounds, so
    CPU-frequency and cache drift hits both sides equally instead of
    biasing whichever ran last."""
    apply_a(*inputs)
    apply_b(*inputs)
    best_a = best_b = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            apply_a(*inputs)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            apply_b(*inputs)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def measure() -> dict:
    inputs = _inputs()
    weights = WeightTable(WEIGHT_VECTOR)

    seam_kernel = kernel_for(Diversification(weights))
    seam_kernel.refresh(K)
    inline = _inline_apply(
        1.0 / weights.as_array(),
        np.int64(DARK),
        np.int64(LIGHT),
    )
    seam_seconds, inline_seconds = _time_interleaved(
        seam_kernel.apply, inline, inputs
    )

    timing = {
        "k": K,
        "weights": list(WEIGHT_VECTOR),
        "block": BLOCK,
        "iterations": ITERATIONS,
        "repeats": REPEATS,
        "seed": SEED,
        "seam_seconds": seam_seconds,
        "inline_seconds": inline_seconds,
        "seam_us_per_call": seam_seconds / ITERATIONS * 1e6,
        "inline_us_per_call": inline_seconds / ITERATIONS * 1e6,
        "overhead": seam_seconds / inline_seconds - 1.0,
        "target_overhead": TARGET_OVERHEAD,
    }

    if available_backends().get("array-api-strict"):
        strict = resolve_backend("array-api-strict")
        strict_kernel = kernel_for(
            Diversification(WeightTable(WEIGHT_VECTOR)), backend=strict
        )
        strict_kernel.refresh(K)
        strict_inputs = tuple(strict.from_host(block) for block in inputs)
        timing["strict_seconds"] = _time_apply(
            strict_kernel.apply, strict_inputs
        )
        timing["strict_us_per_call"] = (
            timing["strict_seconds"] / ITERATIONS * 1e6
        )
    return timing


def test_backend_seam_overhead(benchmark):
    """Routing the kernel through the backend seam costs < 5% over an
    inlined plain-NumPy transcription of the same update."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert timing["overhead"] < TARGET_OVERHEAD, timing


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    ok = timing["overhead"] < TARGET_OVERHEAD
    print(
        f"seam overhead {timing['overhead'] * 100:+.2f}% "
        f"({'within' if ok else 'ABOVE'} the "
        f"{TARGET_OVERHEAD:.0%} budget)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
