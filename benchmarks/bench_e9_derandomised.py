"""E9 — the derandomised multi-shade protocol (Sec 1.2; open problem
of Sec 3): reaches the same fair shares as the randomised protocol."""

from conftest import run_once

from repro.experiments import (
    experiment_derandomised,
    experiment_derandomised_scaling,
)


def test_e9_derandomised(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_derandomised,
        n=384,
        weight_vector=(1, 2, 3),
        rounds=2500,
        seeds=3,
    )
    emit(table)
    # Both protocol variants stay within the diversity band.
    assert all(row[4] for row in table.rows), table.render()


def test_e9b_derandomised_scaling(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_derandomised_scaling,
        ns=(256, 512, 1024, 2048),
        weight_vector=(1, 2, 3),
        seeds=3,
    )
    emit(table)
    assert all(row[-1] for row in table.rows), table.render()
