"""E16 — adversarial batched replication: wall-clock speedup of the
fused ``(R, 2k)`` engine over the scalar per-replication loop when an
intervention schedule is present, on the acceptance workload (100
replications, n=1000, 3 colours, agent flood + new-colour shock).

PR 1 batched schedule-free replications (E13); this closes the gap for
the paper's robustness experiments (E6/E7), which were the last
workload family stuck on the scalar loop.

Runs under pytest-benchmark like the other benches, and also as a plain
script (``python benchmarks/bench_e16_adversarial_batch.py``) that
writes the timing JSON to
``benchmarks/results/e16_adversarial_batch_timing.json`` for the CI
artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.adversary.interventions import AddAgents, AddColour
from repro.adversary.schedule import InterventionSchedule
from repro.core.weights import WeightTable
from repro.experiments.runner import run_aggregate

REPLICATIONS = 100
N = 1000
WEIGHT_VECTOR = (1.0, 2.0, 3.0)
STEPS = 30_000
SEED = 0
TARGET_SPEEDUP = 4.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / "e16_adversarial_batch_timing.json"
)


def make_schedule() -> InterventionSchedule:
    """E7-style shocks: flood colour 0, then add a dark colour."""
    return InterventionSchedule(
        [
            (STEPS // 3, AddAgents(colour=0, count=N // 2, dark=True)),
            (2 * STEPS // 3, AddColour(weight=2.0, count=1, dark=True)),
        ]
    )


def run_batched() -> None:
    run_aggregate(
        WeightTable(WEIGHT_VECTOR), N, STEPS,
        seed=SEED, replications=REPLICATIONS,
        schedule=make_schedule(), batched=True,
    )


def run_scalar_loop() -> None:
    run_aggregate(
        WeightTable(WEIGHT_VECTOR), N, STEPS,
        seed=SEED, replications=REPLICATIONS,
        schedule=make_schedule(), batched=False,
    )


def measure() -> dict:
    """Time both paths once and report the speedup."""
    run_batched()  # warm-up: NumPy internals, allocator, caches
    start = time.perf_counter()
    run_batched()
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_scalar_loop()
    scalar_seconds = time.perf_counter() - start
    return {
        "replications": REPLICATIONS,
        "n": N,
        "weights": list(WEIGHT_VECTOR),
        "steps": STEPS,
        "seed": SEED,
        "schedule": "flood n/2 at T/3, new colour (w=2, 1 dark) at 2T/3",
        "batched_seconds": batched_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "target_speedup": TARGET_SPEEDUP,
    }


def test_adversarial_batched_speedup(benchmark):
    """Fused batched interventions beat the scalar replication loop by
    >= 4x on the acceptance workload."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert timing["speedup"] >= TARGET_SPEEDUP, timing


def test_adversarial_batched_throughput(benchmark):
    """Wall-clock of the shocked batched engine alone (100 x n=1000)."""
    benchmark.pedantic(run_batched, rounds=1, iterations=1, warmup_rounds=0)


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    ok = timing["speedup"] >= TARGET_SPEEDUP
    print(
        f"speedup {timing['speedup']:.1f}x "
        f"({'meets' if ok else 'BELOW'} the {TARGET_SPEEDUP:.0f}x target)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
