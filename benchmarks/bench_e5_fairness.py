"""E5 — fairness (Thm 2.12): per-agent time-occupancy approaches
w_i/w, split dark/light per the stationary distribution of Sec 2.4."""

from conftest import run_once

from repro.experiments import experiment_fairness


def test_e5_fairness(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_fairness,
        n=192,
        weight_vector=(1.0, 2.0, 3.0),
        horizon_rounds=(200, 800, 3200),
    )
    emit(table)
    # Deviation shrinks with the horizon (column 3 = mean colour dev).
    mean_devs = [row[3] for row in table.rows]
    assert mean_devs[-1] < mean_devs[0]
