"""E3 — potential decay and plateaus (Fig. 1 storyline; Thm 2.8,
Lemma 2.14): φ and ψ fall to O(w n log n), σ² to Õ(n^{3/2})."""

from conftest import run_once

from repro.experiments import experiment_potentials


def test_e3_potential_decay(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_potentials,
        n=1024,
        weight_vector=(1.0, 2.0, 3.0, 4.0),
        settle_factor=12.0,
    )
    emit(table)
    by_name = {row[0]: row for row in table.rows}
    # phi must decay by orders of magnitude from the worst-case start;
    # psi starts at 0 (no light agents), peaks, then settles — assert
    # the post-peak decay instead.
    assert by_name["phi"][3] < by_name["phi"][1] / 100, "phi failed to decay"
    assert by_name["psi"][3] < by_name["psi"][2], "psi failed to settle"
    # And every potential stays below its plateau bound over the tail.
    assert all(row[-1] for row in table.rows)
