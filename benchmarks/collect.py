"""Consolidate ``benchmarks/results/*.json`` into one
``BENCH_SUMMARY.json`` so the perf trajectory is tracked across PRs.

Each benchmark script writes its own timing JSON (e.g.
``e17_fused_sweep_timing.json``); CI runs them as separate jobs and
this collector merges whatever landed in the results directory into a
single artifact with a compact speedup index:

    PYTHONPATH=src python benchmarks/collect.py

The collector is deliberately forgiving — a missing results directory
yields an empty summary and unparsable files are recorded as errors
instead of failing the job — because benchmark jobs are non-blocking
and any subset of them may have run.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_NAME = "BENCH_SUMMARY.json"


def collect(results_dir: pathlib.Path = RESULTS_DIR) -> dict:
    """Merge every timing JSON under ``results_dir`` into one payload.

    Returns a ``repro-bench-summary/v1`` dict: the full per-benchmark
    payloads plus a ``speedups`` index of every benchmark that reports
    a ``speedup`` (and whether it met its ``target_speedup``).
    """
    summary: dict = {
        "format": "repro-bench-summary/v1",
        "benchmarks": {},
        "speedups": {},
        "errors": {},
    }
    if not results_dir.is_dir():
        return summary
    for path in sorted(results_dir.glob("*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            summary["errors"][path.name] = str(error)
            continue
        summary["benchmarks"][path.stem] = payload
        if isinstance(payload, dict) and "speedup" in payload:
            entry = {"speedup": payload["speedup"]}
            if "target_speedup" in payload:
                entry["target_speedup"] = payload["target_speedup"]
                entry["meets_target"] = (
                    payload["speedup"] >= payload["target_speedup"]
                )
            summary["speedups"][path.stem] = entry
    return summary


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_dir = pathlib.Path(argv[0]) if argv else RESULTS_DIR
    summary = collect(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / SUMMARY_NAME
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"collected {len(summary['benchmarks'])} benchmark(s) -> {out}")
    for name, entry in sorted(summary["speedups"].items()):
        target = entry.get("target_speedup")
        status = (
            ""
            if target is None
            else (" (meets target)" if entry["meets_target"]
                  else f" (BELOW {target:.1f}x target)")
        )
        print(f"  {name}: {entry['speedup']:.2f}x{status}")
    for name, error in sorted(summary["errors"].items()):
        print(f"  {name}: UNREADABLE ({error})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
