"""Consolidate ``benchmarks/results/*.json`` into one
``BENCH_SUMMARY.json`` so the perf trajectory is tracked across PRs.

Each benchmark script writes its own timing JSON (e.g.
``e17_fused_sweep_timing.json``); CI runs them as separate jobs and
this collector merges whatever landed in the results directory into a
single artifact with a compact speedup index:

    PYTHONPATH=src python benchmarks/collect.py

With ``--trajectory PATH`` the collector additionally appends the
summary's speedup index as one entry to the committed per-PR history
(``benchmarks/BENCH_TRAJECTORY.json``) and compares it against the
newest *same-machine* entry, flagging any benchmark whose speedup
dropped by more than ``--threshold`` (default 20%).  Every entry
records a machine signature (``cpu_count`` + platform), because
speedups are not comparable across machines — a parallel-sweep
benchmark that hits 2x on a 4-core CI runner is structurally 1x on a
1-core dev box, which is noise, not a regression.  Entries without a
matching signature (or legacy entries without one at all) are kept in
the history but never used as a regression baseline.  The comparison
is *non-blocking* — regressions are printed as warnings and the exit
code stays 0 — because CI benchmark machines are noisy; the trajectory
exists so a real drift is visible across several PRs, not to gate a
single one.

The collector is deliberately forgiving — a missing results directory
yields an empty summary and unparsable files are recorded as errors
instead of failing the job — because benchmark jobs are non-blocking
and any subset of them may have run.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_NAME = "BENCH_SUMMARY.json"
TRAJECTORY_FORMAT = "repro-bench-trajectory/v1"


def machine_signature() -> dict:
    """The comparability class of a benchmark run: core count plus a
    coarse platform label (system + architecture — deliberately not
    the kernel build, which churns without affecting speedups)."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": f"{platform.system()}-{platform.machine()}",
    }


def collect(results_dir: pathlib.Path = RESULTS_DIR) -> dict:
    """Merge every timing JSON under ``results_dir`` into one payload.

    Returns a ``repro-bench-summary/v1`` dict: the full per-benchmark
    payloads plus a ``speedups`` index of every benchmark that reports
    a ``speedup`` (and whether it met its ``target_speedup``).
    """
    summary: dict = {
        "format": "repro-bench-summary/v1",
        "benchmarks": {},
        "speedups": {},
        "caches": {},
        "errors": {},
    }
    if not results_dir.is_dir():
        return summary
    for path in sorted(results_dir.glob("*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            summary["errors"][path.name] = str(error)
            continue
        summary["benchmarks"][path.stem] = payload
        if isinstance(payload, dict) and "speedup" in payload:
            entry = {"speedup": payload["speedup"]}
            if "target_speedup" in payload:
                entry["target_speedup"] = payload["target_speedup"]
                entry["meets_target"] = (
                    payload["speedup"] >= payload["target_speedup"]
                )
            summary["speedups"][path.stem] = entry
        if isinstance(payload, dict) and isinstance(
            payload.get("cache"), dict
        ):
            # Shard-cache hit/miss counters (E19 and any benchmark
            # that exercises the result cache).
            summary["caches"][path.stem] = payload["cache"]
    return summary


def load_trajectory(path: pathlib.Path) -> dict:
    """Reload the committed trajectory, or an empty one if absent."""
    if not path.exists():
        return {"format": TRAJECTORY_FORMAT, "entries": []}
    doc = json.loads(path.read_text())
    if doc.get("format") != TRAJECTORY_FORMAT:
        raise ValueError(
            f"{path}: not a {TRAJECTORY_FORMAT} file "
            f"(format={doc.get('format')!r})"
        )
    return doc


def baseline_entry(trajectory: dict, machine: dict | None = None):
    """The newest trajectory entry recorded on ``machine`` (defaults
    to this machine), or None.

    Legacy entries without a machine signature never match — they may
    have run anywhere, so comparing against them reports cross-machine
    noise as regressions.
    """
    machine = machine or machine_signature()
    for entry in reversed(trajectory["entries"]):
        if entry.get("machine") == machine:
            return entry
    return None


def compare_with_last(
    summary: dict,
    trajectory: dict,
    threshold: float = 0.2,
    machine: dict | None = None,
) -> list[str]:
    """Speedup regressions vs the newest *same-machine* entry.

    Returns one human-readable line per benchmark whose speedup fell
    by more than ``threshold`` (fractional); new or vanished benchmarks
    are not regressions, and with no same-machine baseline in the
    trajectory nothing is compared at all.
    """
    baseline = baseline_entry(trajectory, machine)
    if baseline is None:
        return []
    previous = baseline["speedups"]
    warnings = []
    for name, entry in sorted(summary["speedups"].items()):
        if name not in previous:
            continue
        before = float(previous[name]["speedup"])
        now = float(entry["speedup"])
        if before > 0 and now < before * (1.0 - threshold):
            drop = 100.0 * (1.0 - now / before)
            warnings.append(
                f"{name}: speedup {before:.2f}x -> {now:.2f}x "
                f"(-{drop:.0f}%, threshold {threshold:.0%})"
            )
    return warnings


def append_trajectory(
    summary: dict, path: pathlib.Path, label: str,
    machine: dict | None = None,
) -> dict:
    """Append the summary's speedup index as one trajectory entry,
    stamped with the machine signature it was measured on."""
    trajectory = load_trajectory(path)
    trajectory["entries"].append(
        {
            "label": label,
            "machine": machine or machine_signature(),
            "speedups": summary["speedups"],
        }
    )
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results_dir", nargs="?", type=pathlib.Path, default=RESULTS_DIR,
        help="directory of per-benchmark timing JSONs",
    )
    parser.add_argument(
        "--trajectory", type=pathlib.Path, default=None, metavar="PATH",
        help="append this run's speedups to the committed per-PR "
             "history and warn (non-blocking) on regressions",
    )
    parser.add_argument(
        "--label", type=str, default="local",
        help="entry label for --trajectory (CI passes the commit SHA)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="fractional speedup drop that counts as a regression "
             "(default 0.2 = 20%%)",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    results_dir = args.results_dir
    summary = collect(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / SUMMARY_NAME
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"collected {len(summary['benchmarks'])} benchmark(s) -> {out}")
    for name, entry in sorted(summary["speedups"].items()):
        target = entry.get("target_speedup")
        status = (
            ""
            if target is None
            else (" (meets target)" if entry["meets_target"]
                  else f" (BELOW {target:.1f}x target)")
        )
        print(f"  {name}: {entry['speedup']:.2f}x{status}")
    for name, entry in sorted(summary["caches"].items()):
        if {"hits", "misses"} <= set(entry):
            print(
                f"  {name}: cache {entry['hits']} hit(s) / "
                f"{entry['misses']} miss(es)"
            )
    for name, error in sorted(summary["errors"].items()):
        print(f"  {name}: UNREADABLE ({error})", file=sys.stderr)
    if args.trajectory is not None:
        history = load_trajectory(args.trajectory)
        if baseline_entry(history) is None and history["entries"]:
            print(
                "  no same-machine baseline in the trajectory; "
                "skipping the regression comparison "
                f"(this machine: {machine_signature()})"
            )
        regressions = compare_with_last(summary, history, args.threshold)
        for line in regressions:
            print(f"  PERF REGRESSION (non-blocking): {line}")
        trajectory = append_trajectory(summary, args.trajectory, args.label)
        print(
            f"trajectory: {len(trajectory['entries'])} entr"
            f"{'y' if len(trajectory['entries']) == 1 else 'ies'} "
            f"-> {args.trajectory}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
