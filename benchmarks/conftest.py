"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment table (the paper-shaped
rows) and times the underlying computation.  Tables are printed and
also written to ``benchmarks/results/<id>.txt`` so the rows survive
pytest's output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Persist (txt/csv/json) and print an ExperimentTable."""

    def _emit(table) -> None:
        from repro.experiments.export import save_table

        save_table(table, results_dir)
        print()
        print(table.render())

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed execution (experiments are
    seconds-long; statistical repetition is wasteful)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
