"""Ablations — quantify each protocol rule (Sec 1.2 intuition):
A1 removes the light buffer, A2 removes the weight-scaled coin."""

from conftest import run_once

from repro.experiments import experiment_ablations


def test_ablations(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_ablations,
        n=384,
        weight_vector=(1.0, 2.0, 3.0, 4.0),
        rounds=2500,
    )
    emit(table)
    by_name = {row[0]: row for row in table.rows}
    assert by_name["full protocol"][-1] == "weighted"
    assert by_name["A2 unweighted lightening"][-1] == "uniform"
