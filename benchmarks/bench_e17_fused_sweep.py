"""E17 — heterogeneous mega-batching: wall-clock speedup of fusing an
entire scenario sweep (24 cells × R=50, per-cell weight vectors, colour
counts and population sizes) into ONE
:class:`~repro.engine.hetero.HeterogeneousAggregateBatch` event loop,
against the per-cell batched loop (one
:class:`~repro.engine.batched.BatchedAggregateSimulation` per cell —
the fastest pre-PR path).

PR 1 fused replications within a cell; this PR fuses the cells
themselves, so a whole weight-skew × k × n phase diagram pays the
Python interpreter once.  Equivalence is checked alongside the timing:
per cell and per colour, the fused final-count distribution must match
the per-cell batched loop's by a two-sample KS test (the established
batched-vs-scalar precedent).  With 24 cells × up to 4 colours the
p-values of identical laws are uniform over ~80 tests, so the floor is
Bonferroni-lax (1e-4).

Runs under pytest-benchmark like the other benches, and also as a
plain script (``python benchmarks/bench_e17_fused_sweep.py``) that
writes the timing JSON to
``benchmarks/results/e17_fused_sweep_timing.json`` for the CI
artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
from scipy import stats

from repro.core.weights import WeightTable
from repro.experiments.fusion import spec_fused_sweep
from repro.experiments.pipeline import execute, plan
from repro.experiments.replication import replicate_colour_counts

REPLICATIONS = 50
ROUNDS = 30
BASE_SEED = 1717
TARGET_SPEEDUP = 3.0
P_FLOOR = 1e-4  # ~80 KS tests of identical laws: Bonferroni-lax floor

RESULTS_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / "e17_fused_sweep_timing.json"
)


def make_spec():
    """The acceptance sweep: 4 weight vectors (different skew AND k) ×
    6 population sizes = 24 heterogeneous cells, R=50 each."""
    return spec_fused_sweep(
        rounds=ROUNDS, replications=REPLICATIONS, base_seed=BASE_SEED
    )


def run_fused(spec):
    """The mega-batch path: all 24 × 50 rows in one engine."""
    return execute(spec, fused=True)


def run_per_cell_loop(spec) -> list[np.ndarray]:
    """The pre-PR fast path: loop the cells, one batched (R, 2k)
    engine per cell."""
    finals = []
    for index, params in enumerate(plan(spec).cells):
        finals.append(
            replicate_colour_counts(
                WeightTable(params["vector"]),
                params["n"],
                params["rounds"] * params["n"],
                replications=REPLICATIONS,
                base_seed=BASE_SEED + index,
                batched=True,
            )
        )
    return finals


def ks_equivalence(fused_result, per_cell_finals) -> dict:
    """Per-cell, per-colour KS of fused vs per-cell final counts."""
    worst = 1.0
    tests = 0
    for (params, values), finals in zip(
        fused_result.by_cell(), per_cell_finals
    ):
        fused_counts = np.array([value["counts"] for value in values])
        for colour in range(len(params["vector"])):
            pvalue = stats.ks_2samp(
                fused_counts[:, colour], finals[:, colour]
            ).pvalue
            worst = min(worst, float(pvalue))
            tests += 1
    return {"ks_tests": tests, "ks_min_pvalue": worst}


def measure() -> dict:
    """Time both paths once and report speedup + KS equivalence."""
    spec = make_spec()
    run_fused(spec)  # warm-up: NumPy internals, allocator, caches
    start = time.perf_counter()
    fused_result = run_fused(spec)
    fused_seconds = time.perf_counter() - start
    start = time.perf_counter()
    per_cell_finals = run_per_cell_loop(spec)
    per_cell_seconds = time.perf_counter() - start
    expanded = plan(spec)
    timing = {
        "cells": len(expanded.cells),
        "replications": REPLICATIONS,
        "rows_fused": len(expanded.shards),
        "rounds": ROUNDS,
        "grid": {
            "vectors": [list(v) for v in spec.grid["vector"]],
            "ns": list(spec.grid["n"]),
        },
        "fused_seconds": fused_seconds,
        "per_cell_seconds": per_cell_seconds,
        "speedup": per_cell_seconds / fused_seconds,
        "target_speedup": TARGET_SPEEDUP,
        "p_floor": P_FLOOR,
    }
    timing.update(ks_equivalence(fused_result, per_cell_finals))
    return timing


def test_fused_sweep_speedup(benchmark):
    """The fused mega-batch beats the per-cell batched loop by >= 3x
    on the 24-cell x R=50 acceptance sweep, KS-equivalent per cell."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert timing["speedup"] >= TARGET_SPEEDUP, timing
    assert timing["ks_min_pvalue"] > P_FLOOR, timing


def test_fused_sweep_throughput(benchmark):
    """Wall-clock of the fused mega-batch alone (1200 rows)."""
    spec = make_spec()
    benchmark.pedantic(
        run_fused, args=(spec,), rounds=1, iterations=1, warmup_rounds=0
    )


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    ok = (
        timing["speedup"] >= TARGET_SPEEDUP
        and timing["ks_min_pvalue"] > P_FLOOR
    )
    print(
        f"speedup {timing['speedup']:.1f}x "
        f"({'meets' if ok else 'BELOW'} the {TARGET_SPEEDUP:.0f}x target), "
        f"KS min p={timing['ks_min_pvalue']:.2e} over "
        f"{timing['ks_tests']} tests"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
