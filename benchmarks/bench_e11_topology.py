"""E11 — topology extension (future work, Sec 3): the protocol on
sparse graphs; sustainability is topology-independent."""

from conftest import run_once

from repro.experiments import experiment_topology


def test_e11_topology(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_topology,
        n=256,
        weight_vector=(1.0, 2.0, 3.0),
        rounds=3000,
    )
    emit(table)
    # Sustainability holds on every topology.
    assert all(row[-1] for row in table.rows), table.render()
