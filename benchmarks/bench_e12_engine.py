"""E12 — engine validation: agent vs aggregate marginal agreement and
raw step throughput of both engines."""

from conftest import run_once

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.population import Population
from repro.engine.simulator import Simulation
from repro.experiments import experiment_engines
from repro.experiments.workloads import colours_from_counts, worst_case_counts


def test_e12_engine_equivalence(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_engines,
        n=128,
        weight_vector=(1.0, 2.0, 3.0),
        rounds=120,
        seeds=24,
    )
    emit(table)
    assert all(row[-1] for row in table.rows), table.render()


def test_agent_engine_throughput(benchmark):
    """Steps/second of the agent-level engine (n=1024, k=4)."""
    weights = WeightTable([1.0, 2.0, 3.0, 4.0])
    protocol = Diversification(weights)
    population = Population.from_colours(
        colours_from_counts(worst_case_counts(1024, 4)), protocol, k=4
    )
    simulation = Simulation(protocol, population, rng=0)
    benchmark(lambda: simulation.run(50_000))


def test_aggregate_engine_throughput(benchmark):
    """Steps/second of the event-driven aggregate engine (n=1024)."""
    weights = WeightTable([1.0, 2.0, 3.0, 4.0])
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(1024, 4), rng=0
    )
    benchmark(lambda: engine.run(500_000))


def test_aggregate_per_step_throughput(benchmark):
    """Steps/second of the per-step aggregate mode (baseline for the
    event-driven speedup)."""
    weights = WeightTable([1.0, 2.0, 3.0, 4.0])
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(1024, 4), rng=0
    )

    def run_steps():
        for _ in range(20_000):
            engine.step()

    benchmark(run_steps)
