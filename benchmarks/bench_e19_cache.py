"""E19 — content-addressed shard result cache: a warm re-run of a
sweep replays every shard from the on-disk store
(:class:`~repro.experiments.cache.ShardCache`), so it costs file reads
instead of engine time; an *overlapping* sweep computes only its new
cells.

Three gates, all asserted here (and in CI's warm-vs-cold job):

* **speedup** — the warm re-run of the 96-shard acceptance sweep must
  be >= 10x faster than the cold run (measured ~100x on the dev box);
* **bit identity** — the tables rendered from the no-cache, cold
  (compute + store) and warm (replay) runs must match byte for byte
  (cached values round-trip through JSON exactly, the checkpoint-
  resume precedent);
* **partial overlap** — a second sweep sharing half its cells with the
  first must hit exactly the shared shards and compute exactly the new
  ones (hit/miss counts asserted).  The sweep uses ``"cell"`` seed
  scope, where shard seeds derive from cell parameters, so shared
  cells keep their content addresses when the grid changes.

The fused mega-batch path is exercised too: its groups partition into
hits and misses, a warm fused re-run is all hits and byte-identical to
the cold fused run, and fused values live in their own ``fused:*`` key
space (never replayed onto the bit-identical per-shard path).

Runs as a plain script (``python benchmarks/bench_e19_cache.py``)
writing ``benchmarks/results/e19_cache_timing.json`` for the CI
artifact, and under pytest like the other benches.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.experiments.fusion import measure_sweep_final_counts
from repro.experiments.pipeline import ScenarioSpec, execute, plan
from repro.experiments.report import format_table
from repro.experiments.table import ExperimentTable

REPLICATIONS = 6
ROUNDS = 12
BASE_SEED = 9119
VECTORS = (
    (1.0, 1.0, 1.0),
    (1.0, 2.0, 3.0),
    (1.0, 2.0, 3.0, 4.0),
    (1.0, 3.0, 9.0),
)
NS_BASE = (300, 340, 380, 420)
# Half the populations shared with NS_BASE, half new: the overlapping
# sweep must hit 4 vectors x 2 shared ns x R shards and compute the
# rest.
NS_OVERLAP = (380, 420, 460, 500)
TARGET_SPEEDUP = 10.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e19_cache_timing.json"
)


def _cell_seed(params: dict) -> int:
    """Deterministic per-cell seed from the cell parameters alone, so
    overlapping grids keep their shards' content addresses."""
    vector_tag = sum(
        (index + 1) * round(weight * 10)
        for index, weight in enumerate(params["vector"])
    )
    return BASE_SEED + 7919 * int(params["n"]) + vector_tag


def make_spec(ns=NS_BASE) -> ScenarioSpec:
    """The acceptance sweep: 4 weight vectors x 4 population sizes =
    16 cells x R=6 cell-seeded replications (96 shards)."""
    return ScenarioSpec(
        name="e19",
        measure=measure_sweep_final_counts,
        grid={
            "vector": tuple(tuple(v) for v in VECTORS),
            "n": tuple(int(n) for n in ns),
        },
        fixed={"rounds": ROUNDS, "start": "worst"},
        replications=REPLICATIONS,
        base_seed=BASE_SEED,
        seed_scope="cell",
        cell_seed=_cell_seed,
    )


def build_table(result) -> ExperimentTable:
    """Mean final count per colour, one row per cell — the rendered
    string is the byte-identity gate between cached and computed runs."""
    rows = []
    for params, values in result.by_cell():
        means = [
            sum(value["counts"][colour] for value in values) / len(values)
            for colour in range(len(params["vector"]))
        ]
        rows.append(
            [
                "/".join(f"{w:g}" for w in params["vector"]),
                params["n"],
                " ".join(f"{mean:.6f}" for mean in means),
            ]
        )
    return ExperimentTable(
        experiment="E19",
        title="shard-cache acceptance sweep: mean final counts per cell",
        headers=["weights", "n", "mean final counts"],
        rows=rows,
    )


def measure() -> dict:
    """Cold vs warm vs overlapping runs against one cache directory."""
    spec = make_spec()
    shards = len(plan(spec).shards)
    with tempfile.TemporaryDirectory(prefix="repro-e19-cache-") as root:
        cache_dir = pathlib.Path(root) / "cache"

        plain = execute(spec)  # no cache: the freshly-computed reference
        start = time.perf_counter()
        cold = execute(spec, cache=cache_dir)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = execute(spec, cache=cache_dir)
        warm_seconds = time.perf_counter() - start

        tables = {
            name: build_table(result).render()
            for name, result in (
                ("plain", plain), ("cold", cold), ("warm", warm),
            )
        }
        bit_identical = (
            tables["plain"] == tables["cold"] == tables["warm"]
        )

        overlap_spec = make_spec(NS_OVERLAP)
        overlap_total = len(plan(overlap_spec).shards)
        shared = (
            len(VECTORS)
            * len(set(NS_BASE) & set(NS_OVERLAP))
            * REPLICATIONS
        )
        start = time.perf_counter()
        partial = execute(overlap_spec, cache=cache_dir)
        partial_seconds = time.perf_counter() - start

        # The fused mega-batch path: groups partition into hits and
        # misses inside their own fused:* key space.
        fused_cold = execute(spec, fused=True, cache=cache_dir)
        fused_warm = execute(spec, fused=True, cache=cache_dir)
        fused_identical = (
            build_table(fused_cold).render()
            == build_table(fused_warm).render()
        )

    return {
        "shards": shards,
        "cells": len(VECTORS) * len(NS_BASE),
        "replications": REPLICATIONS,
        "rounds": ROUNDS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "target_speedup": TARGET_SPEEDUP,
        "bit_identical_tables": bit_identical,
        "cold_stats": cold.cache_stats,
        "warm_stats": warm.cache_stats,
        "partial_seconds": partial_seconds,
        "partial_stats": partial.cache_stats,
        "partial_expected_hits": shared,
        "partial_expected_misses": overlap_total - shared,
        "fused_cold_stats": fused_cold.cache_stats,
        "fused_warm_stats": fused_warm.cache_stats,
        "fused_bit_identical_tables": fused_identical,
        # Consolidated by benchmarks/collect.py into the summary's
        # cache index: the warm re-run's counters.
        "cache": {
            "hits": warm.cache_stats["hits"],
            "misses": warm.cache_stats["misses"],
        },
    }


def check(timing: dict) -> list[str]:
    """Every acceptance gate, as human-readable failure lines."""
    failures = []
    if timing["speedup"] < timing["target_speedup"]:
        failures.append(
            f"warm speedup {timing['speedup']:.1f}x below the "
            f"{timing['target_speedup']:.0f}x target"
        )
    if not timing["bit_identical_tables"]:
        failures.append("cached and freshly-computed tables differ")
    if timing["cold_stats"]["misses"] != timing["shards"]:
        failures.append(f"cold run not all misses: {timing['cold_stats']}")
    if (
        timing["warm_stats"]["hits"] != timing["shards"]
        or timing["warm_stats"]["misses"] != 0
    ):
        failures.append(f"warm run not all hits: {timing['warm_stats']}")
    if (
        timing["partial_stats"]["hits"] != timing["partial_expected_hits"]
        or timing["partial_stats"]["misses"]
        != timing["partial_expected_misses"]
    ):
        failures.append(
            f"partial overlap computed the wrong cells: "
            f"{timing['partial_stats']} (expected "
            f"{timing['partial_expected_hits']} hits / "
            f"{timing['partial_expected_misses']} misses)"
        )
    if timing["fused_cold_stats"]["hits"] != 0:
        failures.append(
            "fused run replayed per-shard values across key spaces: "
            f"{timing['fused_cold_stats']}"
        )
    if timing["fused_warm_stats"]["misses"] != 0:
        failures.append(
            f"fused warm run not all hits: {timing['fused_warm_stats']}"
        )
    if not timing["fused_bit_identical_tables"]:
        failures.append("fused cached replay diverged from cold fused run")
    return failures


def test_cache_speedup_and_identity(benchmark):
    """Warm re-run >= 10x faster, bit-identical tables, partial
    overlap computes only the miss cells."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert check(timing) == [], timing


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    failures = check(timing)
    print(
        format_table(
            ["gate", "result"],
            [
                ["warm speedup",
                 f"{timing['speedup']:.1f}x (target "
                 f"{timing['target_speedup']:.0f}x)"],
                ["bit-identical tables",
                 str(timing["bit_identical_tables"])],
                ["partial overlap",
                 f"{timing['partial_stats']['hits']} hits / "
                 f"{timing['partial_stats']['misses']} misses"],
                ["fused warm replay",
                 f"{timing['fused_warm_stats']['hits']} hits"],
            ],
            title="E19 shard-cache acceptance",
        )
    )
    for line in failures:
        print(f"FAIL: {line}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
