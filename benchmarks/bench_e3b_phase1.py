"""E3b — Phase-1 hitting times (Lemmas 2.1, 2.2): light mass reaches
its region in O(n w/ε) steps; minorities rise in O(w n log n / ε)."""

from conftest import run_once

from repro.experiments import experiment_phase1


def test_e3b_phase1(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_phase1,
        ns=(256, 512, 1024, 2048),
        weight_vector=(1.0, 2.0, 3.0),
        seeds=3,
    )
    emit(table)
    # Every row must report both hitting times for all seeds.
    assert all(row[-1] == "3/3" for row in table.rows), table.render()