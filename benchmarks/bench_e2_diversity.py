"""E2 — stabilised diversity error vs n (Def 1.1(1): Õ(1/√n)).

The reproduced shape: fitted power-law exponent ≈ −0.5 and every
measured error inside the sqrt(log n / n) band.
"""

from conftest import run_once

from repro.experiments import experiment_diversity_error


def test_e2_diversity_error(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_diversity_error,
        ns=(128, 256, 512, 1024, 2048),
        weight_vector=(1.0, 2.0, 3.0, 4.0),
        seeds=3,
    )
    emit(table)
    within = [row[-1] for row in table.rows]
    assert all(within), f"diversity errors left the band: {table.render()}"
