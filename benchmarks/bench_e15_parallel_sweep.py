"""E15 — parallel sharded sweep: wall-clock speedup of the pipeline's
``multiprocessing`` executor (``--jobs 4``) over serial execution on a
multi-seed E2 sweep, plus the bit-identical-merge guarantee.

Runs under pytest-benchmark like the other benches, and also as a plain
script (``python benchmarks/bench_e15_parallel_sweep.py``) that writes
the timing JSON to ``benchmarks/results/e15_parallel_sweep_timing.json``
for the CI artifact.

The ≥ 2x speedup target applies on hosts with at least 4 usable cores
(the CI runners); on smaller hosts the benchmark still verifies that
serial and parallel merged results are bit-identical and reports the
measured ratio.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.experiments.convergence import spec_diversity_error
from repro.experiments.pipeline import execute

NS = (384, 512)
WEIGHT_VECTOR = (1.0, 2.0, 3.0)
SEEDS = 4
BASE_SEED = 509
JOBS = 4
TARGET_SPEEDUP = 2.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / "e15_parallel_sweep_timing.json"
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec():
    return spec_diversity_error(
        ns=NS, weight_vector=WEIGHT_VECTOR, seeds=SEEDS,
        base_seed=BASE_SEED,
    )


def measure() -> dict:
    """Time the serial and ``jobs=4`` executors on the same plan."""
    execute(_spec())  # warm-up: NumPy internals, allocator, caches
    start = time.perf_counter()
    serial = execute(_spec())
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = execute(_spec(), jobs=JOBS)
    parallel_seconds = time.perf_counter() - start
    identical = (
        serial.values() == parallel.values()
        and serial.table().render() == parallel.table().render()
    )
    return {
        "ns": list(NS),
        "weights": list(WEIGHT_VECTOR),
        "seeds": SEEDS,
        "base_seed": BASE_SEED,
        "shards": len(serial.results),
        "jobs": JOBS,
        "cpus": _cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical": identical,
        "target_speedup": TARGET_SPEEDUP,
    }


def test_parallel_sweep_speedup(benchmark):
    """jobs=4 beats serial by >= 2x (given >= 4 cores) and merges
    bit-identically."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert timing["identical"], "serial and parallel results diverged"
    if timing["cpus"] >= 4:
        assert timing["speedup"] >= TARGET_SPEEDUP, timing


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    if not timing["identical"]:
        print("FAIL: serial and parallel merged results diverged")
        return 1
    print("serial vs --jobs 4 results bit-identical")
    enough_cores = timing["cpus"] >= 4
    ok = timing["speedup"] >= TARGET_SPEEDUP
    print(
        f"speedup {timing['speedup']:.1f}x on {timing['cpus']} cores "
        f"({'meets' if ok else 'BELOW'} the {TARGET_SPEEDUP:.0f}x target"
        f"{'' if enough_cores else '; target needs >= 4 cores'})"
    )
    return 0 if ok or not enough_cores else 1


if __name__ == "__main__":
    raise SystemExit(main())
