"""E8 — the equilibrium Markov chain (Sec 2.4): πP = π, mixing,
visit concentration (Thm A.2) and the P± perturbation sandwich."""

from conftest import run_once

from repro.experiments import experiment_markov_chain


def test_e8_markov_chain(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_markov_chain,
        n=256,
        weight_vector=(1.0, 2.0, 3.0),
        sim_steps=400_000,
    )
    emit(table)
    assert all(row[-1] for row in table.rows), table.render()
