"""E14 — vectorised agent-level engine: wall-clock speedup of the
structure-of-arrays ``ArraySimulation`` over the scalar per-step
``Simulation`` on the acceptance workload (10,000 agents, 3 colours,
complete graph, Diversification).

Runs under pytest-benchmark like the other benches, and also as a plain
script (``python benchmarks/bench_e14_array_engine.py``) that writes
the timing JSON to ``benchmarks/results/e14_array_engine_timing.json``
for the CI artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import ArraySimulation
from repro.engine.population import Population
from repro.engine.simulator import Simulation
from repro.experiments.workloads import colours_from_counts, worst_case_counts

N = 10_000
WEIGHT_VECTOR = (1.0, 2.0, 3.0)
STEPS = 200_000
SEED = 0
TARGET_SPEEDUP = 5.0

RESULTS_PATH = (
    pathlib.Path(__file__).parent
    / "results"
    / "e14_array_engine_timing.json"
)


def _initial_colours() -> list[int]:
    return colours_from_counts(worst_case_counts(N, len(WEIGHT_VECTOR)))


def run_array() -> None:
    protocol = Diversification(WeightTable(WEIGHT_VECTOR))
    simulation = ArraySimulation(
        protocol,
        np.asarray(_initial_colours(), dtype=np.int64),
        k=len(WEIGHT_VECTOR),
        rng=SEED,
    )
    simulation.run(STEPS)


def run_scalar() -> None:
    protocol = Diversification(WeightTable(WEIGHT_VECTOR))
    population = Population.from_colours(
        _initial_colours(), protocol, k=len(WEIGHT_VECTOR)
    )
    Simulation(protocol, population, rng=SEED).run(STEPS)


def measure() -> dict:
    """Time both engines once and report the speedup."""
    run_array()  # warm-up: NumPy internals, allocator, caches
    start = time.perf_counter()
    run_array()
    array_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_scalar()
    scalar_seconds = time.perf_counter() - start
    return {
        "n": N,
        "weights": list(WEIGHT_VECTOR),
        "steps": STEPS,
        "seed": SEED,
        "array_seconds": array_seconds,
        "scalar_seconds": scalar_seconds,
        "array_us_per_step": array_seconds / STEPS * 1e6,
        "scalar_us_per_step": scalar_seconds / STEPS * 1e6,
        "speedup": scalar_seconds / array_seconds,
        "target_speedup": TARGET_SPEEDUP,
    }


def test_array_engine_speedup(benchmark):
    """Array engine beats the scalar engine by >= 5x on the acceptance
    workload (10k agents, 3 colours, complete graph)."""
    timing = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(json.dumps(timing, indent=2))
    assert timing["speedup"] >= TARGET_SPEEDUP, timing


def test_array_engine_throughput(benchmark):
    """Wall-clock of the array engine alone (10k agents, 200k steps)."""
    benchmark.pedantic(run_array, rounds=1, iterations=1, warmup_rounds=0)


def main() -> int:
    timing = measure()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(timing, indent=2) + "\n")
    print(json.dumps(timing, indent=2))
    ok = timing["speedup"] >= TARGET_SPEEDUP
    print(
        f"speedup {timing['speedup']:.1f}x "
        f"({'meets' if ok else 'BELOW'} the {TARGET_SPEEDUP:.0f}x target)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
