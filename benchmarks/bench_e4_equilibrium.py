"""E4 — Phase-3 equilibrium counts (Thm 2.13): A_i ≈ w_i n/(1+w) and
a_i ≈ (w_i/w) n/(1+w) within additive error O(n^{3/4} log^{1/4} n)."""

from conftest import run_once

from repro.experiments import experiment_equilibrium


def test_e4_equilibrium(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_equilibrium,
        n=2048,
        weight_vector=(1.0, 2.0, 3.0, 4.0),
        settle_factor=10.0,
        window_samples=128,
    )
    emit(table)
    assert all(row[-1] for row in table.rows), table.render()
