"""E7 — adversarial robustness (Sec 1): agent floods and new colours
are absorbed; the system returns to the diversity band."""

from conftest import run_once

from repro.experiments import experiment_adversary


def test_e7_adversary(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_adversary,
        n=1024,
        weight_vector=(1.0, 2.0, 3.0),
        settle_factor=8.0,
    )
    emit(table)
    # Both shocks must report a recovery time.
    assert all(row[4] != "-" for row in table.rows), table.render()
