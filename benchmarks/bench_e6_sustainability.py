"""E6 — sustainability (Def 1.1(3)): no colour ever vanishes under
Diversification, even from singleton starts; consensus baselines fail."""

from conftest import run_once

from repro.experiments import experiment_sustainability


def test_e6_sustainability(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_sustainability,
        n=128,
        weight_vector=(1.0, 1.0, 2.0, 4.0),
        steps_per_agent=600,
        seeds=10,
    )
    emit(table)
    by_name = {row[0]: row for row in table.rows}
    assert by_name["diversification"][-1] is True
    # At least one baseline loses a colour from the same start.
    assert not all(row[-1] for row in table.rows)
