"""E1 — convergence time vs n (Thm 1.3: T = O(w² n log n)).

Regenerates the convergence-scaling table for uniform and skewed
weights.  The paper has no empirical table; the reproduced "figure" is
the scaling relationship itself (flat T/(n ln n) column).
"""

from conftest import run_once

from repro.experiments import experiment_convergence_scaling


def test_e1_convergence_scaling(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_convergence_scaling,
        ns=(128, 256, 512, 1024),
        weight_vectors=((1.0, 1.0, 1.0, 1.0), (1.0, 2.0, 3.0, 4.0)),
        seeds=3,
    )
    emit(table)
    assert table.rows


def test_e1_single_run_kernel(benchmark):
    """Microbenchmark of one convergence measurement (n=256)."""
    from repro.core.weights import WeightTable
    from repro.experiments import measure_convergence_time

    weights = WeightTable([1.0, 2.0])
    result = benchmark(
        lambda: measure_convergence_time(weights, 256, seed=0)
    )
    assert result is None or result > 0
