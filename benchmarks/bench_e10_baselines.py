"""E10 — consensus baselines destroy diversity (Sec 1.1 contrast):
Voter / 2-Choices / 3-Majority fixate, Diversification does not."""

from conftest import run_once

from repro.experiments import experiment_baselines, experiment_epidemic


def test_e10b_epidemic_threshold(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_epidemic,
        n=200,
        seeds=5,
    )
    emit(table)
    rows = {row[0]: row for row in table.rows}
    # Sub-threshold dies, strongly super-threshold survives.
    assert rows[0.1][2].startswith("0/")
    assert rows[8.0][2] == "5/5"


def test_e10_baselines(benchmark, emit):
    table = run_once(
        benchmark,
        experiment_baselines,
        n=128,
        weight_vector=(1.0, 2.0, 3.0, 4.0),
        rounds=3000,
    )
    emit(table)
    by_name = {row[0]: row for row in table.rows}
    assert by_name["diversification"][1] == 4  # all colours alive
    assert by_name["voter"][1] < 4  # consensus killed colours
