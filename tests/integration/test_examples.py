"""Integration: every example script is importable and structured
correctly (a main() guard, a module docstring).  Full example runs are
minutes-long and exercised manually; import catches syntax/API drift.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
class TestExampleScripts:
    def test_importable(self, path):
        spec = importlib.util.spec_from_file_location(
            f"example_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # runs top level, not main()
        assert hasattr(module, "main"), f"{path.name} lacks main()"

    def test_has_docstring(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), (
            f"{path.name} lacks a module docstring"
        )
        assert "Run:" in source, f"{path.name} lacks run instructions"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLE_FILES}
    required = {
        "quickstart",
        "ant_task_allocation",
        "adversarial_resilience",
        "derandomised_partition",
        "topology_comparison",
        "fairness_tracking",
    }
    assert required <= names
