"""Integration tests: fairness (Thm 2.12) at small scale."""

import numpy as np
import pytest

from repro.analysis.markov import theoretical_stationary
from repro.core.diversification import Diversification
from repro.core.properties import fairness_error, is_fair
from repro.core.weights import WeightTable
from repro.engine.observers import OccupancyTracker
from repro.engine.population import Population
from repro.engine.simulator import Simulation
from repro.experiments.fairness import run_fairness
from repro.experiments.workloads import colours_from_counts, proportional_counts


@pytest.fixture(scope="module")
def long_run():
    weights = WeightTable([1.0, 2.0])
    n = 60
    protocol = Diversification(weights)
    population = Population.from_colours(
        colours_from_counts(proportional_counts(n, weights)), protocol, k=2
    )
    tracker = OccupancyTracker()
    simulation = Simulation(
        protocol, population, rng=9, observers=[tracker]
    )
    simulation.run(1_200_000)  # 20k parallel rounds
    return weights, tracker


class TestOccupancyConvergence:
    def test_every_agent_near_fair_shares(self, long_run):
        weights, tracker = long_run
        occupancy = tracker.occupancy_fractions()
        assert is_fair(occupancy, weights, tolerance=0.1)

    def test_mean_occupancy_tight(self, long_run):
        weights, tracker = long_run
        occupancy = tracker.occupancy_fractions()
        mean_occ = occupancy.mean(axis=0)
        np.testing.assert_allclose(
            mean_occ, weights.fair_shares(), atol=0.03
        )

    def test_dark_light_split_matches_pi(self, long_run):
        """Each agent spends ≈ π(D_i) dark and π(L_i) light (Sec 2.4)."""
        weights, tracker = long_run
        shade = tracker.shade_occupancy_fractions()  # (n, k, 2)
        pi = theoretical_stationary(weights)
        k = weights.k
        mean_dark = shade[:, :, 1].mean(axis=0)
        mean_light = shade[:, :, 0].mean(axis=0)
        np.testing.assert_allclose(mean_dark, pi[:k], atol=0.04)
        np.testing.assert_allclose(mean_light, pi[k:], atol=0.04)


class TestFairnessImprovesWithHorizon:
    def test_deviation_shrinks(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        n = 48
        summaries = run_fairness(
            weights, n, horizons=[50 * n, 1600 * n], seed=10
        )
        assert (
            summaries[1]["mean_colour_dev"] < summaries[0]["mean_colour_dev"]
        )

    def test_summary_fields(self):
        weights = WeightTable([1.0, 1.0])
        summaries = run_fairness(weights, 30, horizons=[3000], seed=11)
        summary = summaries[0]
        for key in (
            "horizon",
            "max_colour_dev",
            "mean_colour_dev",
            "max_state_dev",
            "mean_state_dev",
        ):
            assert key in summary
        assert summary["horizon"] == 3000
