"""Fault-tolerant sweep execution, end to end.

The contract under test: a sweep with injected transient faults plus a
retry policy produces a merged table *byte-identical* to the fault-free
run on the serial, process-pool and fused paths (retried shards re-run
from the same ``(params, seed)``); a crashed or hung worker is detected
and its shard requeued instead of hanging the pool; a fused group whose
mega-batch keeps failing degrades to per-shard execution; and
``max_failures`` completes the healthy shards with a fault report and
requeue entries instead of dying on the first ShardError.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.export import plan_to_json, save_requeue
from repro.experiments.faults import FaultPlan, RetryPolicy, WorkerFailure
from repro.experiments.fusion import (
    FusedMeasurement,
    execute_fused,
    register_fused,
)
from repro.experiments.pipeline import (
    ProcessExecutor,
    ScenarioSpec,
    ShardError,
    execute,
    plan,
)


def measure_probe(params, rng):
    """Cheap, deterministic in (params, seed) — the bit-identity probe."""
    return {"n": params["n"], "draw": float(rng.random())}


def _fused_probe(spec, shards):
    return [
        {"n": shard.params["n"], "draw": float(shard.index) / 100.0}
        for shard in shards
    ]


def make_spec(**overrides):
    fields = {
        "name": "faults-it",
        "measure": measure_probe,
        "grid": {"n": [8, 16, 32]},
        "replications": 2,
        "base_seed": 41,
        "seed_scope": "stream",
    }
    fields.update(overrides)
    return ScenarioSpec(**fields)


def values(result):
    return [entry.value for entry in result.results]


@pytest.fixture(scope="module")
def clean():
    return execute(make_spec())


class TestSerialRetryIdentity:
    def test_transient_faults_recover_bit_identically(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i0:attempts=1,raise:i3:attempts=2",
            shards=len(expanded.shards), base_seed=spec.base_seed,
        )
        result = execute(
            expanded, retry=RetryPolicy(max_attempts=3), faults=faults
        )
        assert values(result) == values(clean)
        report = result.fault_report
        assert report["completed"] == report["total"] == 6
        assert report["shards"]["0"]["attempts"] == 2
        assert report["shards"]["3"]["attempts"] == 3
        assert report["failed"] == []

    def test_corrupt_value_never_reaches_the_table(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "corrupt:i2:attempts=1", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, retry=RetryPolicy(max_attempts=2), faults=faults
        )
        assert values(result) == values(clean)

    def test_exhausted_retries_raise_with_attempt_count(self):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i1:attempts=99", shards=6, base_seed=spec.base_seed
        )
        with pytest.raises(ShardError) as info:
            execute(
                expanded, retry=RetryPolicy(max_attempts=3), faults=faults
            )
        assert info.value.attempts == 3
        assert "after 3 attempts" in str(info.value)

    @settings(max_examples=12, deadline=None)
    @given(
        targets=st.sets(st.integers(min_value=0, max_value=5), max_size=4),
        fault_attempts=st.integers(min_value=1, max_value=2),
    )
    def test_property_any_transient_fault_set_is_bit_identical(
        self, targets, fault_attempts
    ):
        # Property (satellite S4): whatever transient fault set is
        # injected, retries reproduce the fault-free values exactly.
        spec = make_spec()
        expanded = plan(spec)
        baseline = execute(spec)
        if targets:
            text = ",".join(
                f"raise:i{index}:attempts={fault_attempts}"
                for index in sorted(targets)
            )
            faults = FaultPlan.from_spec(
                text, shards=6, base_seed=spec.base_seed
            )
        else:
            faults = None
        result = execute(
            expanded, retry=RetryPolicy(max_attempts=3), faults=faults
        )
        assert values(result) == values(baseline)


class TestPoolSupervision:
    def test_worker_crash_is_detected_and_requeued(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "crash:i1:attempts=1", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded,
            executor=ProcessExecutor(2),
            retry=RetryPolicy(max_attempts=3),
            faults=faults,
        )
        assert values(result) == values(clean)
        entry = result.fault_report["shards"]["1"]
        assert entry["ok"] and entry["attempts"] == 2
        assert "worker process died" in entry["errors"][0]

    def test_hung_shard_is_killed_at_deadline_and_requeued(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "hang:i2:attempts=1:seconds=60",
            shards=6, base_seed=spec.base_seed,
        )
        result = execute(
            expanded,
            executor=ProcessExecutor(2),
            retry=RetryPolicy(max_attempts=2, timeout_s=0.75),
            faults=faults,
        )
        assert values(result) == values(clean)
        entry = result.fault_report["shards"]["2"]
        assert entry["ok"] and entry["attempts"] == 2
        assert "deadline" in entry["errors"][0]

    def test_pool_transient_raise_matches_serial(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i0:attempts=1,raise:i5:attempts=1",
            shards=6, base_seed=spec.base_seed,
        )
        result = execute(
            expanded,
            executor=ProcessExecutor(2),
            retry=RetryPolicy(max_attempts=2),
            faults=faults,
        )
        assert values(result) == values(clean)

    def test_pool_failure_preserves_worker_traceback(self):
        # Satellite S3: the worker's original traceback text survives
        # the process boundary into the ShardError.
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i1:attempts=99", shards=6, base_seed=spec.base_seed
        )
        with pytest.raises(ShardError) as info:
            execute(expanded, executor=ProcessExecutor(2), faults=faults)
        message = str(info.value)
        assert "Traceback (most recent call last)" in message
        assert "InjectedFault" in message
        assert isinstance(info.value.__cause__, WorkerFailure)
        assert "InjectedFault" in str(info.value.__cause__)


class TestMaxFailures:
    def test_partial_completion_with_requeue_entries(self, clean,
                                                     tmp_path):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i2:attempts=99", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded,
            retry=RetryPolicy(max_attempts=2),
            faults=faults,
            max_failures=1,
        )
        healthy = [e for i, e in enumerate(values(clean)) if i != 2]
        assert values(result) == healthy
        assert result.failed_indices() == [2]
        report = result.fault_report
        assert report["completed"] == 5 and report["total"] == 6
        (entry,) = report["requeue"]
        assert entry["index"] == 2
        assert entry["attempts"] == 2
        assert entry["params"] == dict(expanded.shards[2].params)
        assert "InjectedFault" in entry["error"]
        # The requeue file round-trips through JSON (satellite of the
        # --max-failures contract).
        path = save_requeue(result, tmp_path, profile="quick")
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-requeue/v1"
        assert doc["failed"] == [2]
        assert doc["shards"][0]["index"] == 2

    def test_budget_overrun_raises_for_first_failed_shard(self):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i1:attempts=99,raise:i4:attempts=99",
            shards=6, base_seed=spec.base_seed,
        )
        with pytest.raises(ShardError) as info:
            execute(expanded, faults=faults, max_failures=1)
        assert info.value.shard.index == 1

    def test_zero_budget_still_completes_healthy_shards_in_report(self):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i5:attempts=99", shards=6, base_seed=spec.base_seed
        )
        result = execute(expanded, faults=faults, max_failures=1)
        assert len(result.results) == 5

    def test_no_faults_means_no_requeue_file(self, tmp_path):
        result = execute(make_spec(), max_failures=2)
        assert result.fault_report["failed"] == []
        assert save_requeue(result, tmp_path) is None

    def test_artifact_carries_fault_report(self):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i0:attempts=1", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, retry=RetryPolicy(max_attempts=2), faults=faults
        )
        payload = json.loads(plan_to_json(result))
        assert payload["faults"]["policy"]["max_attempts"] == 2
        assert payload["faults"]["shards"]["0"]["attempts"] == 2
        # A plain run's artifact is unchanged (no fault knobs -> None).
        plain = json.loads(plan_to_json(execute(spec)))
        assert plain["faults"] is None


class TestFusedDegradation:
    @pytest.fixture(autouse=True)
    def fused_probe(self):
        register_fused(
            measure_probe,
            FusedMeasurement(
                family="probe",
                group_key=lambda params: "probe",
                run_group=_fused_probe,
            ),
        )
        yield
        register_fused(measure_probe, None)

    def test_transient_group_fault_retries_fused(self):
        spec = make_spec()
        expanded = plan(spec)
        baseline = execute_fused(spec)
        faults = FaultPlan.from_spec(
            "fuse-raise:i0:attempts=1", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, fused=True,
            retry=RetryPolicy(max_attempts=3), faults=faults,
        )
        assert values(result) == values(baseline)
        assert result.fault_report["degraded_groups"] == []

    def test_permanent_group_fault_degrades_to_per_shard(self, clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "fuse-raise:i0:attempts=99", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, fused=True,
            retry=RetryPolicy(max_attempts=3), faults=faults,
        )
        # Degraded members re-run per shard from their own (params,
        # seed) — bit-identical to the serial path, not to the fused
        # group stream.
        assert values(result) == values(clean)
        (group,) = result.fault_report["degraded_groups"]
        assert group["family"] == "probe"
        assert group["shards"] == [0, 1, 2, 3, 4, 5]
        assert group["fused_attempts"] == 2
        assert "InjectedFault" in group["error"]

    def test_member_worker_fault_poisons_the_group(self, clean):
        # An ordinary raise fault on one member also takes the fused
        # engine call down (a mega-batch row cannot fail alone); the
        # degraded per-shard re-run then retries it away.
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i3:attempts=2", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, fused=True,
            retry=RetryPolicy(max_attempts=3), faults=faults,
        )
        assert values(result) == values(clean)
        assert len(result.fault_report["degraded_groups"]) == 1

    def test_without_fault_knobs_group_failure_raises_legacy_error(self):
        spec = make_spec()

        def exploding_group(spec_, shards):
            raise RuntimeError("engine OOM")

        register_fused(
            measure_probe,
            FusedMeasurement(
                family="probe",
                group_key=lambda params: "probe",
                run_group=exploding_group,
            ),
        )
        with pytest.raises(ShardError) as info:
            execute(spec, fused=True)
        assert "group members:" in str(info.value)
        assert "engine OOM" in str(info.value)

    def test_degraded_plus_max_failures_tolerates_poison_shard(self,
                                                               clean):
        spec = make_spec()
        expanded = plan(spec)
        faults = FaultPlan.from_spec(
            "raise:i4:attempts=99", shards=6, base_seed=spec.base_seed
        )
        result = execute(
            expanded, fused=True,
            retry=RetryPolicy(max_attempts=2), faults=faults,
            max_failures=1,
        )
        healthy = [e for i, e in enumerate(values(clean)) if i != 4]
        assert values(result) == healthy
        assert result.fault_report["failed"] == [4]
        assert result.fault_report["completed"] == 5
