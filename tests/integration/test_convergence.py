"""Integration tests: end-to-end convergence behaviour (Thms 1.3, 2.13)."""

import numpy as np
import pytest

from repro.core.properties import (
    diversity_bound,
    diversity_error,
    equilibrium_dark_counts,
    equilibrium_light_counts,
)
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.experiments.convergence import (
    measure_convergence_time,
    measure_stabilised_error,
)
from repro.experiments.workloads import worst_case_counts


class TestConvergenceToFairShares:
    def test_unit_weights_uniform_partition(self):
        weights = WeightTable.uniform(4)
        engine = AggregateSimulation(
            weights, dark_counts=worst_case_counts(400, 4), rng=0
        )
        engine.run(600_000)
        shares = engine.colour_counts() / engine.n
        np.testing.assert_allclose(shares, 0.25, atol=0.07)

    def test_skewed_weights(self):
        weights = WeightTable([1.0, 2.0, 5.0])
        engine = AggregateSimulation(
            weights, dark_counts=worst_case_counts(400, 3), rng=1
        )
        engine.run(3_000_000)
        shares = engine.colour_counts() / engine.n
        np.testing.assert_allclose(
            shares, weights.fair_shares(), atol=0.07
        )

    def test_heavily_skewed_minority_rises(self):
        """Phase 1 claim: a singleton colour reaches its fair share."""
        weights = WeightTable([1.0, 1.0])
        engine = AggregateSimulation(
            weights, dark_counts=[499, 1], rng=2
        )
        engine.run(1_500_000)
        assert engine.colour_counts()[1] > 150

    def test_dark_light_split_reaches_eq7(self):
        """Thm 2.13: A_i ≈ w_i n/(1+w), a_i ≈ (w_i/w) n/(1+w)."""
        weights = WeightTable([1.0, 3.0])
        n = 800
        engine = AggregateSimulation(
            weights, dark_counts=worst_case_counts(n, 2), rng=3
        )
        engine.run(2_000_000)
        dark_target = equilibrium_dark_counts(n, weights)
        light_target = equilibrium_light_counts(n, weights)
        # Average over a window to kill single-snapshot noise.
        dark_sum = np.zeros(2)
        light_sum = np.zeros(2)
        samples = 50
        for _ in range(samples):
            engine.run(n)
            dark_sum += engine.dark_counts()
            light_sum += engine.light_counts()
        np.testing.assert_allclose(
            dark_sum / samples, dark_target, rtol=0.15
        )
        np.testing.assert_allclose(
            light_sum / samples, light_target, rtol=0.3
        )


class TestMeasurementHelpers:
    def test_convergence_time_found_and_reasonable(self):
        weights = WeightTable([1.0, 2.0])
        hit = measure_convergence_time(weights, 256, seed=4)
        assert hit is not None
        # O(w^2 n log n) with w=3: generous sanity window.
        assert 0 < hit < 30 * 9 * 256 * np.log(256)

    def test_stabilised_error_within_band(self):
        weights = WeightTable([1.0, 2.0])
        error = measure_stabilised_error(weights, 512, seed=5)
        assert error <= 2.0 * diversity_bound(512)

    def test_error_shrinks_with_n(self):
        weights = WeightTable.uniform(3)
        small = np.mean([
            measure_stabilised_error(weights, 128, seed=s)
            for s in range(3)
        ])
        large = np.mean([
            measure_stabilised_error(weights, 1024, seed=s)
            for s in range(3)
        ])
        assert large < small


class TestStaysConverged:
    def test_error_stays_bounded_over_long_window(self):
        """Diversity must *persist* (the T window of Def 1.1(1))."""
        weights = WeightTable([1.0, 2.0])
        n = 512
        engine = AggregateSimulation(
            weights, dark_counts=worst_case_counts(n, 2), rng=6
        )
        engine.run(1_000_000)
        bound = 1.5 * diversity_bound(n)
        for _ in range(100):
            engine.run(2 * n)
            assert diversity_error(engine.colour_counts(), weights) <= bound
