"""Integration: multi-shade aggregate vs agent-level derandomised
protocol — marginal distributions must agree."""

import numpy as np
import pytest

from repro.core.derandomised import DerandomisedDiversification
from repro.core.weights import WeightTable
from repro.engine.multishade import MultiShadeAggregate
from repro.engine.population import Population
from repro.engine.rng import make_rng, spawn
from repro.engine.simulator import Simulation
from repro.experiments.workloads import colours_from_counts


@pytest.fixture(scope="module")
def paired_runs():
    weights = WeightTable([1.0, 3.0])
    counts0 = np.array([30, 10])
    steps = 6000
    seeds = 40
    children = spawn(make_rng(31337), 2 * seeds)
    agent_rows, aggregate_rows = [], []
    agent_light, aggregate_light = [], []
    for index in range(seeds):
        protocol = DerandomisedDiversification(weights.copy())
        population = Population.from_colours(
            colours_from_counts(counts0), protocol, k=2
        )
        Simulation(protocol, population, rng=children[2 * index]).run(steps)
        agent_rows.append(population.colour_counts())
        agent_light.append(population.light_counts())

        engine = MultiShadeAggregate(
            weights.copy(), colour_counts=counts0,
            rng=children[2 * index + 1],
        )
        engine.run(steps)
        aggregate_rows.append(engine.colour_counts())
        aggregate_light.append(engine.light_counts())
    return (
        np.asarray(agent_rows, float),
        np.asarray(aggregate_rows, float),
        np.asarray(agent_light, float),
        np.asarray(aggregate_light, float),
    )


def zscore(a, b):
    stderr = np.sqrt(a.var(ddof=1) / len(a) + b.var(ddof=1) / len(b))
    return float(abs(a.mean() - b.mean()) / max(stderr, 1e-9))


class TestMultiShadeEquivalence:
    def test_colour_count_marginals_agree(self, paired_runs):
        agent, aggregate, _, _ = paired_runs
        for colour in range(2):
            z = zscore(agent[:, colour], aggregate[:, colour])
            assert z < 4.0, f"colour {colour}: z={z}"

    def test_shade_zero_marginals_agree(self, paired_runs):
        _, _, agent_light, aggregate_light = paired_runs
        for colour in range(2):
            z = zscore(agent_light[:, colour], aggregate_light[:, colour])
            assert z < 4.0, f"colour {colour} light: z={z}"

    def test_population_conserved_everywhere(self, paired_runs):
        agent, aggregate, _, _ = paired_runs
        assert (agent.sum(axis=1) == 40).all()
        assert (aggregate.sum(axis=1) == 40).all()
