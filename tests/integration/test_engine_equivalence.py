"""Integration tests: agent-level vs aggregate engine equivalence.

The aggregate engine must be exact in distribution.  We compare the
mean and spread of final colour counts across many seeds at a common
horizon, for both the per-step and the event-driven modes.
"""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.population import Population
from repro.engine.rng import make_rng, spawn
from repro.engine.simulator import Simulation
from repro.experiments.workloads import colours_from_counts


def agent_final_counts(weights, dark0, steps, seed):
    protocol = Diversification(weights.copy())
    population = Population.from_colours(
        colours_from_counts(dark0), protocol, k=weights.k
    )
    Simulation(protocol, population, rng=seed).run(steps)
    return population.colour_counts(), population.dark_counts()


def aggregate_final_counts(weights, dark0, steps, seed, per_step=False):
    engine = AggregateSimulation(
        weights.copy(), dark_counts=dark0, rng=seed
    )
    if per_step:
        for _ in range(steps):
            engine.step()
    else:
        engine.run(steps)
    return engine.colour_counts(), engine.dark_counts()


@pytest.fixture(scope="module")
def comparison_data():
    weights = WeightTable([1.0, 3.0])
    dark0 = np.array([30, 10])
    steps = 4000
    seeds = 48
    rng = make_rng(777)
    children = spawn(rng, 3 * seeds)
    agent, agg_event, agg_step = [], [], []
    for i in range(seeds):
        agent.append(
            agent_final_counts(weights, dark0, steps, children[3 * i])
        )
        agg_event.append(
            aggregate_final_counts(
                weights, dark0, steps, children[3 * i + 1]
            )
        )
        agg_step.append(
            aggregate_final_counts(
                weights, dark0, steps, children[3 * i + 2], per_step=True
            )
        )
    stack = lambda rows, idx: np.array([r[idx] for r in rows], dtype=float)
    return {
        "agent_colour": stack(agent, 0),
        "agent_dark": stack(agent, 1),
        "event_colour": stack(agg_event, 0),
        "event_dark": stack(agg_event, 1),
        "step_colour": stack(agg_step, 0),
        "step_dark": stack(agg_step, 1),
    }


def zscore(a: np.ndarray, b: np.ndarray) -> float:
    stderr = np.sqrt(a.var(ddof=1) / len(a) + b.var(ddof=1) / len(b))
    return float(abs(a.mean() - b.mean()) / max(stderr, 1e-9))


class TestEquivalence:
    def test_event_driven_matches_agent_colour_counts(self, comparison_data):
        for colour in range(2):
            z = zscore(
                comparison_data["agent_colour"][:, colour],
                comparison_data["event_colour"][:, colour],
            )
            assert z < 4.0, f"colour {colour} z={z}"

    def test_event_driven_matches_agent_dark_counts(self, comparison_data):
        for colour in range(2):
            z = zscore(
                comparison_data["agent_dark"][:, colour],
                comparison_data["event_dark"][:, colour],
            )
            assert z < 4.0, f"colour {colour} z={z}"

    def test_per_step_matches_event_driven(self, comparison_data):
        for colour in range(2):
            z = zscore(
                comparison_data["step_colour"][:, colour],
                comparison_data["event_colour"][:, colour],
            )
            assert z < 4.0, f"colour {colour} z={z}"

    def test_spreads_comparable(self, comparison_data):
        """Not just the means: the standard deviations should agree
        within a factor of 2 (generous; they estimate the same law)."""
        agent_std = comparison_data["agent_colour"][:, 0].std(ddof=1)
        event_std = comparison_data["event_colour"][:, 0].std(ddof=1)
        assert 0.5 <= (agent_std + 1) / (event_std + 1) <= 2.0
