"""Golden-table regression corpus.

Every registered experiment's quick-profile table is rendered and
compared *byte for byte* against the committed reference under
``tests/golden/``.  Shard seeds depend only on the spec, so any diff
is a real behaviour change — an engine tweak that moves a draw, a
changed default, a formatting change — and must be either fixed or
consciously re-baselined with::

    pytest tests/integration/test_golden_tables.py --update-goldens

Wall-clock-dependent lines (throughput notes) are normalised away;
everything else is exact.
"""

import io
import contextlib
import pathlib
import re

import pytest

from repro.cli import main
from repro.experiments import ALL_EXPERIMENTS

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"

#: Lines whose content depends on wall-clock timing, not on the
#: simulated dynamics (e12's throughput footnote).
TIMING_LINE = re.compile(r"steps/s|seconds|elapsed")


def normalise(text: str) -> str:
    kept = [
        line for line in text.splitlines() if not TIMING_LINE.search(line)
    ]
    return "\n".join(kept).rstrip() + "\n"


def render_quick(name: str) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["run", name, "--quick"])
    assert code == 0, f"repro run {name} --quick exited {code}"
    return normalise(buffer.getvalue())


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_quick_table_matches_golden(name, update_goldens):
    golden = GOLDEN_DIR / f"{name}-quick.txt"
    rendered = render_quick(name)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
        return
    assert golden.exists(), (
        f"missing golden table {golden}; generate it with "
        "pytest tests/integration/test_golden_tables.py --update-goldens"
    )
    assert rendered == golden.read_text(), (
        f"{name} quick table changed; if intended, re-baseline with "
        "pytest tests/integration/test_golden_tables.py --update-goldens"
    )


def test_no_orphan_goldens():
    """Every committed golden corresponds to a registered experiment —
    renames must clean up after themselves."""
    known = {f"{name}-quick.txt" for name in ALL_EXPERIMENTS}
    on_disk = {path.name for path in GOLDEN_DIR.glob("*.txt")}
    assert on_disk <= known, f"orphan goldens: {sorted(on_disk - known)}"
