"""Integration tests: adversarial robustness (Sec 1 claims)."""

import numpy as np
import pytest

from repro.adversary import (
    AddAgents,
    AddColour,
    InterventionSchedule,
    RecolourColour,
    run_with_interventions,
)
from repro.core.properties import diversity_error
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.experiments.workloads import worst_case_counts


def settled_engine(weights, n, seed, settle_steps=800_000):
    engine = AggregateSimulation(
        weights, dark_counts=worst_case_counts(n, weights.k), rng=seed
    )
    engine.run(settle_steps)
    return engine


class TestAgentFlood:
    def test_recovers_after_flood(self):
        weights = WeightTable([1.0, 2.0])
        engine = settled_engine(weights, 400, seed=0)
        engine.add_agents(0, 200, dark=True)  # flood the light colour
        spike = diversity_error(engine.colour_counts(), weights)
        assert spike > 0.15  # the shock is visible
        engine.run(1_500_000)
        recovered = diversity_error(engine.colour_counts(), weights)
        assert recovered < 0.08

    def test_population_grows_exactly(self):
        weights = WeightTable([1.0, 2.0])
        engine = settled_engine(weights, 300, seed=1, settle_steps=1000)
        engine.add_agents(1, 57)
        assert engine.n == 357


class TestColourAddition:
    def test_new_colour_reaches_fair_share(self):
        weights = WeightTable([1.0, 1.0])
        engine = settled_engine(weights, 400, seed=2)
        engine.add_colour(2.0, count=1, dark=True)  # lone dark newcomer
        engine.run(3_000_000)
        counts = engine.colour_counts()
        shares = counts / counts.sum()
        fair = weights.fair_shares()  # now includes the new colour
        np.testing.assert_allclose(shares, fair, atol=0.08)

    def test_new_colour_never_vanishes(self):
        weights = WeightTable([1.0, 1.0])
        engine = settled_engine(weights, 200, seed=3, settle_steps=100_000)
        colour = engine.add_colour(3.0, count=1, dark=True)
        for _ in range(50):
            engine.run(10_000)
            assert engine.dark_counts()[colour] >= 1


class TestColourRemoval:
    def test_recolour_redistributes(self):
        """The paper's red->blue example: after removal the remaining
        colours re-balance to their renormalised shares."""
        weights = WeightTable([1.0, 1.0, 2.0])
        engine = settled_engine(weights, 400, seed=4)
        engine.recolour(0, 1)
        assert engine.colour_counts()[0] == 0
        engine.run(2_000_000)
        counts = engine.colour_counts()
        shares = counts / counts.sum()
        # Colour 0 can never come back (no dark support) — shares of
        # colours 1 and 2 renormalise to 1/3 and 2/3... but note their
        # weights are unchanged, so targets stay w_i/w over survivors:
        # with colour 0 dead, survivors split mass ∝ (1, 2).
        assert shares[0] == 0.0
        np.testing.assert_allclose(shares[1:], [1 / 3, 2 / 3], atol=0.08)


class TestScheduledShocks:
    def test_schedule_applies_in_order(self):
        weights = WeightTable([1.0, 1.0])
        engine = AggregateSimulation(
            weights, dark_counts=[100, 100], rng=5
        )
        schedule = InterventionSchedule(
            [
                (1_000, AddAgents(0, 50)),
                (2_000, AddColour(1.0, 5)),
                (3_000, RecolourColour(0, 1)),
            ]
        )
        run_with_interventions(engine, 5_000, schedule)
        assert engine.time == 5_000
        assert engine.k == 3
        assert engine.n == 255
        assert engine.colour_counts()[0] == 0
