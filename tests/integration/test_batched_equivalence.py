"""Integration tests: batched vs scalar aggregate engine equivalence.

The batched engine must be *distribution-identical* to the scalar
:class:`~repro.engine.aggregate.AggregateSimulation`, not just faster.
With fixed seeds we run R >= 50 replications through one batched engine
and through R independent scalar engines, then compare the final
colour-count distributions with two-sample Kolmogorov-Smirnov tests
(per colour, over replications) and a chi-squared contingency test
(pooled colour totals), for a uniform and a skewed weight table, in
both the per-step and the event-driven modes.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.batched import BatchedAggregateSimulation
from repro.engine.rng import make_rng, spawn

REPLICATIONS = 64
STEPS = 1500
DARK0 = (30, 15, 15)  # n = 60, skewed start
P_FLOOR = 1e-3  # identical laws: p-values are uniform, so this is lax

WEIGHTS = {
    "uniform": (1.0, 1.0, 1.0),
    "skewed": (1.0, 2.0, 3.0),
}
MODES = ("per-step", "event-driven")


def batched_finals(weights: WeightTable, mode: str, seed: int) -> np.ndarray:
    engine = BatchedAggregateSimulation(
        weights.copy(), list(DARK0), replications=REPLICATIONS, rng=seed
    )
    if mode == "per-step":
        engine.run_per_step(STEPS)
    else:
        engine.run(STEPS)
    return engine.colour_counts()


def scalar_finals(weights: WeightTable, mode: str, seed: int) -> np.ndarray:
    finals = []
    for child in spawn(make_rng(seed), REPLICATIONS):
        engine = AggregateSimulation(
            weights.copy(), dark_counts=list(DARK0), rng=child
        )
        if mode == "per-step":
            for _ in range(STEPS):
                engine.step()
        else:
            engine.run(STEPS)
        finals.append(engine.colour_counts())
    return np.asarray(finals)


@pytest.fixture(scope="module")
def distributions():
    """(case, mode) -> (batched (R, k), scalar (R, k)) final counts."""
    out = {}
    for case, vector in WEIGHTS.items():
        for mode in MODES:
            weights = WeightTable(vector)
            out[case, mode] = (
                batched_finals(weights, mode, seed=101),
                scalar_finals(weights, mode, seed=202),
            )
    return out


@pytest.mark.parametrize("case", sorted(WEIGHTS))
@pytest.mark.parametrize("mode", MODES)
class TestBatchedScalarEquivalence:
    def test_population_conserved(self, distributions, case, mode):
        batched, scalar = distributions[case, mode]
        assert batched.shape == scalar.shape == (REPLICATIONS, 3)
        assert (batched.sum(axis=1) == sum(DARK0)).all()
        assert (scalar.sum(axis=1) == sum(DARK0)).all()

    def test_ks_per_colour(self, distributions, case, mode):
        """Final count of each colour: same distribution over runs."""
        batched, scalar = distributions[case, mode]
        for colour in range(3):
            result = stats.ks_2samp(batched[:, colour], scalar[:, colour])
            assert result.pvalue > P_FLOOR, (
                f"{case}/{mode} colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_chi_squared_pooled_counts(self, distributions, case, mode):
        """Pooled colour totals: same categorical distribution."""
        batched, scalar = distributions[case, mode]
        table = np.stack([batched.sum(axis=0), scalar.sum(axis=0)])
        result = stats.chi2_contingency(table)
        assert result.pvalue > P_FLOOR, (
            f"{case}/{mode}: chi2 p={result.pvalue:.2e}\n{table}"
        )

    def test_spreads_comparable(self, distributions, case, mode):
        """Not just location: per-colour standard deviations estimate
        the same law, so they should agree within a factor of 2."""
        batched, scalar = distributions[case, mode]
        for colour in range(3):
            ratio = (batched[:, colour].std(ddof=1) + 1.0) / (
                scalar[:, colour].std(ddof=1) + 1.0
            )
            assert 0.5 <= ratio <= 2.0, f"{case}/{mode} colour {colour}"


class TestBatchedModesAgree:
    """The batched engine's own two modes simulate the same chain."""

    def test_per_step_matches_event_driven(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        step_counts = batched_finals(weights, "per-step", seed=303)
        event_counts = batched_finals(weights, "event-driven", seed=404)
        for colour in range(3):
            result = stats.ks_2samp(
                step_counts[:, colour], event_counts[:, colour]
            )
            assert result.pvalue > P_FLOOR, f"colour {colour}"


class TestLightenOverrideEquivalence:
    """The lighten_probabilities fast path (A2 ablation) matches the
    scalar engine under the same override."""

    def test_unit_lightening(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        ones = [1.0, 1.0, 1.0]
        engine = BatchedAggregateSimulation(
            weights.copy(), list(DARK0),
            replications=REPLICATIONS, rng=11,
            lighten_probabilities=ones,
        )
        engine.run(STEPS)
        batched = engine.colour_counts()
        finals = []
        for child in spawn(make_rng(22), REPLICATIONS):
            scalar = AggregateSimulation(
                weights.copy(), dark_counts=list(DARK0), rng=child,
                lighten_probabilities=ones,
            )
            scalar.run(STEPS)
            finals.append(scalar.colour_counts())
        scalar_counts = np.asarray(finals)
        for colour in range(3):
            result = stats.ks_2samp(
                batched[:, colour], scalar_counts[:, colour]
            )
            assert result.pvalue > P_FLOOR, f"colour {colour}"


class TestAdversarialBatchedEquivalence:
    """The fused batched engine under an E7-style intervention schedule
    (agent flood, then a brand-new dark colour) must match the scalar
    per-replication loop in distribution — final counts per colour,
    including the adversarially added one."""

    N = 60
    STEPS = 2000

    def make_schedule(self):
        from repro.adversary.interventions import AddAgents, AddColour
        from repro.adversary.schedule import InterventionSchedule

        return InterventionSchedule(
            [
                (self.STEPS // 3, AddAgents(colour=0, count=self.N // 2)),
                (2 * self.STEPS // 3, AddColour(weight=2.0, count=1)),
            ]
        )

    def finals(self, batched: bool, seed: int) -> np.ndarray:
        from repro.experiments.runner import run_aggregate

        batch = run_aggregate(
            WeightTable([1.0, 2.0, 3.0]), self.N, self.STEPS,
            seed=seed, replications=REPLICATIONS,
            schedule=self.make_schedule(), batched=batched,
        )
        assert batch.batched is batched
        assert batch.weights.k == 4  # widened by the schedule
        return batch.final_colour_counts

    @pytest.fixture(scope="class")
    def adversarial(self):
        return self.finals(True, seed=17), self.finals(False, seed=34)

    def test_population_conserved(self, adversarial):
        batched, scalar = adversarial
        expected = self.N + self.N // 2 + 1
        assert batched.shape == scalar.shape == (REPLICATIONS, 4)
        assert (batched.sum(axis=1) == expected).all()
        assert (scalar.sum(axis=1) == expected).all()

    def test_ks_per_colour(self, adversarial):
        batched, scalar = adversarial
        for colour in range(4):
            result = stats.ks_2samp(
                batched[:, colour], scalar[:, colour]
            )
            assert result.pvalue > P_FLOOR, (
                f"colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_bit_reproducible_from_one_seed(self):
        np.testing.assert_array_equal(
            self.finals(True, seed=91), self.finals(True, seed=91)
        )
