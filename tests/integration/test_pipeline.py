"""Integration tests for the declarative experiment pipeline: plan
expansion, seed scopes, serial/parallel determinism, shard failure
reporting and the JSON artifact round-trip."""

import json

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.engine.rng import make_rng, spawn, spawn_sequences
from repro.experiments.convergence import (
    measure_stabilised_error,
    spec_diversity_error,
)
from repro.experiments.export import (
    load_plan,
    plan_table,
    save_plan,
)
from repro.experiments.pipeline import (
    ProcessExecutor,
    ScenarioSpec,
    SerialExecutor,
    ShardError,
    execute,
    make_executor,
    plan,
)
from repro.experiments.report import format_table


def _echo_measure(params, rng):
    """Returns its params and the first draw — pins seed derivations."""
    return {"params": dict(params), "draw": float(rng.random())}


_CALLS: list[str] = []


def _failing_measure(params, rng):
    """Fails on one marked cell, succeeds elsewhere."""
    _CALLS.append(params["x"])
    if params["x"] == "bad":
        raise RuntimeError("boom in the measurement")
    return {"x": params["x"]}


class TestSpecValidation:
    def test_unknown_seed_scope_rejected(self):
        with pytest.raises(ValueError, match="seed_scope"):
            ScenarioSpec(name="t", measure=_echo_measure, seed_scope="odd")

    def test_cell_seed_defaults_to_base_seed(self):
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"a": (1, 2)},
            base_seed=404, seed_scope="direct",
        )
        result = execute(spec)
        expected = float(np.random.default_rng(404).random())
        assert [v["draw"] for v in result.values()] == [expected, expected]

    def test_direct_scope_rejects_replications(self):
        with pytest.raises(ValueError, match="direct"):
            ScenarioSpec(
                name="t", measure=_echo_measure, seed_scope="direct",
                cell_seed=lambda p: 0, replications=3,
            )

    def test_at_least_one_replication(self):
        with pytest.raises(ValueError, match="replication"):
            ScenarioSpec(
                name="t", measure=_echo_measure, replications=0
            )


class TestPlanExpansion:
    def test_grid_product_order_outer_axis_first(self):
        spec = ScenarioSpec(
            name="t",
            measure=_echo_measure,
            grid={"a": (1, 2), "b": ("x", "y")},
            fixed={"c": 7},
        )
        cells = plan(spec).cells
        assert cells == [
            {"c": 7, "a": 1, "b": "x"},
            {"c": 7, "a": 1, "b": "y"},
            {"c": 7, "a": 2, "b": "x"},
            {"c": 7, "a": 2, "b": "y"},
        ]

    def test_empty_grid_is_one_cell(self):
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, fixed={"c": 1}
        )
        expanded = plan(spec)
        assert expanded.cells == [{"c": 1}]
        assert len(expanded.shards) == 1

    def test_shard_indices_and_replications(self):
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"a": (1, 2)},
            replications=3,
        )
        shards = plan(spec).shards
        assert [s.index for s in shards] == list(range(6))
        assert [s.cell for s in shards] == [0, 0, 0, 1, 1, 1]
        assert [s.replication for s in shards] == [0, 1, 2, 0, 1, 2]


class TestSeedScopes:
    """The three scopes reproduce the legacy seeding idioms exactly."""

    def test_stream_scope_matches_shared_generator_spawn(self):
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"a": (1, 2, 3)},
            replications=2, base_seed=1234, seed_scope="stream",
        )
        result = execute(spec)
        # Legacy idiom: one generator, spawn(rng, R) per cell in order.
        rng = make_rng(1234)
        legacy = []
        for _ in range(3):
            legacy.extend(
                float(child.random()) for child in spawn(rng, 2)
            )
        assert [v["draw"] for v in result.values()] == legacy

    def test_cell_scope_matches_per_cell_spawn(self):
        base = 509
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"n": (64, 96)},
            replications=2, base_seed=base, seed_scope="cell",
            cell_seed=lambda params: base + params["n"],
        )
        result = execute(spec)
        legacy = []
        for n in (64, 96):
            legacy.extend(
                float(child.random())
                for child in spawn(make_rng(base + n), 2)
            )
        assert [v["draw"] for v in result.values()] == legacy

    def test_direct_scope_matches_raw_seed(self):
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"a": ("p", "q")},
            base_seed=404, seed_scope="direct",
            cell_seed=lambda params: 404,
        )
        result = execute(spec)
        # Legacy idiom: the same integer seed passed to every run.
        expected = float(np.random.default_rng(404).random())
        assert [v["draw"] for v in result.values()] == [expected, expected]

    def test_spawn_sequences_prefix_stable(self):
        long = spawn_sequences(77, 5)
        short = spawn_sequences(77, 2)
        for a, b in zip(short, long):
            assert np.random.default_rng(a).random() == \
                np.random.default_rng(b).random()


class TestExecutorDeterminism:
    def test_serial_and_parallel_results_bit_identical(self):
        spec = spec_diversity_error(
            ns=(64, 96), weight_vector=(1.0, 2.0), seeds=2
        )
        serial = execute(spec)
        parallel = execute(spec, jobs=2)
        assert isinstance(serial.jobs, int) and serial.jobs == 1
        assert parallel.jobs == 2
        assert serial.values() == parallel.values()
        assert serial.table().render() == parallel.table().render()

    def test_pipeline_reproduces_legacy_sweep_loop(self):
        base_seed = 509
        ns = (64, 96)
        seeds = 2
        weights = WeightTable((1.0, 2.0))
        legacy = {
            n: [
                measure_stabilised_error(weights, n, seed=child)
                for child in spawn(make_rng(base_seed + n), seeds)
            ]
            for n in ns
        }
        result = execute(
            spec_diversity_error(
                ns=ns, weight_vector=(1.0, 2.0), seeds=seeds,
                base_seed=base_seed,
            )
        )
        piped = {
            params["n"]: [value["error"] for value in values]
            for params, values in result.by_cell()
        }
        assert piped == legacy

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ProcessExecutor)
        with pytest.raises(ValueError):
            ProcessExecutor(1)


class TestShardFailure:
    def _spec(self):
        return ScenarioSpec(
            name="exploding-exp",
            measure=_failing_measure,
            grid={"x": ("ok", "bad", "ok2")},
        )

    def test_serial_failure_names_experiment_and_params(self):
        with pytest.raises(ShardError) as excinfo:
            execute(self._spec())
        message = str(excinfo.value)
        assert "exploding-exp" in message
        assert "'x': 'bad'" in message
        assert "boom in the measurement" in message
        assert excinfo.value.params == {"x": "bad"}

    def test_parallel_failure_names_experiment_and_params(self):
        with pytest.raises(ShardError) as excinfo:
            execute(self._spec(), jobs=2)
        message = str(excinfo.value)
        assert "exploding-exp" in message
        assert "'x': 'bad'" in message

    def test_serial_execution_fails_fast(self):
        _CALLS.clear()
        with pytest.raises(ShardError):
            execute(self._spec())
        # The shard after the failing one never ran.
        assert _CALLS == ["ok", "bad"]


class TestArtifactRoundTrip:
    @pytest.fixture
    def executed(self):
        spec = spec_diversity_error(
            ns=(64, 96), weight_vector=(1.0, 2.0), seeds=2
        )
        result = execute(spec)
        return result, result.table()

    def test_reloaded_table_renders_identically(self, executed, tmp_path):
        result, table = executed
        path = save_plan(result, table, tmp_path, profile="quick")
        assert path.name == "e2-quick.json"
        payload = load_plan(path)
        reloaded = plan_table(payload)
        assert reloaded.render() == table.render()
        assert format_table(reloaded.headers, reloaded.rows) == \
            format_table(table.headers, table.rows)

    def test_payload_records_spec_and_shards(self, executed, tmp_path):
        result, table = executed
        payload = load_plan(save_plan(result, table, tmp_path))
        assert payload["experiment"] == "e2"
        assert payload["spec"]["seed_scope"] == "cell"
        assert payload["spec"]["base_seed"] == 509
        assert payload["spec"]["grid"]["n"] == [64, 96]
        assert payload["spec"]["measure"].endswith("_measure_stabilised")
        assert len(payload["shards"]) == 4
        for entry in payload["shards"]:
            assert entry["seconds"] >= 0
            assert "error" in entry["value"]
        # The recorded per-shard seeds rebuild the exact streams used.
        for entry, shard_result in zip(payload["shards"], result.results):
            rebuilt = np.random.SeedSequence(
                entry["seed"]["entropy"],
                spawn_key=tuple(entry["seed"]["spawn_key"]),
            )
            assert (
                np.random.default_rng(rebuilt).random()
                == np.random.default_rng(
                    np.random.SeedSequence(
                        shard_result.shard.seed.entropy,
                        spawn_key=shard_result.shard.seed.spawn_key,
                    )
                ).random()
            )
        # The whole artifact is valid JSON end to end.
        json.dumps(payload)

    def test_load_plan_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="repro-plan"):
            load_plan(path)
