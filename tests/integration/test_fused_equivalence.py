"""Integration tests: fused mega-batch vs per-cell equivalence.

The heterogeneous engine shares one draw stream across all rows, so —
exactly like the batched-vs-scalar precedent — its results must match
the per-cell engines *in distribution*.  With fixed seeds we run each
grid cell's replications fused (one engine for the whole sweep) and
per cell (one batched engine per cell), then compare the per-cell
final-count distributions with two-sample Kolmogorov-Smirnov tests.
The same is checked end-to-end through ``execute(..., fused=True)``
against the per-shard pipeline path, for the array-engine per-row
lighten tables, and structurally for the fused E3/E4 measurements.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.weights import WeightTable
from repro.engine.batched import BatchedAggregateSimulation
from repro.engine.hetero import HeterogeneousAggregateBatch
from repro.experiments.fusion import spec_fused_sweep
from repro.experiments.pipeline import execute, plan

REPLICATIONS = 64
P_FLOOR = 1e-3  # identical laws: p-values are uniform, so this is lax

CELLS = (
    # (weight vector, dark start) — different k, skew and n per cell
    ((1.0, 1.0, 1.0), (20, 20, 20)),
    ((1.0, 2.0, 3.0), (30, 15, 15)),
    ((1.0, 4.0), (70, 20)),
)
STEPS = (1500, 2000, 2500)  # per-cell horizons, deliberately unequal


def fused_finals() -> list[np.ndarray]:
    """All cells × replications in ONE heterogeneous engine."""
    tables = []
    darks = []
    steps = []
    for (vector, dark0), horizon in zip(CELLS, STEPS):
        for _ in range(REPLICATIONS):
            tables.append(WeightTable(vector))
            darks.append(list(dark0))
            steps.append(horizon)
    engine = HeterogeneousAggregateBatch(tables, darks, rng=811)
    engine.run(np.asarray(steps))
    counts = engine.colour_counts()
    out = []
    for cell in range(len(CELLS)):
        rows = counts[cell * REPLICATIONS : (cell + 1) * REPLICATIONS]
        out.append(rows[:, : len(CELLS[cell][0])])
    return out


def per_cell_finals() -> list[np.ndarray]:
    """The per-cell batched loop: one (R, 2k) engine per cell."""
    out = []
    for index, ((vector, dark0), horizon) in enumerate(zip(CELLS, STEPS)):
        engine = BatchedAggregateSimulation(
            WeightTable(vector), list(dark0),
            replications=REPLICATIONS, rng=900 + index,
        )
        engine.run(horizon)
        out.append(engine.colour_counts())
    return out


@pytest.fixture(scope="module")
def finals():
    return fused_finals(), per_cell_finals()


class TestHeteroPerCellEquivalence:
    def test_population_and_padding(self, finals):
        fused, per_cell = finals
        for cell, (vector, dark0) in enumerate(CELLS):
            assert fused[cell].shape == (REPLICATIONS, len(vector))
            assert (fused[cell].sum(axis=1) == sum(dark0)).all()
            assert (per_cell[cell].sum(axis=1) == sum(dark0)).all()

    def test_ks_per_cell_per_colour(self, finals):
        fused, per_cell = finals
        for cell, (vector, _) in enumerate(CELLS):
            for colour in range(len(vector)):
                result = stats.ks_2samp(
                    fused[cell][:, colour], per_cell[cell][:, colour]
                )
                assert result.pvalue > P_FLOOR, (
                    f"cell {cell} colour {colour}: "
                    f"KS p={result.pvalue:.2e}"
                )

    def test_per_step_mode_matches_event_mode(self):
        tables = [WeightTable(CELLS[1][0])] * REPLICATIONS
        darks = [list(CELLS[1][1])] * REPLICATIONS
        stepped = HeterogeneousAggregateBatch(tables, darks, rng=31)
        stepped.run_per_step(1200)
        event = HeterogeneousAggregateBatch(tables, darks, rng=32)
        event.run(1200)
        for colour in range(3):
            result = stats.ks_2samp(
                stepped.colour_counts()[:, colour],
                event.colour_counts()[:, colour],
            )
            assert result.pvalue > P_FLOOR, f"colour {colour}"


class TestFusedPipelineEquivalence:
    """End to end: execute(spec, fused=True) vs the per-shard path."""

    @pytest.fixture(scope="class")
    def results(self):
        spec = spec_fused_sweep(
            weight_vectors=((1.0, 1.0), (1.0, 2.0, 3.0)),
            ns=(60, 90),
            rounds=25,
            replications=48,
            base_seed=2024,
        )
        return execute(spec, fused=True), execute(spec)

    def test_every_shard_fused(self, results):
        from repro.experiments.fusion import fuse

        fused_plan = fuse(plan(results[0].spec))
        assert fused_plan.fallback_shards == 0
        assert fused_plan.fused_shards == 4 * 48

    def test_ks_per_cell(self, results):
        fused, serial = results
        for (params, fvals), (_, svals) in zip(
            fused.by_cell(), serial.by_cell()
        ):
            k = len(params["vector"])
            fcounts = np.array([v["counts"] for v in fvals])
            scounts = np.array([v["counts"] for v in svals])
            assert (fcounts.sum(axis=1) == params["n"]).all()
            assert (scounts.sum(axis=1) == params["n"]).all()
            for colour in range(k):
                result = stats.ks_2samp(
                    fcounts[:, colour], scounts[:, colour]
                )
                assert result.pvalue > P_FLOOR, (
                    f"cell {params}: colour {colour} "
                    f"KS p={result.pvalue:.2e}"
                )

    def test_fused_is_reproducible(self, results):
        spec = results[0].spec
        again = execute(spec, fused=True)
        assert again.values() == results[0].values()


class TestArrayPerRowLightenEquivalence:
    """A fused (R, n) array batch whose rows carry different weight
    vectors (per-row lighten tables) matches per-vector batches."""

    N = 120
    STEPS = 4000
    VECTORS = ((1.0, 2.0, 3.0), (1.0, 1.0, 4.0))

    def test_ks_per_vector_per_colour(self):
        from repro.core.diversification import Diversification
        from repro.engine.array_engine import ArraySimulation
        from repro.experiments.workloads import (
            colours_from_counts,
            worst_case_counts,
        )

        start = colours_from_counts(worst_case_counts(self.N, 3))
        row_vectors = [
            self.VECTORS[row % 2] for row in range(REPLICATIONS)
        ]
        fused = ArraySimulation(
            Diversification(WeightTable(self.VECTORS[0])),
            np.tile(start, (REPLICATIONS, 1)),
            k=3,
            rng=77,
            lighten_rows=np.stack(
                [1.0 / np.asarray(v) for v in row_vectors]
            ),
        )
        fused.run(self.STEPS)
        counts = fused.colour_counts()
        for which, vector in enumerate(self.VECTORS):
            reference = ArraySimulation(
                Diversification(WeightTable(vector)),
                np.tile(start, (REPLICATIONS // 2, 1)),
                k=3,
                rng=200 + which,
            )
            reference.run(self.STEPS)
            ref_counts = reference.colour_counts()
            for colour in range(3):
                result = stats.ks_2samp(
                    counts[which::2, colour], ref_counts[:, colour]
                )
                assert result.pvalue > P_FLOOR, (
                    f"vector {vector} colour {colour}: "
                    f"p={result.pvalue:.2e}"
                )


class TestFusedPhaseMeasurements:
    """The fused E3/E4 implementations reproduce the per-shard
    measurement *structure* exactly (deterministic snapshot schedules)
    and land in the same physical regime."""

    def test_e3_snapshot_times_match_scalar_path(self):
        from repro.experiments.phases import spec_potentials

        spec = spec_potentials(n=256, settle_factor=4.0)
        fused = execute(spec, fused=True)
        serial = execute(spec)
        (fvalue,) = fused.values()
        (svalue,) = serial.values()
        assert fvalue["times"] == svalue["times"]
        for key in ("phi", "psi", "sigma_sq"):
            assert len(fvalue[key]) == len(svalue[key])
        # Same regime: both runs decay phi by orders of magnitude.
        assert fvalue["phi"][-1] < 0.01 * fvalue["phi"][0]
        assert svalue["phi"][-1] < 0.01 * svalue["phi"][0]

    def test_e4_window_means_near_targets(self):
        from repro.core.properties import (
            equilibrium_dark_counts,
            equilibrium_light_counts,
        )
        from repro.experiments.phases import spec_equilibrium

        n = 512
        vector = (1.0, 2.0, 3.0)
        spec = spec_equilibrium(
            n=n, weight_vector=vector, settle_factor=5.0,
            window_samples=32,
        )
        (value,) = execute(spec, fused=True).values()
        weights = WeightTable(vector)
        allowed = 2.0 * n**0.75 * np.log(n) ** 0.25
        dark_err = np.abs(
            np.asarray(value["dark_mean"])
            - equilibrium_dark_counts(n, weights)
        ).max()
        light_err = np.abs(
            np.asarray(value["light_mean"])
            - equilibrium_light_counts(n, weights)
        ).max()
        assert dark_err <= allowed
        assert light_err <= allowed

    def test_e9_fused_matches_serial_in_distribution(self):
        from repro.experiments.variants import spec_derandomised

        spec = spec_derandomised(
            n=96, weight_vector=(1, 2, 3), rounds=250, seeds=12,
        )
        fused = execute(spec, fused=True)
        serial = execute(spec)
        by_cell_fused = dict(
            (params["protocol"], values)
            for params, values in fused.by_cell()
        )
        by_cell_serial = dict(
            (params["protocol"], values)
            for params, values in serial.by_cell()
        )
        # The randomised cells rode the fused array engine; their
        # stabilised errors estimate the same law.
        randomised = stats.ks_2samp(
            [v["error"] for v in by_cell_fused["randomised"]],
            [v["error"] for v in by_cell_serial["randomised"]],
        )
        assert randomised.pvalue > P_FLOOR
        # The derandomised protocol is deterministic given the seed and
        # fell back to the per-shard path — bit-identical values.
        assert (
            by_cell_fused["derandomised"]
            == by_cell_serial["derandomised"]
        )
