"""End-to-end behaviour of the shard result cache across all three
execution paths — serial, process pool and fused mega-batch — plus the
CLI flags and the plan-artifact record."""

import json

import pytest

from repro.cli import main
from repro.experiments.cache import ShardCache
from repro.experiments.export import plan_to_json
from repro.experiments.fusion import measure_sweep_final_counts
from repro.experiments.pipeline import (
    ScenarioSpec,
    ShardError,
    execute,
    plan,
)


def _draw_measure(params, rng):
    return {"a": params["a"], "draw": float(rng.random())}


def _flaky_measure(params, rng):
    if params["a"] == 2:
        raise RuntimeError("deliberate shard failure")
    return {"a": params["a"]}


@pytest.fixture
def spec():
    return ScenarioSpec(
        name="cache-exec",
        measure=_draw_measure,
        grid={"a": (1, 2, 3)},
        replications=2,
        base_seed=17,
    )


def _sweep_spec(ns=(40, 60)):
    # Cell-scoped, so overlapping grids keep their shards' addresses
    # (the same shape as the E19 acceptance sweep, scaled down).
    return ScenarioSpec(
        name="cache-sweep",
        measure=measure_sweep_final_counts,
        grid={"n": tuple(ns)},
        fixed={"vector": (1.0, 2.0), "rounds": 2, "start": "worst"},
        replications=2,
        base_seed=23,
        seed_scope="cell",
        cell_seed=lambda params: 23 + int(params["n"]),
    )


class TestSerialPath:
    def test_cold_then_warm_is_bit_identical(self, spec, tmp_path):
        plain = execute(spec)
        cold = execute(spec, cache=tmp_path / "cache")
        warm = execute(spec, cache=tmp_path / "cache")
        assert plain.values() == cold.values() == warm.values()
        assert plain.cache_stats is None
        assert cold.cache_stats == {
            "enabled": True, "hits": 0, "misses": 6,
            "dir": str(tmp_path / "cache"),
        }
        assert warm.cache_stats["hits"] == 6
        assert warm.cache_stats["misses"] == 0

    def test_warm_run_replays_original_compute_seconds(self, spec, tmp_path):
        cold = execute(spec, cache=tmp_path)
        warm = execute(spec, cache=tmp_path)
        assert [r.seconds for r in warm.results] == [
            r.seconds for r in cold.results
        ]

    def test_partial_overlap_computes_only_new_cells(self, tmp_path):
        execute(_sweep_spec((40, 60)), cache=tmp_path)
        grown = execute(_sweep_spec((40, 60, 80)), cache=tmp_path)
        assert grown.cache_stats["hits"] == 4
        assert grown.cache_stats["misses"] == 2

    def test_artifact_records_cache_stats(self, spec, tmp_path):
        cold = execute(spec, cache=tmp_path)
        payload = json.loads(plan_to_json(cold))
        assert payload["cache"]["enabled"] is True
        assert payload["cache"]["misses"] == 6
        plain = json.loads(plan_to_json(execute(spec)))
        assert plain["cache"] is None


class TestProcessPoolPath:
    def test_pool_warms_and_replays_across_executors(self, spec, tmp_path):
        """Serial and pooled runs compute identical values, so they
        share one key space: a pooled cold run warms a serial warm
        run and vice versa."""
        pooled = execute(spec, jobs=2, cache=tmp_path)
        assert pooled.cache_stats["misses"] == 6
        warm = execute(spec, cache=tmp_path)
        assert warm.cache_stats["hits"] == 6
        assert warm.values() == pooled.values() == execute(spec).values()


class TestFusedPath:
    def test_fused_groups_partition_into_hits_and_misses(self, tmp_path):
        cold = execute(_sweep_spec(), fused=True, cache=tmp_path)
        warm = execute(_sweep_spec(), fused=True, cache=tmp_path)
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["misses"] == 4
        assert warm.cache_stats == {
            "enabled": True, "hits": 4, "misses": 0, "dir": str(tmp_path),
        }
        assert warm.values() == cold.values()

    def test_fused_and_shard_key_spaces_never_mix(self, tmp_path):
        """Fused values are distribution-equivalent, not bit-identical,
        to per-shard values — a warm per-shard cache must not feed a
        fused run, nor the reverse."""
        execute(_sweep_spec(), cache=tmp_path)
        fused = execute(_sweep_spec(), fused=True, cache=tmp_path)
        assert fused.cache_stats["hits"] == 0
        per_shard = execute(_sweep_spec(), cache=tmp_path)
        assert per_shard.cache_stats["hits"] == 4


class TestFailureSemantics:
    def test_failed_sweep_still_warms_the_cache(self, tmp_path):
        """Misses completed before the failing shard are stored before
        the ShardError propagates, so the re-run recomputes only from
        the failure onward."""
        flaky = ScenarioSpec(
            name="cache-flaky",
            measure=_flaky_measure,
            grid={"a": (1, 2, 3)},
            replications=1,
            base_seed=3,
        )
        store = ShardCache(tmp_path)
        with pytest.raises(ShardError, match="deliberate"):
            execute(flaky, cache=store)
        assert store.stats.stores == 1  # the a=1 shard, before the crash
        rerun = ShardCache(tmp_path)
        with pytest.raises(ShardError, match="deliberate"):
            execute(flaky, cache=rerun)
        assert rerun.stats.hits == 1  # a=1 replayed, a=2 recomputed


class TestCliCache:
    def test_warm_rerun_reports_hits_and_matches_cold(
        self, capsys, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold_out = tmp_path / "cold"
        warm_out = tmp_path / "warm"
        assert main(
            ["run", "e8", "--quick", "--cache",
             "--cache-dir", str(cache_dir), "--out", str(cold_out)]
        ) == 0
        cold_err = capsys.readouterr().err
        assert main(
            ["run", "e8", "--quick", "--cache",
             "--cache-dir", str(cache_dir), "--out", str(warm_out)]
        ) == 0
        warm_err = capsys.readouterr().err
        assert "cache:" in cold_err and "cache:" in warm_err
        cold = json.loads((cold_out / "e8-quick.json").read_text())
        warm = json.loads((warm_out / "e8-quick.json").read_text())
        assert cold["cache"]["hits"] == 0
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hits"] == len(warm["shards"]) > 0
        assert cold["table"] == warm["table"]

    def test_cache_dir_implies_cache(self, capsys, tmp_path):
        assert main(
            ["run", "e8", "--quick", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "cache: 0 hit(s)" in capsys.readouterr().err
        assert any(tmp_path.rglob("*.json"))

    def test_no_cache_forces_recompute(self, capsys, tmp_path):
        assert main(
            ["run", "e8", "--quick", "--no-cache",
             "--cache-dir", str(tmp_path)]
        ) == 0
        assert "cache:" not in capsys.readouterr().err
        assert not any(tmp_path.rglob("*.json"))

    def test_cache_disabled_under_checkpointing(self, capsys, tmp_path):
        assert main(
            ["run", "e8", "--quick", "--cache",
             "--cache-dir", str(tmp_path / "cache"),
             "--checkpoint-every", "1",
             "--checkpoint-dir", str(tmp_path / "ckpt")]
        ) == 0
        err = capsys.readouterr().err
        assert "--cache has no effect" in err
        assert not (tmp_path / "cache").exists()
