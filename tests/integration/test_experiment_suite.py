"""Integration smoke tests: every experiment in the suite runs with
small parameters and produces a sane table."""

import pytest

from repro.experiments import (
    experiment_ablations,
    experiment_adversary,
    experiment_baselines,
    experiment_convergence_scaling,
    experiment_derandomised,
    experiment_derandomised_scaling,
    experiment_diversity_error,
    experiment_engines,
    experiment_equilibrium,
    experiment_fairness,
    experiment_markov_chain,
    experiment_phase1,
    experiment_potentials,
    experiment_sustainability,
    experiment_topology,
)
from repro.experiments.table import ExperimentTable


def check(table: ExperimentTable, expected_id: str):
    assert isinstance(table, ExperimentTable)
    assert table.experiment == expected_id
    assert table.rows, "experiment produced no rows"
    rendered = table.render()
    assert expected_id in rendered
    return table


class TestSuiteSmoke:
    def test_e1(self):
        table = experiment_convergence_scaling(
            ns=(64, 128), weight_vectors=((1.0, 1.0),), seeds=2
        )
        check(table, "E1")
        # Every row reports a hitting time.
        assert all(row[-1] >= 1 for row in table.rows)

    def test_e2(self):
        table = experiment_diversity_error(
            ns=(64, 128), weight_vector=(1.0, 2.0), seeds=2
        )
        check(table, "E2")

    def test_e3(self):
        table = experiment_potentials(n=192, settle_factor=6.0)
        check(table, "E3")
        by_name = {row[0]: row for row in table.rows}
        assert set(by_name) == {"phi", "psi", "sigma_sq"}
        # phi drops by a large factor from the worst-case start
        # (columns: name, initial, peak, final, bound, hit, stays).
        assert by_name["phi"][1] > by_name["phi"][3]

    def test_e3b(self):
        table = experiment_phase1(ns=(96, 128), seeds=2)
        check(table, "E3b")
        assert all(row[-1] == "2/2" for row in table.rows)

    def test_e4(self):
        table = experiment_equilibrium(
            n=384, settle_factor=5.0, window_samples=32
        )
        check(table, "E4")
        assert all(row[-1] for row in table.rows), "equilibrium off target"

    def test_e5(self):
        table = experiment_fairness(
            n=64, weight_vector=(1.0, 2.0), horizon_rounds=(100, 400)
        )
        check(table, "E5")

    def test_e6(self):
        table = experiment_sustainability(
            n=48, steps_per_agent=150, seeds=3
        )
        check(table, "E6")
        by_name = {row[0]: row for row in table.rows}
        assert by_name["diversification"][-1] is True

    def test_e7(self):
        table = experiment_adversary(n=256, settle_factor=4.0)
        check(table, "E7")

    def test_e8(self):
        table = experiment_markov_chain(n=64, sim_steps=30_000)
        check(table, "E8")
        assert all(row[-1] for row in table.rows)

    def test_e9(self):
        table = experiment_derandomised(n=128, rounds=600, seeds=1)
        check(table, "E9")

    def test_e9b(self):
        table = experiment_derandomised_scaling(
            ns=(96, 128), seeds=1, settle_rounds=400, window_samples=16
        )
        check(table, "E9b")

    def test_e10(self):
        table = experiment_baselines(n=64, rounds=1200)
        check(table, "E10")
        by_name = {row[0]: row for row in table.rows}
        assert by_name["diversification"][-2] is True  # sustainable

    def test_e10b(self):
        from repro.experiments import experiment_epidemic

        table = experiment_epidemic(n=80, seeds=2, steps_per_agent=400)
        check(table, "E10b")
        # Strongly super-critical epidemics survive.
        assert table.rows[-1][2] == "2/2"

    def test_e11(self):
        table = experiment_topology(n=64, rounds=800)
        check(table, "E11")
        assert len(table.rows) == 4

    def test_e12(self):
        table = experiment_engines(
            n=48, rounds=60, seeds=8, throughput_steps=20_000
        )
        check(table, "E12")

    def test_ablations(self):
        table = experiment_ablations(n=128, rounds=600)
        check(table, "ABL")
        by_name = {row[0]: row for row in table.rows}
        assert by_name["full protocol"][-1] == "weighted"
