"""Integration tests: qualitative behaviour of the baseline dynamics."""

import numpy as np
import pytest

from repro.baselines import (
    AntiVoterModel,
    ThreeMajority,
    TrivialResampling,
    TwoChoices,
    VoterModel,
)
from repro.core.weights import WeightTable
from repro.engine.observers import MinCountTracker
from repro.engine.population import Population
from repro.engine.simulator import Simulation


def run_protocol(protocol, colours, steps, seed, observers=()):
    k = max(colours) + 1
    population = Population.from_colours(colours, protocol, k=k)
    simulation = Simulation(
        protocol, population, rng=seed, observers=list(observers)
    )
    simulation.run(steps)
    return population


class TestConsensusBaselines:
    def test_voter_reaches_consensus(self):
        population = run_protocol(
            VoterModel(), [0] * 20 + [1] * 20, steps=60_000, seed=0
        )
        counts = population.colour_counts()
        assert counts.max() == 40  # consensus: one colour holds all

    def test_two_choices_kills_minority(self):
        population = run_protocol(
            TwoChoices(), [0] * 50 + [1] * 14, steps=100_000, seed=1
        )
        assert population.colour_counts()[1] == 0

    def test_three_majority_collapses_plurality(self):
        population = run_protocol(
            ThreeMajority(), [0] * 40 + [1] * 12 + [2] * 12,
            steps=150_000, seed=2,
        )
        counts = population.colour_counts()
        assert counts.max() >= 60  # near-consensus on the plurality

    def test_voter_violates_sustainability(self):
        tracker = MinCountTracker()
        run_protocol(
            VoterModel(), [0] * 30 + [1] * 2, steps=50_000, seed=3,
            observers=[tracker],
        )
        assert tracker.min_colour_counts.min() == 0


class TestAntiVoter:
    def test_equilibrates_near_half(self):
        population = run_protocol(
            AntiVoterModel(), [0] * 38 + [1] * 2, steps=40_000, seed=4
        )
        share = population.colour_counts()[0] / 40
        assert 0.25 < share < 0.75

    def test_agents_keep_switching(self):
        """The anti-voter equilibrium is dynamic, not frozen."""
        protocol = AntiVoterModel()
        population = Population.from_colours([0] * 10 + [1] * 10, protocol)
        simulation = Simulation(protocol, population, rng=5)
        simulation.run(5_000)
        early_changes = simulation.changes
        simulation.run(5_000)
        assert simulation.changes > early_changes


class TestTrivialResampling:
    def test_reaches_shares_in_expectation(self):
        weights = WeightTable([1.0, 3.0])
        population = run_protocol(
            TrivialResampling(weights), [0] * 40, steps=20_000, seed=6
        )
        share = population.colour_counts()[1] / 40
        assert share == pytest.approx(0.75, abs=0.2)

    def test_counts_touch_zero_eventually(self):
        """Not sustainable: with few agents the minority colour count
        hits zero at some point (binomial fluctuation)."""
        weights = WeightTable([1.0, 8.0])
        tracker = MinCountTracker()
        run_protocol(
            TrivialResampling(weights), [0] * 6 + [1] * 2,
            steps=30_000, seed=7, observers=[tracker],
        )
        assert tracker.min_colour_counts[0] == 0
