"""Shard-level checkpoint/resume through the pipeline executor.

The contract under test: ``execute_checkpointed`` spread over any
number of interrupted invocations returns the same values as one
uninterrupted ``execute`` — including across a mid-plan failure and
across serial/process executors — and refuses to resume a checkpoint
taken from a different spec.
"""

import json

import pytest

from repro.experiments.checkpoint import (
    PLAN_CKPT_FORMAT,
    execute_checkpointed,
    load_plan_checkpoint,
    spec_fingerprint,
)
from repro.experiments.pipeline import ScenarioSpec, ShardError, execute


#: In-process call log / failure switch — works with the serial
#: executor, which runs measures in this process.
CALLS: list = []
ARMED = {"boom": False}


def measure_square(params, rng):
    """Deterministic in (params, seed): the bit-identity probe."""
    CALLS.append(params["n"])
    return {
        "n": params["n"],
        "value": params["n"] * params["gain"],
        "draw": float(rng.random()),
    }


def exploding_measure(params, rng):
    """Fails on n=16 while ARMED — the mid-plan crash probe."""
    value = measure_square(params, rng)
    if ARMED["boom"] and params["n"] == 16:
        raise RuntimeError("boom at n=16")
    return value


def make_spec(measure=measure_square, **overrides):
    fields = {
        "name": "ckpt-it",
        "measure": measure,
        "grid": {"n": [8, 16, 32]},
        "fixed": {"gain": 3},
        "replications": 2,
        "base_seed": 77,
        "seed_scope": "stream",
    }
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestBitIdentity:
    def test_serial_matches_execute(self, tmp_path):
        spec = make_spec()
        plain = execute(spec)
        checkpointed = execute_checkpointed(
            spec, checkpoint=tmp_path / "run.ckpt.json"
        )
        assert checkpointed.values() == plain.values()

    def test_chunked_flushes_match(self, tmp_path):
        spec = make_spec()
        plain = execute(spec)
        result = execute_checkpointed(
            spec, checkpoint=tmp_path / "run.ckpt.json", every=2
        )
        assert result.values() == plain.values()
        doc = load_plan_checkpoint(tmp_path / "run.ckpt.json")
        assert doc["format"] == PLAN_CKPT_FORMAT
        assert len(doc["completed"]) == 6

    def test_process_pool_matches_serial(self, tmp_path):
        spec = make_spec()
        serial = execute_checkpointed(
            spec, checkpoint=tmp_path / "serial.ckpt.json"
        )
        pooled = execute_checkpointed(
            spec, checkpoint=tmp_path / "pooled.ckpt.json", jobs=2, every=4
        )
        assert pooled.values() == serial.values()

    def test_zero_work_resume(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "run.ckpt.json"
        first = execute_checkpointed(spec, checkpoint=path)
        CALLS.clear()
        resumed = execute_checkpointed(spec, checkpoint=path)
        assert not CALLS  # everything came from the checkpoint
        assert resumed.values() == first.values()


class TestFailureRecovery:
    def test_failure_flushes_then_resume_completes(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        ARMED["boom"] = True
        spec = make_spec(measure=exploding_measure)
        try:
            with pytest.raises(ShardError):
                execute_checkpointed(spec, checkpoint=path)
        finally:
            ARMED["boom"] = False
        doc = load_plan_checkpoint(path)
        done_before = len(doc["completed"])
        assert 0 < done_before < 6  # progress survived the crash

        result = execute_checkpointed(spec, checkpoint=path)
        reference = execute(make_spec())
        assert result.values() == reference.values()

    def test_resumed_shards_keep_recorded_seconds(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        spec = make_spec()
        execute_checkpointed(spec, checkpoint=path)
        doc = load_plan_checkpoint(path)
        recorded = {
            int(i): entry["seconds"] for i, entry in doc["completed"].items()
        }
        resumed = execute_checkpointed(spec, checkpoint=path)
        for shard_result in resumed.results:
            assert shard_result.seconds == recorded[shard_result.shard.index]


class TestCompatibility:
    def test_different_spec_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        execute_checkpointed(make_spec(), checkpoint=path)
        changed = make_spec(fixed={"gain": 4})
        assert spec_fingerprint(changed) != spec_fingerprint(make_spec())
        with pytest.raises(ValueError, match="refusing to resume"):
            execute_checkpointed(changed, checkpoint=path)

    def test_resume_false_overwrites(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        execute_checkpointed(make_spec(), checkpoint=path)
        changed = make_spec(fixed={"gain": 4})
        result = execute_checkpointed(changed, checkpoint=path, resume=False)
        assert result.values() == execute(changed).values()
        doc = load_plan_checkpoint(path)
        assert doc["fingerprint"] == spec_fingerprint(changed)

    def test_corrupt_format_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        path.write_text(json.dumps({"format": "nope", "completed": {}}))
        with pytest.raises(ValueError, match=PLAN_CKPT_FORMAT):
            execute_checkpointed(make_spec(), checkpoint=path)

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            execute_checkpointed(
                make_spec(), checkpoint=tmp_path / "x.json", every=0
            )


class TestTornCheckpoint:
    """Satellite S2: resume tolerates a torn repro-plan-ckpt/v1 file."""

    def test_torn_file_resumes_from_last_intact_flush(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        spec = make_spec()
        first = execute_checkpointed(spec, checkpoint=path)
        # Tear the main file mid-write; the previous flush survives as
        # .bak (it covers all but the last shard with every=1).
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        backup = json.loads((tmp_path / "run.ckpt.json.bak").read_text())
        assert len(backup["completed"]) == 5
        CALLS.clear()
        with pytest.warns(RuntimeWarning, match="last intact flush"):
            resumed = execute_checkpointed(spec, checkpoint=path)
        assert resumed.values() == first.values()
        # Only the one shard missing from the .bak flush re-ran.
        assert len(CALLS) == 1
        assert (tmp_path / "run.ckpt.json.corrupt").exists()

    def test_torn_file_without_backup_restarts_from_scratch(
        self, tmp_path
    ):
        path = tmp_path / "run.ckpt.json"
        spec = make_spec()
        first = execute_checkpointed(spec, checkpoint=path)
        path.write_text('{"format": "repro-plan-ckpt/v1", "comp')
        (tmp_path / "run.ckpt.json.bak").unlink()
        CALLS.clear()
        with pytest.warns(RuntimeWarning, match="restarting from scratch"):
            resumed = execute_checkpointed(spec, checkpoint=path)
        assert resumed.values() == first.values()
        assert len(CALLS) == 6  # everything re-ran

    def test_torn_backup_also_restarts(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        spec = make_spec()
        first = execute_checkpointed(spec, checkpoint=path)
        path.write_text("{ torn")
        (tmp_path / "run.ckpt.json.bak").write_text("{ also torn")
        with pytest.warns(RuntimeWarning, match="restarting from scratch"):
            resumed = execute_checkpointed(spec, checkpoint=path)
        assert resumed.values() == first.values()

    def test_injected_tear_then_resume_recovers(self, tmp_path):
        # End-to-end drill: the fault harness tears the checkpoint
        # after the final flush (earlier tears would be healed by the
        # next full rewrite); a later resume survives it.
        from repro.experiments.faults import FaultPlan

        path = tmp_path / "run.ckpt.json"
        spec = make_spec()
        faults = FaultPlan.from_spec("tear-ckpt:i5", shards=6)
        first = execute_checkpointed(spec, checkpoint=path, faults=faults)
        with pytest.raises(json.JSONDecodeError):
            load_plan_checkpoint(path)
        with pytest.warns(RuntimeWarning, match="torn checkpoint"):
            resumed = execute_checkpointed(spec, checkpoint=path)
        assert resumed.values() == first.values()
        assert resumed.values() == execute(spec).values()

    def test_retry_policy_applies_on_checkpointed_path(self, tmp_path):
        from repro.experiments.faults import FaultPlan, RetryPolicy

        spec = make_spec()
        faults = FaultPlan.from_spec("raise:i1:attempts=1", shards=6)
        result = execute_checkpointed(
            spec,
            checkpoint=tmp_path / "run.ckpt.json",
            retry=RetryPolicy(max_attempts=2),
            faults=faults,
        )
        assert result.values() == execute(spec).values()


class TestCliFlags:
    def test_parser_accepts_checkpoint_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run", "e2", "--quick",
                "--checkpoint-every", "2",
                "--checkpoint-dir", "ckpts",
            ]
        )
        assert args.checkpoint_every == 2
        assert args.checkpoint_dir == "ckpts"
        assert not args.resume
        args = build_parser().parse_args(["run", "e2", "--resume"])
        assert args.resume

    def test_fused_and_checkpoint_are_mutually_exclusive(self, tmp_path):
        from repro.cli import main

        code = main(
            [
                "run", "e2", "--quick", "--fused",
                "--checkpoint-every", "1",
                "--checkpoint-dir", str(tmp_path),
            ]
        )
        assert code == 2

    def test_run_then_resume_produces_identical_table(self, tmp_path):
        from repro.cli import main

        base = [
            "run", "e2", "--quick",
            "--checkpoint-dir", str(tmp_path / "ckpts"),
        ]
        code = main(
            base + ["--checkpoint-every", "2", "--out", str(tmp_path / "a")]
        )
        assert code == 0
        code = main(base + ["--resume", "--out", str(tmp_path / "b")])
        assert code == 0
        doc_a = json.loads((tmp_path / "a" / "e2-quick.json").read_text())
        doc_b = json.loads((tmp_path / "b" / "e2-quick.json").read_text())
        assert doc_a["table"] == doc_b["table"]
        values_a = [shard["value"] for shard in doc_a["shards"]]
        values_b = [shard["value"] for shard in doc_b["shards"]]
        assert values_a == values_b
