"""Integration tests: vectorised vs scalar agent-level engine
equivalence.

The array engine must be *distribution-identical* to the scalar
:class:`~repro.engine.simulator.Simulation`, not just faster.  With
fixed seeds we run R replications through the scalar engine (independent
child generators) and through the array engine — both its single-run
segmented mode and its batched ``(R, n)`` mode — then compare the final
colour-count distributions with two-sample Kolmogorov-Smirnov tests per
colour, on the complete graph and on an explicit CSR topology, for the
Diversification protocol and the Voter / 3-Majority baselines.
"""

import numpy as np
import pytest
from scipy import stats

from repro.baselines.three_majority import ThreeMajority
from repro.baselines.voter import VoterModel
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import ArraySimulation
from repro.engine.population import Population
from repro.engine.rng import make_rng, spawn
from repro.engine.simulator import Simulation
from repro.topology import CycleGraph

REPLICATIONS = 64
N = 60
STEPS = 1500
P_FLOOR = 1e-3  # identical laws: p-values are uniform, so this is lax
COLOURS = np.array([0] * 30 + [1] * 15 + [2] * 15)

WEIGHT_VECTOR = (1.0, 2.0, 3.0)


def make_protocol(name: str):
    if name == "diversification":
        return Diversification(WeightTable(WEIGHT_VECTOR))
    if name == "voter":
        return VoterModel()
    return ThreeMajority()


def make_topology(name: str):
    return None if name == "complete" else CycleGraph(N)


CASES = (
    ("diversification", "complete"),
    ("diversification", "cycle"),
    ("voter", "complete"),
    ("3-majority", "complete"),
)


def scalar_finals(protocol_name: str, topology_name: str, seed: int):
    colour_finals, dark_finals = [], []
    for child in spawn(make_rng(seed), REPLICATIONS):
        protocol = make_protocol(protocol_name)
        population = Population.from_colours(
            COLOURS.tolist(), protocol, k=3
        )
        Simulation(
            protocol,
            population,
            topology=make_topology(topology_name),
            rng=child,
        ).run(STEPS)
        colour_finals.append(population.colour_counts())
        dark_finals.append(population.dark_counts())
    return np.asarray(colour_finals), np.asarray(dark_finals)


def array_finals_batched(
    protocol_name: str, topology_name: str, seed: int
):
    simulation = ArraySimulation(
        make_protocol(protocol_name),
        COLOURS,
        k=3,
        topology=make_topology(topology_name),
        rng=seed,
        replications=REPLICATIONS,
    )
    simulation.run(STEPS)
    return simulation.colour_counts(), simulation.dark_counts()


def array_finals_single(
    protocol_name: str, topology_name: str, seed: int
):
    colour_finals, dark_finals = [], []
    for child in spawn(make_rng(seed), REPLICATIONS):
        simulation = ArraySimulation(
            make_protocol(protocol_name),
            COLOURS,
            k=3,
            topology=make_topology(topology_name),
            rng=child,
        )
        simulation.run(STEPS)
        colour_finals.append(simulation.colour_counts())
        dark_finals.append(simulation.dark_counts())
    return np.asarray(colour_finals), np.asarray(dark_finals)


@pytest.fixture(scope="module")
def distributions():
    """(protocol, topology) -> scalar / array-batched / array-single
    final (colour, dark) count matrices, each of shape (R, 3)."""
    out = {}
    for protocol_name, topology_name in CASES:
        out[protocol_name, topology_name] = {
            "scalar": scalar_finals(protocol_name, topology_name, 101),
            "batched": array_finals_batched(
                protocol_name, topology_name, 202
            ),
            "single": array_finals_single(
                protocol_name, topology_name, 303
            ),
        }
    return out


@pytest.mark.parametrize("case", CASES, ids=["/".join(c) for c in CASES])
class TestArrayScalarEquivalence:
    def test_population_conserved(self, distributions, case):
        for counts, _ in distributions[case].values():
            assert counts.shape == (REPLICATIONS, 3)
            assert (counts.sum(axis=1) == N).all()

    def test_ks_batched_vs_scalar(self, distributions, case):
        """Batched (R, n) array mode: same per-colour distribution of
        final colour counts as R independent scalar engines."""
        scalar = distributions[case]["scalar"][0]
        batched = distributions[case]["batched"][0]
        for colour in range(3):
            result = stats.ks_2samp(
                scalar[:, colour], batched[:, colour]
            )
            assert result.pvalue > P_FLOOR, (
                f"{case} colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_ks_single_vs_scalar(self, distributions, case):
        """Single-run segmented mode: same distribution as the scalar
        engine under independent seeds."""
        scalar = distributions[case]["scalar"][0]
        single = distributions[case]["single"][0]
        for colour in range(3):
            result = stats.ks_2samp(scalar[:, colour], single[:, colour])
            assert result.pvalue > P_FLOOR, (
                f"{case} colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_ks_dark_counts(self, distributions, case):
        """The shade split matches too, not just the colour totals."""
        scalar = distributions[case]["scalar"][1]
        batched = distributions[case]["batched"][1]
        for colour in range(3):
            result = stats.ks_2samp(
                scalar[:, colour], batched[:, colour]
            )
            assert result.pvalue > P_FLOOR, (
                f"{case} dark colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_spreads_comparable(self, distributions, case):
        """Not just location: per-colour standard deviations estimate
        the same law, so they should agree within a factor of 2.

        Skipped for the consensus baselines, whose final distributions
        are near-degenerate at this horizon (almost every replication
        ends at the same consensus), making a std ratio dominated by
        single rare outcomes rather than by the law.
        """
        if case[0] != "diversification":
            pytest.skip("near-degenerate consensus distribution")
        scalar = distributions[case]["scalar"][0]
        batched = distributions[case]["batched"][0]
        for colour in range(3):
            ratio = (batched[:, colour].std(ddof=1) + 1.0) / (
                scalar[:, colour].std(ddof=1) + 1.0
            )
            assert 0.5 <= ratio <= 2.0, f"{case} colour {colour}"


class TestRoutedEquivalence:
    """The run_agent routing produces the same distributions whichever
    engine it picks."""

    def test_run_agent_engines_agree(self):
        from repro.experiments.runner import run_agent

        weights = WeightTable(WEIGHT_VECTOR)
        finals = {}
        for engine, seed in (("array", 11), ("scalar", 22)):
            rows = []
            for child in spawn(make_rng(seed), 48):
                record = run_agent(
                    Diversification(weights.copy()), weights, N, STEPS,
                    start="worst", seed=child,
                    record_interval=STEPS, engine=engine,
                )
                rows.append(record.final_colour_counts)
            finals[engine] = np.asarray(rows)
        for colour in range(3):
            result = stats.ks_2samp(
                finals["array"][:, colour], finals["scalar"][:, colour]
            )
            assert result.pvalue > P_FLOOR, f"colour {colour}"


class TestAdversarialArrayEquivalence:
    """The fused (R, n) array engine under an E7-style schedule (agent
    flood + new dark colour) matches R scalar engines each applying the
    same schedule, per-colour in distribution."""

    STEPS = 1500

    def make_schedule(self):
        from repro.adversary.interventions import AddAgents, AddColour
        from repro.adversary.schedule import InterventionSchedule

        return InterventionSchedule(
            [
                (self.STEPS // 3, AddAgents(colour=0, count=N // 2)),
                (2 * self.STEPS // 3, AddColour(weight=2.0, count=2)),
            ]
        )

    def finals(self, engine_name: str, seed: int) -> np.ndarray:
        from repro.experiments.replication import replicate_colour_counts

        weights = WeightTable(WEIGHT_VECTOR)
        counts = replicate_colour_counts(
            weights, N, self.STEPS,
            replications=REPLICATIONS,
            protocol=Diversification(weights.copy()),
            schedule=self.make_schedule(),
            base_seed=seed,
            engine=engine_name,
            batched=engine_name == "array",
        )
        assert weights.k == 3  # caller's table untouched
        return counts

    @pytest.fixture(scope="class")
    def adversarial(self):
        return {
            "array": self.finals("array", seed=51),
            "scalar": self.finals("scalar", seed=62),
        }

    def test_population_conserved(self, adversarial):
        expected = N + N // 2 + 2
        for counts in adversarial.values():
            assert counts.shape == (REPLICATIONS, 4)
            assert (counts.sum(axis=1) == expected).all()

    def test_ks_fused_array_vs_scalar(self, adversarial):
        for colour in range(4):
            result = stats.ks_2samp(
                adversarial["array"][:, colour],
                adversarial["scalar"][:, colour],
            )
            assert result.pvalue > P_FLOOR, (
                f"colour {colour}: KS p={result.pvalue:.2e}"
            )

    def test_bit_reproducible_from_one_seed(self):
        np.testing.assert_array_equal(
            self.finals("array", seed=77), self.finals("array", seed=77)
        )


class TestBaselineKernelEquivalence:
    """Every newly kernelised baseline matches its scalar transition in
    distribution (final colour counts over R replications)."""

    STEPS = 1200

    def cases(self):
        from repro.baselines.anti_voter import AntiVoterModel
        from repro.baselines.epidemic import SISEpidemic
        from repro.baselines.trivial import TrivialResampling
        from repro.baselines.two_choices import TwoChoices
        from repro.baselines.uniform_partition import RandomRecolouring

        half = [0] * 30 + [1] * 30
        return {
            "2-choices": (lambda: TwoChoices(), [0] * 40 + [1] * 20, 2),
            "anti-voter": (lambda: AntiVoterModel(), list(half), 2),
            "sis": (lambda: SISEpidemic(0.7, 0.2), [0] * 45 + [1] * 15, 2),
            "random-recolouring": (
                lambda: RandomRecolouring(3), list(COLOURS), 3
            ),
            "trivial": (
                lambda: TrivialResampling(
                    WeightTable(WEIGHT_VECTOR), 0.8
                ),
                list(COLOURS),
                3,
            ),
        }

    @pytest.mark.parametrize(
        "name",
        ["2-choices", "anti-voter", "sis", "random-recolouring", "trivial"],
    )
    def test_ks_batched_vs_scalar(self, name):
        factory, colours, k = self.cases()[name]
        batched = ArraySimulation(
            factory(),
            np.asarray(colours),
            k=k,
            rng=404,
            replications=REPLICATIONS,
        )
        batched.run(self.STEPS)
        batched_finals = batched.colour_counts()
        scalar_rows = []
        for child in spawn(make_rng(505), REPLICATIONS):
            protocol = factory()
            population = Population.from_colours(colours, protocol, k=k)
            Simulation(protocol, population, rng=child).run(self.STEPS)
            scalar_rows.append(population.colour_counts())
        scalar_finals = np.asarray(scalar_rows)
        for colour in range(k):
            result = stats.ks_2samp(
                batched_finals[:, colour], scalar_finals[:, colour]
            )
            assert result.pvalue > P_FLOOR, (
                f"{name} colour {colour}: KS p={result.pvalue:.2e}"
            )
