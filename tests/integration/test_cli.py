"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_accepts_experiments(self):
        args = build_parser().parse_args(["run", "e1", "e2", "--quick"])
        assert args.experiments == ["e1", "e2"]
        assert args.quick

    def test_demo_defaults_to_one_batched_replication(self):
        args = build_parser().parse_args(["demo"])
        assert args.replications == 1
        assert args.batched

    def test_demo_accepts_replications_and_batched_flags(self):
        args = build_parser().parse_args(
            ["demo", "--replications", "25", "--no-batched"]
        )
        assert args.replications == 25
        assert not args.batched

    def test_demo_engine_defaults_to_aggregate(self):
        args = build_parser().parse_args(["demo"])
        assert args.engine == "aggregate"

    def test_demo_accepts_engine_choices(self):
        for engine in ("aggregate", "scalar", "array"):
            args = build_parser().parse_args(["demo", "--engine", engine])
            assert args.engine == engine
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--engine", "bogus"])


class TestQuickOverrides:
    def test_every_override_names_a_real_experiment(self):
        from repro.cli import QUICK_OVERRIDES
        from repro.experiments import ALL_EXPERIMENTS

        unknown = set(QUICK_OVERRIDES) - set(ALL_EXPERIMENTS)
        assert not unknown, f"orphan quick overrides: {unknown}"

    def test_every_experiment_has_a_quick_override(self):
        from repro.cli import QUICK_OVERRIDES
        from repro.experiments import ALL_EXPERIMENTS

        missing = set(ALL_EXPERIMENTS) - set(QUICK_OVERRIDES)
        assert not missing, f"experiments without quick mode: {missing}"

    def test_overrides_are_valid_kwargs(self):
        import inspect

        from repro.cli import QUICK_OVERRIDES
        from repro.experiments import ALL_EXPERIMENTS

        for name, overrides in QUICK_OVERRIDES.items():
            parameters = inspect.signature(
                ALL_EXPERIMENTS[name]
            ).parameters
            for key in overrides:
                assert key in parameters, f"{name}: bad kwarg {key!r}"


class TestRegistryProfiles:
    def test_every_experiment_has_quick_and_full(self):
        from repro.experiments import REGISTRY

        for name, definition in REGISTRY.items():
            assert set(definition.profiles) >= {"quick", "full"}, name
            assert definition.profiles["full"] == {}, name

    def test_profiles_are_valid_kwargs(self):
        import inspect

        from repro.experiments import REGISTRY

        for name, definition in REGISTRY.items():
            parameters = inspect.signature(definition.run).parameters
            for profile, overrides in definition.profiles.items():
                for key in overrides:
                    assert key in parameters, (
                        f"{name}/{profile}: bad kwarg {key!r}"
                    )

    def test_spec_builders_share_run_signature(self):
        import inspect

        from repro.experiments import REGISTRY

        for name, definition in REGISTRY.items():
            if definition.spec is None:
                continue
            run_params = set(
                inspect.signature(definition.run).parameters.keys()
            )
            # ``fused`` is an execution-mode flag (like the CLI's
            # --fused/--jobs), not a scenario parameter, so spec
            # builders deliberately do not take it.
            assert (
                set(inspect.signature(definition.spec).parameters.keys())
                == run_params - {"fused"}
            ), name


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "e12" in out

    def test_list_shows_profiles_column(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "profiles" in out
        assert "full/quick" in out

    def test_list_survives_empty_docstring(self, capsys, monkeypatch):
        from repro import experiments
        from repro.experiments import ExperimentDef

        def _undocumented():
            return None

        _undocumented.__doc__ = "   \n  "
        monkeypatch.setitem(
            experiments.REGISTRY,
            "zz-bare",
            ExperimentDef("zz-bare", _undocumented, {"full": {}}),
        )
        assert main(["list"]) == 0
        assert "zz-bare" in capsys.readouterr().out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_quick_e8(self, capsys):
        assert main(["run", "e8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[E8]" in out

    def test_run_fused_flag_routes_through_fusion_layer(self, capsys):
        # e8 has no fused implementation: the flag must still work,
        # with every shard on the FusedExecutor's fallback path.
        assert main(["run", "e8", "--quick", "--fused"]) == 0
        out = capsys.readouterr().out
        assert "[E8]" in out

    def test_run_fused_composes_with_jobs(self, capsys):
        # e8's shards all fall back (no fused implementation), and
        # fallback shards honour --jobs through the process pool.
        assert main(["run", "e8", "--quick", "--fused", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "[E8]" in captured.out

    def test_run_fused_on_non_pipeline_experiment_notes_no_effect(
        self, capsys
    ):
        # e12 runs outside the pipeline: the flag must not be silently
        # swallowed.
        assert main(["run", "e12", "--quick", "--fused"]) == 0
        captured = capsys.readouterr()
        assert "[E12]" in captured.out
        assert "--fused has no effect" in captured.err

    def test_run_profile_quick_matches_quick_flag(self, capsys):
        assert main(["run", "e8", "--quick"]) == 0
        quick_out = capsys.readouterr().out
        assert main(["run", "e8", "--profile", "quick"]) == 0
        assert capsys.readouterr().out == quick_out

    def test_run_unknown_profile_fails(self, capsys):
        assert main(["run", "e8", "--profile", "huge"]) == 2
        err = capsys.readouterr().err
        assert "no 'huge' profile" in err

    def test_run_conflicting_profile_and_quick_fails(self, capsys):
        assert main(["run", "e8", "--quick", "--profile", "full"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_run_parallel_jobs_matches_serial(self, capsys):
        assert main(["run", "e8", "--quick"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "e8", "--quick", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_run_out_writes_plan_artifact(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main(
            ["run", "e8", "--quick", "--out", str(out_dir)]
        ) == 0
        captured = capsys.readouterr()
        path = out_dir / "e8-quick.json"
        assert path.exists()
        assert str(path) in captured.err
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-plan/v1"
        assert payload["experiment"] == "e8"
        assert payload["profile"] == "quick"
        assert payload["table"]["experiment"] == "E8"
        assert len(payload["shards"]) == 1

    def test_run_out_writes_table_for_legacy_experiment(
        self, capsys, tmp_path
    ):
        # e12 has no scenario spec; --out falls back to the table JSON
        # (same profile-suffixed naming as plan artifacts).
        out_dir = tmp_path / "artifacts"
        assert main(
            ["run", "e12", "--quick", "--out", str(out_dir)]
        ) == 0
        capsys.readouterr()
        payload = json.loads((out_dir / "e12-quick.json").read_text())
        assert payload["experiment"] == "E12"

    def test_run_out_requires_a_directory(self):
        # A bare --out must not swallow a following experiment id.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--out"])

    def test_demo(self, capsys):
        code = main(
            ["demo", "--n", "200", "--weights", "1,2", "--rounds", "400",
             "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diversity error" in out
        assert "fair share" in out

    def test_demo_invalid_weights(self):
        with pytest.raises(SystemExit):
            main(["demo", "--weights", "0.2,zzz"])

    def test_demo_replicated_batched(self, capsys):
        code = main(
            ["demo", "--n", "120", "--weights", "1,2", "--rounds", "200",
             "--seed", "5", "--replications", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replications=20" in out
        assert "batched engine" in out
        assert "mean count" in out
        assert "diversity error" in out

    def test_demo_replicated_scalar_fallback(self, capsys):
        code = main(
            ["demo", "--n", "80", "--weights", "1,2", "--rounds", "100",
             "--seed", "5", "--replications", "4", "--no-batched"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replications=4" in out
        assert "scalar engine" in out

    def test_demo_array_engine(self, capsys):
        code = main(
            ["demo", "--n", "200", "--weights", "1,2", "--rounds", "400",
             "--seed", "3", "--engine", "array"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diversity error" in out
        assert "fair share" in out

    def test_demo_array_engine_replicated(self, capsys):
        code = main(
            ["demo", "--n", "100", "--weights", "1,2", "--rounds", "100",
             "--seed", "5", "--replications", "6", "--engine", "array"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replications=6" in out
        assert "agent/array engine" in out

    def test_series(self, capsys):
        code = main(
            ["series", "--n", "120", "--rounds", "200", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phi(t)" in out
        assert "psi(t)" in out
        assert "sigma^2(t)" in out
        assert "*" in out  # the ASCII chart rendered


class TestDemoSchedule:
    def test_parse_schedule_entries(self):
        from repro.adversary.interventions import (
            AddAgents,
            AddColour,
            RecolourColour,
        )
        from repro.cli import _parse_schedule

        schedule = _parse_schedule(
            "100:agents:0:5,200:colour:2.0:1:light,300:recolour:0:1"
        )
        entries = schedule.entries()
        assert [t for t, _ in entries] == [100, 200, 300]
        assert entries[0][1] == AddAgents(colour=0, count=5, dark=True)
        assert entries[1][1] == AddColour(weight=2.0, count=1, dark=False)
        assert entries[2][1] == RecolourColour(source=0, target=1)

    def test_parse_schedule_empty_is_none(self):
        from repro.cli import _parse_schedule

        assert _parse_schedule(None) is None
        assert _parse_schedule("  ") is None

    @pytest.mark.parametrize(
        "spec",
        ["100:bogus:1:2", "x:agents:0:5", "100:agents:0", "50:recolour:1"],
    )
    def test_parse_schedule_rejects_bad_entries(self, spec):
        from repro.cli import _parse_schedule

        with pytest.raises(SystemExit):
            _parse_schedule(spec)

    def test_demo_single_with_schedule_widens_table(self, capsys):
        code = main(
            ["demo", "--n", "200", "--weights", "1,2", "--rounds", "200",
             "--seed", "3",
             "--schedule", "10000:agents:0:20,20000:colour:2.0:1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "diversity error" in out
        # Three rows: the two original colours plus the added one.
        assert out.count("\n2       2") >= 1

    def test_demo_replicated_batched_with_schedule(self, capsys):
        code = main(
            ["demo", "--n", "120", "--weights", "1,2", "--rounds", "200",
             "--seed", "5", "--replications", "16",
             "--schedule", "8000:agents:0:12,16000:colour:2.0:1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batched engine" in out  # schedules stay on the fused path
        assert "mean count" in out

    def test_demo_array_replicated_with_schedule(self, capsys):
        code = main(
            ["demo", "--n", "100", "--weights", "1,2", "--rounds", "100",
             "--seed", "5", "--replications", "6", "--engine", "array",
             "--schedule", "5000:colour:2.0:1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "agent/array engine" in out


class TestFaultToleranceCli:
    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args(
            [
                "run", "e8", "--quick",
                "--retries", "3",
                "--shard-timeout", "2.5",
                "--retry-backoff", "0.1",
                "--max-failures", "1",
                "--inject-faults", "raise:i0:attempts=1",
            ]
        )
        assert args.retries == 3
        assert args.shard_timeout == 2.5
        assert args.retry_backoff == 0.1
        assert args.max_failures == 1
        assert args.inject_faults == "raise:i0:attempts=1"

    def test_injected_transient_fault_with_retries_matches_clean(
        self, capsys
    ):
        assert main(["run", "e8", "--quick"]) == 0
        clean_out = capsys.readouterr().out
        assert main(
            ["run", "e8", "--quick",
             "--inject-faults", "raise:i0:attempts=1",
             "--retries", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out == clean_out  # byte-identical table
        assert "faults: 1/1 shard(s) completed" in captured.err
        assert "1 recovered by retry" in captured.err

    def test_invalid_fault_spec_is_a_usage_error(self, capsys):
        assert main(
            ["run", "e8", "--quick", "--inject-faults", "melt:i0"]
        ) == 2
        assert "invalid --inject-faults" in capsys.readouterr().err

    def test_invalid_retry_policy_is_a_usage_error(self, capsys):
        assert main(["run", "e8", "--quick", "--retries", "0"]) == 2
        assert "invalid retry policy" in capsys.readouterr().err

    def test_max_failures_writes_requeue_file(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main(
            ["run", "e8", "--quick",
             "--inject-faults", "raise:i0:attempts=99",
             "--retries", "2", "--max-failures", "1",
             "--out", str(out_dir)]
        ) == 0
        captured = capsys.readouterr()
        assert "failed shards: 0" in captured.err
        requeue_path = out_dir / "e8-quick.requeue.json"
        assert requeue_path.exists()
        doc = json.loads(requeue_path.read_text())
        assert doc["format"] == "repro-requeue/v1"
        assert doc["shards"][0]["index"] == 0
        assert doc["shards"][0]["attempts"] == 2
        # The plan artifact still landed, with the fault report inside.
        payload = json.loads((out_dir / "e8-quick.json").read_text())
        assert payload["faults"]["failed"] == [0]

    def test_max_failures_incompatible_with_checkpointing(self, capsys):
        assert main(
            ["run", "e8", "--quick", "--max-failures", "1",
             "--checkpoint-every", "1"]
        ) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_cache_verify_reports_and_quarantines(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        # Warm the cache, then tear one entry.
        assert main(
            ["run", "e8", "--quick", "--cache-dir", str(cache_dir)]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        assert "1 entry scanned, 1 ok, 0 bad" in capsys.readouterr().out
        entries = list(cache_dir.glob("??/*.json"))
        entries[0].write_text("{ torn")
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "1 bad" in out and "invalid JSON" in out
        assert main(
            ["cache", "verify", "--cache-dir", str(cache_dir),
             "--quarantine"]
        ) == 1
        assert "1 quarantined" in capsys.readouterr().out
        assert (cache_dir / "quarantine").is_dir()
        # After quarantining, the scan is clean again.
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
