"""The lint rules against the planted-violation fixture tree.

Every offending fixture line carries a ``# planted: CODE[,CODE]``
marker; the main test asserts that ``run_lint`` over the tree reports
*exactly* the planted (file, line, code) triples — every plant found
at its exact line with its exact code, and no extra findings (so the
sanctioned ``engine/backend.py``, the waived file, and every
deliberately-clean construct stay silent).
"""

from __future__ import annotations

import pathlib
import re
import textwrap

from repro.lint import RULE_CODES, RULE_FAMILIES, run_lint

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

_PLANTED = re.compile(r"#\s*planted:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def planted_markers() -> set[tuple[str, int, str]]:
    expected = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        relpath = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = _PLANTED.search(line)
            if match:
                for code in match.group(1).split(","):
                    expected.add((relpath, lineno, code.strip()))
    return expected


def fixture_findings():
    return run_lint([FIXTURES], root=FIXTURES)


def test_fixture_tree_markers_are_nonempty_and_valid():
    markers = planted_markers()
    assert markers, "fixture tree lost its planted markers"
    codes = {code for _, _, code in markers}
    assert codes <= set(RULE_CODES)
    # Every family is exercised by at least one plant.
    for family in RULE_FAMILIES:
        assert any(code.startswith(family) for code in codes), family


def test_every_plant_is_found_at_its_exact_line_and_code():
    found = {(f.relpath, f.line, f.code) for f in fixture_findings()}
    assert found == planted_markers()


def test_findings_carry_messages_and_sorted_order():
    findings = fixture_findings()
    assert findings == sorted(findings, key=lambda f: f.sort_key())
    for finding in findings:
        assert finding.code in RULE_CODES
        assert finding.message
        assert finding.location().startswith(finding.relpath)


def test_select_restricts_to_matching_families():
    rl1 = run_lint([FIXTURES], root=FIXTURES, select=["RL1"])
    assert rl1 and all(f.code.startswith("RL1") for f in rl1)
    exact = run_lint([FIXTURES], root=FIXTURES, select=["RL301"])
    assert exact and all(f.code == "RL301" for f in exact)


def test_ignore_drops_matching_families_and_wins_over_select():
    without_rl1 = run_lint([FIXTURES], root=FIXTURES, ignore=["RL1"])
    assert without_rl1
    assert not any(f.code.startswith("RL1") for f in without_rl1)
    nothing = run_lint(
        [FIXTURES], root=FIXTURES, select=["RL2"], ignore=["RL2"]
    )
    assert nothing == []


def test_unknown_selector_is_rejected():
    try:
        run_lint([FIXTURES], root=FIXTURES, select=["RL9"])
    except ValueError as error:
        assert "RL9" in str(error)
    else:  # pragma: no cover - the assertion is the point
        raise AssertionError("expected ValueError for unknown selector")


def test_waiver_suppresses_only_the_waived_line(tmp_path):
    source = textwrap.dedent(
        """\
        import numpy as np  # repro-lint: disable=RL101 -- test waiver
        import numpy as np2
        """
    )
    target = tmp_path / "engine" / "module.py"
    target.parent.mkdir()
    target.write_text(source)
    findings = run_lint([tmp_path], root=tmp_path)
    assert [(f.line, f.code) for f in findings] == [(2, "RL101")]


def test_waiver_on_the_line_above_covers_the_statement(tmp_path):
    source = textwrap.dedent(
        """\
        # repro-lint: disable=RL101 -- test waiver
        import numpy as np
        """
    )
    target = tmp_path / "engine" / "module.py"
    target.parent.mkdir()
    target.write_text(source)
    assert run_lint([tmp_path], root=tmp_path) == []


def test_syntax_error_becomes_rl000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def half(:\n")
    findings = run_lint([bad], root=tmp_path)
    assert [f.code for f in findings] == ["RL000"]
    assert findings[0].relpath == "broken.py"


def test_missing_target_raises(tmp_path):
    try:
        run_lint([tmp_path / "absent.py"])
    except FileNotFoundError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected FileNotFoundError")
