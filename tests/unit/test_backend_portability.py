"""Backend-portability suite: the transition-kernel layer under
``array-api-strict``.

The strict namespace is the pure-Python reference implementation of
the array-API standard — it deliberately rejects every NumPy-ism
(fancy indexing, ``out=``, scalar promotion in ``where``), so a kernel
that runs on it unmodified is portable to any conforming backend.
For each registered kernel the test drives the same pre-drawn inputs
through the NumPy build and the strict build and asserts the outputs
agree **bit-for-bit on the integer paths** (colours and shades are the
only kernel outputs) and to fp tolerance on the float-valued internal
tables.

Skipped wholesale when ``array_api_strict`` is not installed (it is a
CI-installed extra, not a runtime dependency).
"""

import numpy as np
import pytest

from repro.baselines.anti_voter import AntiVoterModel
from repro.baselines.epidemic import SISEpidemic
from repro.baselines.three_majority import ThreeMajority
from repro.baselines.trivial import TrivialResampling
from repro.baselines.two_choices import TwoChoices
from repro.baselines.uniform_partition import RandomRecolouring
from repro.baselines.voter import VoterModel
from repro.core.ablations import UnweightedLightening
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import kernel_for
from repro.engine.backend import resolve_backend

pytest.importorskip("array_api_strict")

STRICT = resolve_backend("array-api-strict")
HOST = resolve_backend("numpy")

#: (case id, protocol factory, k).  Factories are re-invoked per build
#: so the two kernels never share mutable protocol state.
CASES = [
    ("diversification", lambda: Diversification(WeightTable([1.0, 2.0, 4.0])), 3),
    ("unweighted", lambda: UnweightedLightening(WeightTable([1.0, 2.0, 4.0])), 3),
    ("voter", VoterModel, 3),
    ("three-majority", ThreeMajority, 3),
    ("two-choices", TwoChoices, 3),
    ("anti-voter", AntiVoterModel, 2),
    ("sis", lambda: SISEpidemic(0.6, 0.3), 2),
    ("recolouring", lambda: RandomRecolouring(3), 3),
    ("trivial", lambda: TrivialResampling(WeightTable([1.0, 2.0, 4.0]), 0.7), 3),
]


def _draw_inputs(protocol_factory, k, m=257, seed=0):
    """Pre-drawn kernel inputs as host arrays (the seeding contract:
    randomness originates on the host on every backend)."""
    protocol = protocol_factory()
    kernel = kernel_for(protocol)  # numpy build, just for arity/coins
    rng = np.random.default_rng(seed)
    arity = int(protocol.arity)
    uc = rng.integers(0, k, size=m, dtype=np.int64)
    us = rng.integers(0, 2, size=m, dtype=np.int64)
    vc = rng.integers(0, k, size=(m, arity), dtype=np.int64)
    vs = rng.integers(0, 2, size=(m, arity), dtype=np.int64)
    coins = rng.random((m, max(kernel.coins, 1)))[:, : kernel.coins]
    return uc, us, vc, vs, coins


@pytest.mark.parametrize(
    "case", CASES, ids=[case_id for case_id, _, _ in CASES]
)
def test_kernel_matches_numpy_bit_for_bit(case):
    _, factory, k = case
    uc, us, vc, vs, coins = _draw_inputs(factory, k)

    host_kernel = kernel_for(factory(), backend=HOST)
    host_kernel.refresh(k)
    want_c, want_s = host_kernel.apply(uc, us, vc, vs, coins)

    strict_kernel = kernel_for(factory(), backend=STRICT)
    strict_kernel.refresh(k)
    got_c, got_s = strict_kernel.apply(
        STRICT.from_host(uc),
        STRICT.from_host(us),
        STRICT.from_host(vc),
        STRICT.from_host(vs),
        STRICT.from_host(coins),
    )

    np.testing.assert_array_equal(STRICT.to_numpy(got_c), want_c)
    np.testing.assert_array_equal(STRICT.to_numpy(got_s), want_s)


def test_diversification_row_lighten_table():
    """The batched per-row (R, k) lighten gather — a flat ``take`` on
    strict — matches the NumPy 2-D fancy index exactly."""
    k, rows = 3, 64
    rng = np.random.default_rng(3)
    table = rng.random((rows, k))
    uc = rng.integers(0, k, size=rows, dtype=np.int64)
    us = np.ones(rows, dtype=np.int64)  # all dark: exercise lightening
    vc = uc[:, None].copy()  # same colour: lighten is coin-gated
    vs = np.ones((rows, 1), dtype=np.int64)
    coins = rng.random((rows, 1))

    def build(backend):
        kernel = kernel_for(
            Diversification(WeightTable.uniform(k)), backend=backend
        )
        kernel.set_row_lighten(backend.from_host(table))
        kernel.refresh(k)
        return kernel

    want_c, want_s = build(HOST).apply(uc, us, vc, vs, coins)
    got_c, got_s = build(STRICT).apply(
        STRICT.from_host(uc),
        STRICT.from_host(us),
        STRICT.from_host(vc),
        STRICT.from_host(vs),
        STRICT.from_host(coins),
    )
    np.testing.assert_array_equal(STRICT.to_numpy(got_c), want_c)
    np.testing.assert_array_equal(STRICT.to_numpy(got_s), want_s)


def test_float_tables_agree_to_fp_tolerance():
    """The kernels' float-valued internal tables (lighten thresholds,
    cumulative shares) round-trip the strict backend unchanged."""
    weights = WeightTable([1.0, 2.0, 4.0])
    host_kernel = kernel_for(Diversification(weights), backend=HOST)
    host_kernel.refresh(3)
    strict_kernel = kernel_for(
        Diversification(WeightTable([1.0, 2.0, 4.0])), backend=STRICT
    )
    strict_kernel.refresh(3)
    np.testing.assert_allclose(
        STRICT.to_numpy(strict_kernel._lighten),
        host_kernel._lighten,
        rtol=0,
        atol=0,
    )

    trivial = lambda: TrivialResampling(WeightTable([1.0, 2.0, 4.0]), 0.7)
    host_trivial = kernel_for(trivial(), backend=HOST)
    host_trivial.refresh(3)
    strict_trivial = kernel_for(trivial(), backend=STRICT)
    strict_trivial.refresh(3)
    np.testing.assert_allclose(
        STRICT.to_numpy(strict_trivial._cum),
        host_trivial._cum,
        rtol=0,
        atol=0,
    )


def test_strict_backend_identity():
    assert STRICT.name == "array-api-strict"
    assert not STRICT.is_host
    assert not STRICT.supports_engine_loops
    round_trip = STRICT.to_numpy(
        STRICT.from_host(np.arange(5, dtype=np.int64))
    )
    np.testing.assert_array_equal(round_trip, np.arange(5))


def test_strict_uniform_block_matches_host_stream():
    """Device-placed blocks come from the same host stream — the same
    seed yields the same uniforms on every backend."""
    want = np.random.default_rng(11).random((4, 3))
    got = STRICT.uniform_block(np.random.default_rng(11), (4, 3))
    np.testing.assert_array_equal(STRICT.to_numpy(got), want)
