"""Unit tests for the recorder, runner helpers, report and table."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.experiments.recorder import CountRecorder, _pad_stack
from repro.experiments.report import format_series, format_table, format_value
from repro.experiments.runner import (
    initial_counts,
    run_agent,
    run_aggregate,
    run_diversification_agent,
)
from repro.experiments.table import ExperimentTable


class FakeEngine:
    def __init__(self):
        self.time = 0
        self._counts = np.array([3, 5])

    def colour_counts(self):
        return self._counts

    def dark_counts(self):
        return self._counts

    def light_counts(self):
        return np.zeros(2, dtype=np.int64)


class TestCountRecorder:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            CountRecorder(0)

    def test_record_and_arrays(self):
        recorder = CountRecorder(10)
        engine = FakeEngine()
        recorder.record_from(engine)
        engine.time = 10
        recorder.record_from(engine)
        assert len(recorder) == 2
        np.testing.assert_array_equal(recorder.times(), [0, 10])
        assert recorder.colour_counts().shape == (2, 2)

    def test_due_logic(self):
        recorder = CountRecorder(10)
        engine = FakeEngine()
        assert recorder.is_due(0)  # nothing recorded yet
        recorder.record_from(engine)
        assert not recorder.is_due(5)
        assert recorder.is_due(10)
        assert recorder.next_time_after(0) == 10
        assert recorder.next_time_after(15) == 25

    def test_pad_stack_ragged(self):
        rows = [np.array([1, 2]), np.array([1, 2, 3])]
        out = _pad_stack(rows)
        np.testing.assert_array_equal(out, [[1, 2, 0], [1, 2, 3]])

    def test_pad_stack_empty(self):
        assert _pad_stack([]).shape == (0, 0)


class TestInitialCounts:
    def test_dispatch(self, skewed_weights):
        for start in ("worst", "uniform", "proportional", "random"):
            counts = initial_counts(start, 60, skewed_weights, rng=0)
            assert counts.sum() == 60

    def test_unknown_start(self, skewed_weights):
        with pytest.raises(ValueError):
            initial_counts("bogus", 60, skewed_weights)


class TestRunHelpers:
    def test_run_aggregate_record(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, n=60, steps=5000, seed=0, record_interval=500
        )
        assert record.n == 60
        assert record.times[-1] == 5000 or record.times[-1] >= 4500
        assert record.colour_counts.shape[1] == 3
        assert (record.colour_counts.sum(axis=1) == 60).all()

    def test_run_aggregate_leaves_caller_weights(self, skewed_weights):
        run_aggregate(skewed_weights, n=30, steps=100, seed=0)
        assert skewed_weights.k == 3  # caller's table untouched

    def test_run_agent_record(self, skewed_weights):
        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=2000,
            seed=1, record_interval=200,
        )
        assert record.colour_counts.shape[1] == 3
        assert record.extras["simulation"].time == 2000

    def test_run_diversification_agent(self, skewed_weights):
        record = run_diversification_agent(
            skewed_weights, n=24, steps=1000, seed=2
        )
        assert record.final_colour_counts.sum() == 24


class TestAgentEngineRouting:
    def test_auto_routes_kernelised_protocol_to_array(self, skewed_weights):
        from repro.engine.array_engine import ArraySimulation

        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0
        )
        assert isinstance(record.extras["simulation"], ArraySimulation)

    def test_scalar_engine_forced(self, skewed_weights):
        from repro.engine.simulator import Simulation

        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0,
            engine="scalar",
        )
        assert isinstance(record.extras["simulation"], Simulation)

    def test_auto_falls_back_without_kernel(self, skewed_weights):
        from repro.core.derandomised import DerandomisedDiversification
        from repro.engine.simulator import Simulation

        weights = WeightTable([1.0, 2.0, 3.0])
        record = run_agent(
            DerandomisedDiversification(weights), weights,
            n=30, steps=500, seed=0,
        )
        assert isinstance(record.extras["simulation"], Simulation)

    def test_schedule_routes_to_array_on_complete_graph(
        self, skewed_weights
    ):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule
        from repro.engine.array_engine import ArraySimulation

        weights = skewed_weights.copy()
        schedule = InterventionSchedule([(100, AddAgents(0, 5))])
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0,
            schedule=schedule,
        )
        assert isinstance(record.extras["simulation"], ArraySimulation)
        assert record.final_colour_counts.sum() == 35

    def test_growth_schedule_on_topology_falls_back_to_scalar(
        self, skewed_weights
    ):
        from repro.adversary.interventions import RecolourColour
        from repro.adversary.schedule import InterventionSchedule
        from repro.engine.array_engine import ArraySimulation
        from repro.experiments.runner import use_array_engine
        from repro.topology import CycleGraph

        weights = skewed_weights.copy()
        protocol = Diversification(weights)
        # Index-stable recolourings stay on the array engine even on an
        # explicit CSR topology ...
        recolour_only = InterventionSchedule([(50, RecolourColour(0, 1))])
        record = run_agent(
            protocol, weights, n=30, steps=500, seed=0,
            topology=CycleGraph(30), schedule=recolour_only,
        )
        assert isinstance(record.extras["simulation"], ArraySimulation)
        # ... but population growth does not (adjacency cannot grow).
        from repro.adversary.interventions import AddAgents

        growth = InterventionSchedule([(100, AddAgents(0, 5))])
        assert not use_array_engine(
            protocol, topology=CycleGraph(30), schedule=growth
        )

    def test_array_engine_rejects_growth_on_topology(self, skewed_weights):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule
        from repro.topology import CycleGraph

        weights = skewed_weights.copy()
        schedule = InterventionSchedule([(100, AddAgents(0, 5))])
        with pytest.raises(ValueError, match="scalar engine"):
            run_agent(
                Diversification(weights), weights, n=30, steps=500,
                seed=0, schedule=schedule, engine="array",
                topology=CycleGraph(30),
            )

    def test_unknown_engine_rejected(self, skewed_weights):
        with pytest.raises(ValueError, match="unknown engine"):
            run_agent(
                Diversification(skewed_weights), skewed_weights,
                n=30, steps=100, engine="bogus",
            )


class TestReplicationWeightsRegression:
    """Regression: the replication paths must return the *widened*
    weight table when a ColourAddition schedule grows the colour set,
    so ``record.weights.k`` always matches the count matrices — on the
    fused batched engine and on the scalar fallback loop alike."""

    @pytest.mark.parametrize("batched", [True, False])
    def test_widened_table_recorded(self, batched):
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        schedule = InterventionSchedule(
            [(200, AddColour(weight=3.0, count=10))]
        )
        batch = run_aggregate(
            weights, n=30, steps=600, seed=0,
            replications=3, schedule=schedule, batched=batched,
        )
        assert batch.batched is batched  # schedules stay on the fused path
        assert batch.final_dark_counts.shape == (3, 3)
        assert batch.weights.k == batch.final_dark_counts.shape[1]
        assert list(batch.weights) == [1.0, 2.0, 3.0]
        assert weights.k == 2  # caller's table untouched
        assert (batch.final_colour_counts.sum(axis=1) == 40).all()

    def test_unwidened_schedule_keeps_original_table(self):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        schedule = InterventionSchedule([(200, AddAgents(0, 4))])
        batch = run_aggregate(
            weights, n=30, steps=600, seed=0,
            replications=2, schedule=schedule,
        )
        assert batch.weights.k == 2
        assert batch.final_dark_counts.shape == (2, 2)


class TestTerminalSnapshotRegression:
    """Regression: when ``record_interval`` does not divide ``steps``
    the record used to stop up to interval-1 steps short of the
    horizon, so ``final_colour_counts`` was not the requested state."""

    def test_aggregate_records_horizon(self, skewed_weights):
        record = run_aggregate(skewed_weights, 300, 1000, seed=5)
        # default interval = steps // 256 = 3, which does not divide
        # 1000: the old code ended the record at time 999.
        assert record.times[-1] == 1000

    def test_agent_records_horizon(self, skewed_weights):
        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=1000,
            seed=5, record_interval=300,
        )
        assert record.times[-1] == 1000

    def test_horizon_snapshot_not_duplicated(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, 60, 1000, seed=1, record_interval=250
        )
        np.testing.assert_array_equal(
            record.times, [0, 250, 500, 750, 1000]
        )

    def test_horizon_snapshot_with_schedule(self, skewed_weights):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule

        schedule = InterventionSchedule([(500, AddAgents(0, 7))])
        record = run_aggregate(
            skewed_weights, 60, 1000, seed=1, record_interval=300,
            schedule=schedule,
        )
        assert record.times[-1] == 1000
        assert record.final_colour_counts.sum() == 67


class TestRandomStartSeedingRegression:
    """Regression: ``start="random"`` with an integer seed used to
    build ``default_rng(seed)`` twice — once for the start counts and
    once for the engine — so the dynamics replayed the exact uniforms
    that drew the start configuration."""

    def test_streams_decorrelated(self):
        from repro.experiments.runner import seed_streams

        workload, engine = seed_streams(7)
        reference = np.random.default_rng(7)
        # The engine stream must be neither the workload stream nor
        # the old aliased default_rng(seed) stream.
        w_draws = workload.random(8)
        e_draws = engine.random(8)
        assert not np.allclose(w_draws, e_draws)
        assert not np.allclose(e_draws, np.random.default_rng(7).random(8))
        del reference

    def test_generator_input_passes_through(self):
        from repro.experiments.runner import seed_streams

        rng = np.random.default_rng(3)
        workload, engine = seed_streams(rng)
        assert workload is rng and engine is rng

    def test_run_aggregate_random_start_not_aliased(self, skewed_weights):
        from repro.engine.aggregate import AggregateSimulation

        # Reconstruct the pre-fix trajectory: both the workload and the
        # engine consumed default_rng(seed) from the same state.
        seed, n, steps = 11, 60, 2000
        aliased = np.random.default_rng(seed)
        dark0 = initial_counts("random", n, skewed_weights, aliased)
        engine = AggregateSimulation(
            skewed_weights.copy(), dark_counts=dark0,
            rng=np.random.default_rng(seed),
        )
        engine.run(steps)
        record = run_aggregate(
            skewed_weights, n, steps, start="random", seed=seed,
            record_interval=steps,
        )
        differs_start = not np.array_equal(
            record.colour_counts[0], dark0
        )
        differs_final = not np.array_equal(
            record.final_colour_counts, engine.colour_counts()
        )
        assert differs_start or differs_final

    def test_run_aggregate_random_start_reproducible(self, skewed_weights):
        first = run_aggregate(
            skewed_weights, 60, 1500, start="random", seed=21
        )
        second = run_aggregate(
            skewed_weights, 60, 1500, start="random", seed=21
        )
        np.testing.assert_array_equal(
            first.colour_counts, second.colour_counts
        )


class TestProtocolTableMutationRegression:
    """Regression: ``run_agent`` with an AddColour schedule used to
    widen the caller's protocol's shared weight table in place, so
    reusing one protocol instance across runs compounded colours."""

    def test_run_agent_leaves_caller_protocol(self):
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        table = WeightTable([1.0, 2.0, 3.0])
        protocol = Diversification(table)
        schedule = InterventionSchedule([(100, AddColour(2.0, 5))])
        for expected_runs in range(3):
            record = run_agent(
                protocol, table, n=30, steps=400, seed=expected_runs,
                schedule=schedule,
            )
            # Each run widens its own copy exactly once ...
            assert record.weights.k == 4
            assert record.final_colour_counts.shape[0] == 4
        # ... and the caller's table never grows.
        assert table.k == 3
        assert protocol.weights.k == 3

    def test_run_agent_scalar_engine_leaves_caller_protocol(self):
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        table = WeightTable([1.0, 2.0, 3.0])
        protocol = Diversification(table)
        schedule = InterventionSchedule([(100, AddColour(2.0, 5))])
        record = run_agent(
            protocol, table, n=30, steps=400, seed=0,
            schedule=schedule, engine="scalar",
        )
        assert record.weights.k == 4
        assert table.k == 3


class TestReportFormatting:
    def test_format_value_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_format_value_float(self):
        assert format_value(0.0) == "0"
        assert "e" in format_value(1.23e9)
        assert format_value(3.14159) == "3.142"

    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_renders(self):
        text = format_series("demo", list(range(100)),
                             [float(i % 10) for i in range(100)])
        assert "demo" in text
        assert "*" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1.0])

    def test_series_empty(self):
        assert "empty" in format_series("x", [], [])


class TestExperimentTable:
    def test_render_contains_everything(self):
        table = ExperimentTable("E0", "demo", ["x", "y"])
        table.add_row(1, 2.0)
        table.add_note("a note")
        text = table.render()
        assert "[E0] demo" in text
        assert "a note" in text
        assert "1" in text
