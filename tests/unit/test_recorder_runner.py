"""Unit tests for the recorder, runner helpers, report and table."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.experiments.recorder import CountRecorder, _pad_stack
from repro.experiments.report import format_series, format_table, format_value
from repro.experiments.runner import (
    initial_counts,
    run_agent,
    run_aggregate,
    run_diversification_agent,
)
from repro.experiments.table import ExperimentTable


class FakeEngine:
    def __init__(self):
        self.time = 0
        self._counts = np.array([3, 5])

    def colour_counts(self):
        return self._counts

    def dark_counts(self):
        return self._counts

    def light_counts(self):
        return np.zeros(2, dtype=np.int64)


class TestCountRecorder:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            CountRecorder(0)

    def test_record_and_arrays(self):
        recorder = CountRecorder(10)
        engine = FakeEngine()
        recorder.record_from(engine)
        engine.time = 10
        recorder.record_from(engine)
        assert len(recorder) == 2
        np.testing.assert_array_equal(recorder.times(), [0, 10])
        assert recorder.colour_counts().shape == (2, 2)

    def test_due_logic(self):
        recorder = CountRecorder(10)
        engine = FakeEngine()
        assert recorder.is_due(0)  # nothing recorded yet
        recorder.record_from(engine)
        assert not recorder.is_due(5)
        assert recorder.is_due(10)
        assert recorder.next_time_after(0) == 10
        assert recorder.next_time_after(15) == 25

    def test_pad_stack_ragged(self):
        rows = [np.array([1, 2]), np.array([1, 2, 3])]
        out = _pad_stack(rows)
        np.testing.assert_array_equal(out, [[1, 2, 0], [1, 2, 3]])

    def test_pad_stack_empty(self):
        assert _pad_stack([]).shape == (0, 0)


class TestInitialCounts:
    def test_dispatch(self, skewed_weights):
        for start in ("worst", "uniform", "proportional", "random"):
            counts = initial_counts(start, 60, skewed_weights, rng=0)
            assert counts.sum() == 60

    def test_unknown_start(self, skewed_weights):
        with pytest.raises(ValueError):
            initial_counts("bogus", 60, skewed_weights)


class TestRunHelpers:
    def test_run_aggregate_record(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, n=60, steps=5000, seed=0, record_interval=500
        )
        assert record.n == 60
        assert record.times[-1] == 5000 or record.times[-1] >= 4500
        assert record.colour_counts.shape[1] == 3
        assert (record.colour_counts.sum(axis=1) == 60).all()

    def test_run_aggregate_leaves_caller_weights(self, skewed_weights):
        run_aggregate(skewed_weights, n=30, steps=100, seed=0)
        assert skewed_weights.k == 3  # caller's table untouched

    def test_run_agent_record(self, skewed_weights):
        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=2000,
            seed=1, record_interval=200,
        )
        assert record.colour_counts.shape[1] == 3
        assert record.extras["simulation"].time == 2000

    def test_run_diversification_agent(self, skewed_weights):
        record = run_diversification_agent(
            skewed_weights, n=24, steps=1000, seed=2
        )
        assert record.final_colour_counts.sum() == 24


class TestAgentEngineRouting:
    def test_auto_routes_kernelised_protocol_to_array(self, skewed_weights):
        from repro.engine.array_engine import ArraySimulation

        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0
        )
        assert isinstance(record.extras["simulation"], ArraySimulation)

    def test_scalar_engine_forced(self, skewed_weights):
        from repro.engine.simulator import Simulation

        weights = skewed_weights.copy()
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0,
            engine="scalar",
        )
        assert isinstance(record.extras["simulation"], Simulation)

    def test_auto_falls_back_without_kernel(self, skewed_weights):
        from repro.core.derandomised import DerandomisedDiversification
        from repro.engine.simulator import Simulation

        weights = WeightTable([1.0, 2.0, 3.0])
        record = run_agent(
            DerandomisedDiversification(weights), weights,
            n=30, steps=500, seed=0,
        )
        assert isinstance(record.extras["simulation"], Simulation)

    def test_schedule_falls_back_to_scalar(self, skewed_weights):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule
        from repro.engine.simulator import Simulation

        weights = skewed_weights.copy()
        schedule = InterventionSchedule([(100, AddAgents(0, 5))])
        record = run_agent(
            Diversification(weights), weights, n=30, steps=500, seed=0,
            schedule=schedule,
        )
        assert isinstance(record.extras["simulation"], Simulation)
        assert record.final_colour_counts.sum() == 35

    def test_array_engine_rejects_schedule(self, skewed_weights):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule

        weights = skewed_weights.copy()
        schedule = InterventionSchedule([(100, AddAgents(0, 5))])
        with pytest.raises(ValueError, match="scalar engine"):
            run_agent(
                Diversification(weights), weights, n=30, steps=500,
                seed=0, schedule=schedule, engine="array",
            )

    def test_unknown_engine_rejected(self, skewed_weights):
        with pytest.raises(ValueError, match="unknown engine"):
            run_agent(
                Diversification(skewed_weights), skewed_weights,
                n=30, steps=100, engine="bogus",
            )


class TestScalarReplicationWeightsRegression:
    """Regression: the scalar replication fallback used to return the
    *original* k-colour weight table while the final count rows were
    zero-padded to the widened colour set, so ``record.weights.k``
    disagreed with the count matrices after a ColourAddition schedule."""

    def test_widened_table_recorded(self):
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        schedule = InterventionSchedule(
            [(200, AddColour(weight=3.0, count=10))]
        )
        batch = run_aggregate(
            weights, n=30, steps=600, seed=0,
            replications=3, schedule=schedule, batched=True,
        )
        assert not batch.batched  # schedules force the scalar loop
        assert batch.final_dark_counts.shape == (3, 3)
        assert batch.weights.k == batch.final_dark_counts.shape[1]
        assert list(batch.weights) == [1.0, 2.0, 3.0]
        assert weights.k == 2  # caller's table untouched
        assert (batch.final_colour_counts.sum(axis=1) == 40).all()

    def test_unwidened_schedule_keeps_original_table(self):
        from repro.adversary.interventions import AddAgents
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        schedule = InterventionSchedule([(200, AddAgents(0, 4))])
        batch = run_aggregate(
            weights, n=30, steps=600, seed=0,
            replications=2, schedule=schedule,
        )
        assert batch.weights.k == 2
        assert batch.final_dark_counts.shape == (2, 2)


class TestReportFormatting:
    def test_format_value_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_format_value_float(self):
        assert format_value(0.0) == "0"
        assert "e" in format_value(1.23e9)
        assert format_value(3.14159) == "3.142"

    def test_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_renders(self):
        text = format_series("demo", list(range(100)),
                             [float(i % 10) for i in range(100)])
        assert "demo" in text
        assert "*" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1.0])

    def test_series_empty(self):
        assert "empty" in format_series("x", [], [])


class TestExperimentTable:
    def test_render_contains_everything(self):
        table = ExperimentTable("E0", "demo", ["x", "y"])
        table.add_row(1, 2.0)
        table.add_note("a note")
        text = table.render()
        assert "[E0] demo" in text
        assert "a note" in text
        assert "1" in text
